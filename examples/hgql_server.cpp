// A standalone HGQL server daemon: builds a small bike-sharing dataset in a
// durable store (group-commit WAL mode), serves it over the wire protocol,
// and exposes Prometheus metrics — the server half of the client/server
// pair (see examples/hgql_client.cpp and docs/PROTOCOL.md).
//
//   build:  cmake -B build && cmake --build build --target hgql_server
//   run:    ./build/examples/hgql_server [port] [data_dir]
//
// Prints the bound query and metrics ports on stdout, then serves until
// stdin closes (or EOF/newline arrives), so scripts can drive it as
// `./hgql_server & ... ; kill` or interactively. Port 0 (the default)
// picks a free ephemeral port.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "server/server.h"
#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"
#include "workloads/bike_sharing.h"

using namespace hygraph;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 0;
  std::string dir;
  if (argc > 2) {
    dir = argv[2];
  } else {
    char tmpl[] = "/tmp/hygraph_hgql_server_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "cannot create data dir\n");
      return 1;
    }
    dir = tmpl;
  }

  storage::DurableOptions durable_options;
  durable_options.sync_wal = false;  // group commit: fsync per batch
  storage::DurableStore store(storage::Env::Default(), dir,
                              std::make_unique<storage::PolyglotStore>(),
                              durable_options);
  if (!store.Open().ok()) {
    std::fprintf(stderr, "cannot open durable store at %s\n", dir.c_str());
    return 1;
  }

  // Seed the store with the paper's bike-sharing workload so clients have
  // something to query right away (a reopened data_dir keeps its data and
  // gets a fresh copy appended at later timestamps — fine for a demo).
  workloads::BikeSharingConfig config;
  config.stations = 20;
  config.districts = 4;
  config.days = 2;
  config.sample_interval = 15 * kMinute;
  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) return 1;
  if (!workloads::LoadIntoBackend(*dataset, &store).ok()) return 1;

  server::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.slow_query_threshold_ms = 100;
  server::HgqlServer server(&store, &store, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("hgql_server listening on 127.0.0.1:%d\n", server.port());
  std::printf("metrics at http://127.0.0.1:%d/metrics\n",
              server.metrics_port());
  std::printf("data dir: %s\n", dir.c_str());
  std::printf("try: ./build/examples/hgql_client %d\n", server.port());
  std::fflush(stdout);

  // Serve until SIGTERM/SIGINT; an interactive run can also press Enter.
  // A daemonized run (stdin = /dev/null) ignores stdin so an immediate EOF
  // does not shut the server down.
  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  std::thread stdin_watcher;
  if (isatty(STDIN_FILENO)) {
    stdin_watcher = std::thread([] {
      char line[16];
      const char* got = std::fgets(line, sizeof(line), stdin);
      (void)got;
      g_stop = 1;  // a line or EOF: either way, shut down
    });
    stdin_watcher.detach();
  }
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("bye\n");
  return 0;
}
