// The financial-entities use case (Section 2): companies move through
// lifecycle stages (inception, IPO, listings, acquisition, bankruptcy) that
// change the graph's topology over time, while public companies carry stock
// price series. A backtest must see the world as it was — snapshots — and
// relate structure to prices — hybrid operators.
//
//   run: ./build/examples/financial_backtest [companies] [years]

#include <cstdio>
#include <cstdlib>

#include "analytics/seg_snapshot.h"
#include "temporal/metric_evolution.h"
#include "temporal/snapshot.h"
#include "ts/correlate.h"
#include "workloads/financial.h"

using namespace hygraph;

int main(int argc, char** argv) {
  workloads::FinancialConfig config;
  config.companies = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 40;
  config.years = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 6;

  std::printf("== Financial backtest on HyGraph ==\n");
  std::printf("world: %zu companies, %zu exchanges, %zu years\n\n",
              config.companies, config.exchanges, config.years);

  auto hg = workloads::GenerateFinancialHyGraph(config);
  if (!hg.ok()) {
    std::fprintf(stderr, "generate: %s\n", hg.status().ToString().c_str());
    return 1;
  }

  // 1. As-of views: the graph at the start of every year (what a backtest
  //    must query instead of today's topology).
  std::printf("as-of topology (point-in-time snapshots):\n");
  for (size_t year = 0; year <= config.years; ++year) {
    const Timestamp t =
        config.start_time + static_cast<Duration>(year) * 365 * kDay;
    const auto snap = temporal::TakeSnapshot(hg->tpg(), t);
    size_t listings = 0;
    size_t acquisitions = 0;
    for (graph::EdgeId e : snap.graph.EdgeIds()) {
      const std::string& label = (*snap.graph.GetEdge(e))->label;
      if (label == "LISTED_ON") ++listings;
      if (label == "ACQUIRED") ++acquisitions;
    }
    std::printf("  year %zu: %3zu entities, %3zu listings, %2zu acquisitions\n",
                year, snap.graph.VertexCount(), listings, acquisitions);
  }

  // 2. metricEvolution: how the acquisition web densifies over time.
  std::vector<Timestamp> times;
  for (size_t q = 0; q <= config.years * 4; ++q) {
    times.push_back(config.start_time +
                    static_cast<Duration>(q) * 91 * kDay);
  }
  auto sizes = temporal::SizeEvolution(hg->tpg(), times);
  if (sizes.ok()) {
    std::printf("\nedge-count evolution (quarterly):");
    for (size_t i = 0; i < sizes->edge_count.size(); i += 4) {
      std::printf(" %zu",
                  static_cast<size_t>(sizes->edge_count.at(i).value));
    }
    std::printf("\n");
  }

  // 3. Hybrid: price co-movement of companies listed on the same exchange.
  std::printf("\nprice correlations among co-listed companies:\n");
  size_t shown = 0;
  const auto exchanges = hg->structure().VerticesWithLabel("Exchange");
  for (graph::VertexId x : exchanges) {
    std::vector<graph::VertexId> listed;
    for (graph::EdgeId e : hg->structure().InEdges(x)) {
      listed.push_back((*hg->structure().GetEdge(e))->src);
    }
    for (size_t i = 0; i < listed.size() && shown < 6; ++i) {
      for (size_t j = i + 1; j < listed.size() && shown < 6; ++j) {
        auto pa = hg->GetVertexSeriesProperty(listed[i], "price");
        auto pb = hg->GetVertexSeriesProperty(listed[j], "price");
        if (!pa.ok() || !pb.ok()) continue;
        auto corr = ts::Correlation((*pa)->VariableByIndex(0),
                                    (*pb)->VariableByIndex(0), 30);
        if (!corr.ok()) continue;
        std::printf("  %-8s ~ %-8s on %-4s: corr %+.3f\n",
                    hg->GetVertexProperty(listed[i], "name")->ToString()
                        .c_str(),
                    hg->GetVertexProperty(listed[j], "name")->ToString()
                        .c_str(),
                    hg->GetVertexProperty(x, "name")->ToString().c_str(),
                    *corr);
        ++shown;
      }
    }
  }
  if (shown == 0) std::printf("  (no co-listed pairs with price overlap)\n");

  // 4. Q4-style hybrid operator: segment the market's entity count and
  //    snapshot the graph per regime.
  if (sizes.ok() && sizes->vertex_count.size() >= 4) {
    analytics::SegSnapshotOptions options;
    options.max_error = 8.0;
    options.max_segments = 5;
    auto regimes =
        analytics::SegmentationSnapshots(*hg, sizes->vertex_count, options);
    if (regimes.ok()) {
      std::printf("\nmarket regimes (segmentation-driven snapshots):\n");
      for (const auto& regime : *regimes) {
        std::printf("  %s .. %s: slope %+.2f entities/quarter, "
                    "snapshot has %zu entities\n",
                    FormatTimestamp(regime.segment.start_time).c_str(),
                    FormatTimestamp(regime.segment.end_time).c_str(),
                    regime.segment.slope * 91.0 * static_cast<double>(kDay),
                    regime.snapshot.graph.VertexCount());
      }
    }
  }
  return 0;
}
