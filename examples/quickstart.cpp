// Quickstart: build a tiny HyGraph by hand, exercise the model's core
// ideas (PG + TS elements, series properties, subgraphs, validation), and
// run an HGQL query against a polyglot store.
//
//   build:  cmake -B build -G Ninja && cmake --build build --target quickstart
//   run:    ./build/examples/quickstart

#include <cstdio>

#include "core/builder.h"
#include "query/executor.h"
#include "storage/polyglot.h"

using namespace hygraph;

namespace {

ts::MultiSeries MakeSeries(const std::string& name,
                           std::initializer_list<double> values) {
  ts::MultiSeries ms(name, {"value"});
  Timestamp t = 1700000000000;
  for (double v : values) {
    (void)ms.AppendRow(t, {v});
    t += kHour;
  }
  return ms;
}

}  // namespace

int main() {
  std::printf("== HyGraph quickstart ==\n\n");

  // 1. Build a HyGraph: users and merchants are property-graph vertices,
  //    the credit card is a *time-series vertex* — the entity IS its
  //    balance series (the paper's first-class-citizen principle).
  core::HyGraphBuilder builder;
  builder
      .PgVertex("alice", {"User"}, {{"name", Value("Alice")}})
      .PgVertex("bob", {"User"}, {{"name", Value("Bob")}})
      .TsVertex("card_a", {"CreditCard"},
                MakeSeries("balance", {1200, 1150, 980, 310, 290, 250}))
      .PgVertex("grocer", {"Merchant"}, {{"name", Value("Grocer")}})
      .PgEdge("alice", "card_a", "USES")
      .TsEdge("card_a", "grocer", "TX",
              MakeSeries("amount", {50, 170, 670, 20, 40}))
      .PgEdge("alice", "bob", "KNOWS");
  auto hg = builder.Build();
  if (!hg.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 hg.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %zu vertices (%zu PG + %zu TS), %zu edges\n",
              hg->VertexCount(), hg->PgVertices().size(),
              hg->TsVertices().size(), hg->EdgeCount());

  // 2. R2 consistency: the instance validates as a whole.
  const Status valid = hg->Validate();
  std::printf("validate: %s\n", valid.ToString().c_str());

  // 3. δ in action: read the card's series straight off the vertex.
  const graph::VertexId card = hg->TsVertices().front();
  const ts::MultiSeries& balance = **hg->VertexSeries(card);
  std::printf("card balance: %zu samples, last value %.0f\n\n",
              balance.size(), balance.at(balance.size() - 1, 0));

  // 4. Query through a storage engine: load a small station world into the
  //    polyglot store and ask a hybrid question in HGQL.
  storage::PolyglotStore store;
  graph::PropertyGraph* g = store.mutable_topology();
  const Timestamp t0 = 1700000000000;
  for (int i = 0; i < 4; ++i) {
    const graph::VertexId v = g->AddVertex(
        {"Station"}, {{"name", Value("S" + std::to_string(i))}});
    for (int h = 0; h < 48; ++h) {
      (void)store.AppendVertexSample(v, "bikes", t0 + h * kHour,
                                     10.0 + i * 5 + (h % 12));
    }
  }
  const std::string query =
      "MATCH (s:Station) "
      "RETURN s.name AS station, ts_avg(s.bikes, " +
      std::to_string(t0) + ", " + std::to_string(t0 + 48 * kHour) +
      ") AS avg_bikes ORDER BY avg_bikes DESC LIMIT 3";
  auto result = query::Execute(store, query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("HGQL> %s\n\n%s\n", query.c_str(),
              result->ToString().c_str());
  return valid.ok() ? 0 : 1;
}
