// An interactive HGQL shell over the wire protocol: connects to a running
// hgql_server (see examples/hgql_server.cpp), sends each input line as a
// query, and pretty-prints the result table. Lines starting with ':' are
// admin verbs (e.g. ':server.info', ':stats', ':slowlog', ':snapshot.begin').
//
//   build:  cmake -B build && cmake --build build --target hgql_client
//   run:    ./build/examples/hgql_client [port] [host]
//   one-shot: echo "MATCH (s:Station) RETURN s.city AS c" | hgql_client 4217
//
// Exits on EOF, 'quit', or 'exit'.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "query/executor.h"
#include "server/client.h"

using namespace hygraph;

namespace {

std::string Render(const Value& v) {
  if (v.is_null()) return "null";
  return v.ToString();
}

void PrintTable(const query::QueryResult& table) {
  // Column-width layout: measure, then print.
  std::vector<size_t> width(table.columns.size());
  for (size_t c = 0; c < table.columns.size(); ++c) {
    width[c] = table.columns[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(Render(row[c]));
      if (c < width.size() && line.back().size() > width[c]) {
        width[c] = line.back().size();
      }
    }
    cells.push_back(std::move(line));
  }
  for (size_t c = 0; c < table.columns.size(); ++c) {
    std::printf("%-*s%s", static_cast<int>(width[c]),
                table.columns[c].c_str(),
                c + 1 < table.columns.size() ? "  " : "\n");
  }
  for (size_t c = 0; c < table.columns.size(); ++c) {
    std::printf("%s%s", std::string(width[c], '-').c_str(),
                c + 1 < table.columns.size() ? "  " : "\n");
  }
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(c < width.size() ? width[c] : 0),
                  line[c].c_str(), c + 1 < line.size() ? "  " : "\n");
    }
  }
  std::printf("(%zu row%s)\n", table.rows.size(),
              table.rows.size() == 1 ? "" : "s");
}

}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 4217;
  const std::string host = argc > 2 ? argv[2] : "127.0.0.1";

  auto client = server::HgqlClient::Connect(host, static_cast<uint16_t>(port),
                                            "hgql_client");
  if (!client.ok()) {
    std::fprintf(stderr, "connect %s:%d failed: %s\n", host.c_str(), port,
                 client.status().ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%d (session %llu)\n", host.c_str(), port,
              static_cast<unsigned long long>(client->session_id()));
  std::printf("HGQL> ");
  std::fflush(stdout);

  char buf[4096];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line == "quit" || line == "exit") break;
    if (!line.empty()) {
      const bool admin = line[0] == ':';
      auto result =
          admin ? client->Admin(line.substr(1)) : client->Query(line);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else if (result->columns.empty()) {
        std::printf("ok\n");
      } else {
        PrintTable(*result);
      }
    }
    std::printf("HGQL> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  client->Close();
  return 0;
}
