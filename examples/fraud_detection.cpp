// The running example (Sections 3 and 5): credit-card fraud detection the
// graph-only way, the time-series-only way, and the HyGraph way. Generates
// a world with planted ring fraudsters plus the paper's two decoy families
// ("User 3"-style heavy spenders and benign burst shoppers), runs all
// three detectors, and shows how the hybrid pipeline resolves the decoys.
//
//   run: ./build/examples/fraud_detection [users] [fraud_rate]

#include <cstdio>
#include <cstdlib>
#include <set>

#include "analytics/fraud.h"
#include "workloads/fraud_workload.h"

using namespace hygraph;

namespace {

void PrintVerdict(const core::HyGraph& hg, const char* title,
                  const analytics::FraudVerdict& verdict) {
  const auto metrics = *analytics::EvaluateVerdict(hg, verdict);
  std::printf("%-12s flags %3zu users | precision %.3f  recall %.3f  F1 %.3f\n",
              title, verdict.flagged_users.size(), metrics.precision(),
              metrics.recall(), metrics.f1());
}

std::string RoleOf(const core::HyGraph& hg, graph::VertexId user) {
  auto role = hg.GetVertexProperty(user, "gt_role");
  return role.ok() ? role->ToString() : "?";
}

}  // namespace

int main(int argc, char** argv) {
  workloads::FraudConfig config;
  config.users = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 250;
  config.fraud_rate = argc > 2 ? std::atof(argv[2]) : 0.06;
  config.merchants = 30;
  config.merchant_clusters = 5;
  config.days = 7;

  std::printf("== Credit-card fraud: graph-only vs ts-only vs HyGraph ==\n");
  std::printf("world: %zu users, %zu merchants, %zu days, %.0f%% ring fraud\n\n",
              config.users, config.merchants, config.days,
              config.fraud_rate * 100);

  auto hg = workloads::GenerateFraudHyGraph(config);
  if (!hg.ok()) {
    std::fprintf(stderr, "generate: %s\n", hg.status().ToString().c_str());
    return 1;
  }

  auto graph_verdict = *analytics::DetectFraudGraphOnly(*hg);
  auto ts_verdict = *analytics::DetectFraudTsOnly(*hg);
  core::HyGraph annotated = *hg;
  auto hybrid_verdict =
      *analytics::DetectFraudHybrid(annotated, {}, &annotated);

  PrintVerdict(*hg, "graph-only", graph_verdict);
  PrintVerdict(*hg, "ts-only", ts_verdict);
  PrintVerdict(*hg, "hybrid", hybrid_verdict);

  // Show the decoys each single-model path falls for — and that the hybrid
  // path does not.
  const std::set<graph::VertexId> hybrid_set(
      hybrid_verdict.flagged_users.begin(),
      hybrid_verdict.flagged_users.end());
  std::printf("\nfalse positives resolved by the hybrid pipeline:\n");
  size_t shown = 0;
  auto show_decoys = [&](const analytics::FraudVerdict& verdict,
                         const char* path) {
    for (graph::VertexId u : verdict.flagged_users) {
      auto fraud = hg->GetVertexProperty(u, "gt_fraud");
      if (fraud.ok() && !fraud->AsBool() && !hybrid_set.count(u) &&
          shown < 8) {
        std::printf("  %-10s flagged %s (%s) -- benign, hybrid cleared it\n",
                    path,
                    hg->GetVertexProperty(u, "name")->ToString().c_str(),
                    RoleOf(*hg, u).c_str());
        ++shown;
      }
    }
  };
  show_decoys(graph_verdict, "graph-only");
  show_decoys(ts_verdict, "ts-only");
  if (shown == 0) std::printf("  (none in this world)\n");

  // The annotated instance carries the result as a first-class subgraph.
  const auto subgraphs = annotated.SubgraphIds();
  if (!subgraphs.empty()) {
    auto members = annotated.SubgraphAt(subgraphs[0], config.start_time);
    std::printf("\nannotated HyGraph: subgraph 'Suspicious' holds %zu users; "
                "validate: %s\n",
                members->vertices.size(),
                annotated.Validate().ToString().c_str());
  }
  return 0;
}
