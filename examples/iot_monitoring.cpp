// The IoT / smart-manufacturing use case (Section 2): "thousands of time
// series structurally connected" — devices whose physical/logical topology
// matters as much as their telemetry. Builds a sensor network as a HyGraph
// (sensors are TS vertices, racks and gateways PG vertices), then runs the
// hybrid toolkit: community-contextual anomaly detection, correlation
// reachability from a failing sensor, hybrid pattern matching for a failure
// signature, and GraphRAG-style retrieval of similar devices.
//
//   run: ./build/examples/iot_monitoring [racks] [sensors_per_rack]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analytics/corr_reach.h"
#include "analytics/detection.h"
#include "analytics/hybrid_match.h"
#include "analytics/rag.h"
#include "common/rng.h"
#include "core/hygraph.h"
#include "ts/aggregate.h"

using namespace hygraph;

namespace {

// 48h of temperature telemetry at 30-min sampling; rack-specific load
// phase; optionally a thermal-runaway ramp in the last 12 hours.
ts::MultiSeries Telemetry(Rng* rng, double rack_phase, bool runaway) {
  ts::MultiSeries ms("temp", {"celsius"});
  const Timestamp t0 = 1700000000000;
  for (int i = 0; i < 96; ++i) {
    double value = 45.0 + 6.0 * std::sin(i * 2.0 * 3.14159 / 48.0 +
                                         rack_phase) +
                   rng->NextGaussian() * 0.4;
    if (runaway && i >= 72) {
      value += static_cast<double>(i - 72) * 1.5;  // ramp to ~80C
    }
    (void)ms.AppendRow(t0 + static_cast<Duration>(i) * 30 * kMinute,
                       {value});
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t racks = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 6;
  const size_t per_rack =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 8;

  std::printf("== IoT monitoring on HyGraph ==\n");
  std::printf("plant: %zu racks x %zu sensors, 48h @ 30min telemetry\n\n",
              racks, per_rack);

  Rng rng(2027);
  core::HyGraph hg;
  const graph::VertexId gateway =
      *hg.AddPgVertex({"Gateway"}, {{"name", Value("GW0")}});
  std::vector<graph::VertexId> sensors;
  graph::VertexId runaway_sensor = graph::kInvalidVertexId;
  for (size_t r = 0; r < racks; ++r) {
    const graph::VertexId rack = *hg.AddPgVertex(
        {"Rack"}, {{"name", Value("R" + std::to_string(r))}});
    (void)*hg.AddPgEdge(gateway, rack, "FEEDS", {});
    const double phase = 0.7 * static_cast<double>(r);
    // Rack-level aggregate telemetry as a series property, so
    // correlation-constrained traversal can flow sensor -> rack -> sensor.
    {
      Rng rack_rng(5000 + r);
      (void)*hg.SetVertexSeriesProperty(rack, "history",
                                        Telemetry(&rack_rng, phase, false));
    }
    for (size_t s = 0; s < per_rack; ++s) {
      const bool runaway = (r == 2 && s == 3);  // plant one failure
      auto sensor = *hg.AddTsVertex({"Sensor"},
                                    Telemetry(&rng, phase, runaway));
      (void)hg.SetVertexProperty(
          sensor, "name",
          Value("R" + std::to_string(r) + ".S" + std::to_string(s)));
      (void)*hg.AddPgEdge(rack, sensor, "HOSTS", {});
      sensors.push_back(sensor);
      if (runaway) runaway_sensor = sensor;
    }
  }
  std::printf("model: %zu vertices, %zu edges; validate: %s\n\n",
              hg.VertexCount(), hg.EdgeCount(),
              hg.Validate().ToString().c_str());

  // 1. Community-contextual anomaly detection (Table 2, row D): the
  //    runaway sensor must stand out against ITS rack, not the plant.
  analytics::ContextualDetectionOptions detect;
  detect.threshold = 2.2;
  detect.statistic = analytics::ContextualDetectionOptions::Statistic::kMax;
  auto anomalies = analytics::DetectContextualAnomalies(hg, detect);
  if (anomalies.ok()) {
    std::printf("contextual anomalies (vs own community):\n");
    for (const auto& anomaly : anomalies->anomalies) {
      std::printf("  %-8s z=%+.1f (max %.1fC vs community mean %.1fC)%s\n",
                  hg.GetVertexProperty(anomaly.vertex, "name")
                      ->ToString()
                      .c_str(),
                  anomaly.z_score, anomaly.statistic, anomaly.community_mean,
                  anomaly.vertex == runaway_sensor ? "  <-- planted" : "");
    }
  }

  // 2. Hybrid pattern match (row Q1) composed with a level filter: the
  //    shape constraint finds sustained rises (which healthy diurnal
  //    telemetry also contains — z-normalized shapes are level-blind), so
  //    the runaway signature additionally demands the absolute temperature
  //    actually left the safe envelope.
  analytics::HybridPatternQuery signature;
  signature.structure.AddVertex("r", "Rack");
  signature.structure.AddVertex("s", "Sensor");
  signature.structure.AddEdge("r", "s", "HOSTS");
  analytics::SeriesShapeConstraint ramp;
  ramp.var = "s";
  ramp.shape = {0, 3, 6, 9, 12, 15, 18, 21};  // steady climb
  ramp.max_distance = 1.0;
  signature.constraints.push_back(ramp);
  auto matches = analytics::MatchHybridPattern(hg, signature);
  if (matches.ok()) {
    size_t shape_only = matches->size();
    size_t confirmed = 0;
    std::printf("\nrunaway signature (structure + shape + level):\n");
    for (const auto& match : *matches) {
      const graph::VertexId sensor = match.match.vertices.at("s");
      const ts::Series temp = (*hg.VertexSeries(sensor))->VariableByIndex(0);
      auto peak = ts::Aggregate(temp, temp.TimeSpan(), ts::AggKind::kMax);
      if (!peak.ok() || *peak < 70.0) continue;  // level filter
      ++confirmed;
      std::printf("  rack %s hosts %s: rise at offset %zu, peak %.1fC%s\n",
                  hg.GetVertexProperty(match.match.vertices.at("r"), "name")
                      ->ToString()
                      .c_str(),
                  hg.GetVertexProperty(sensor, "name")->ToString().c_str(),
                  match.shape_hits[0].offset, *peak,
                  sensor == runaway_sensor ? "  <-- planted" : "");
    }
    std::printf("  (%zu sensors matched the shape alone; %zu also broke "
                "the 70C envelope)\n",
                shape_only, confirmed);
  }

  // 3. Correlation reachability (row Q3) from the failing sensor: which
  //    devices share its thermal regime through the topology?
  if (runaway_sensor != graph::kInvalidVertexId) {
    analytics::CorrReachOptions reach;
    reach.min_correlation = 0.5;
    reach.max_depth = 4;
    auto reached =
        analytics::CorrelationReachability(hg, runaway_sensor, reach);
    if (reached.ok()) {
      std::printf("\nthermally coupled devices reachable from the failing "
                  "sensor: %zu\n",
                  reached->size() - 1);
    }
  }

  // 4. GraphRAG retrieval (Section 6): devices behaving like the failing
  //    one, rendered as LLM-ready context.
  analytics::RagOptions rag;
  rag.top_k = 2;
  auto retriever = analytics::HyGraphRetriever::Build(&hg, rag);
  if (retriever.ok() && runaway_sensor != graph::kInvalidVertexId) {
    auto contexts = retriever->RetrieveSimilarTo(runaway_sensor);
    if (contexts.ok()) {
      std::printf("\nGraphRAG: context for devices most similar to the "
                  "failing sensor:\n");
      for (const auto& context : *contexts) {
        std::printf("--- score %.3f ---\n%s\n", context.score,
                    context.text.c_str());
      }
    }
  }
  return 0;
}
