// The micromobility use case (Section 2): a bike-sharing network whose
// stations carry availability series. Loads the synthetic stand-in for the
// paper's published dataset into the polyglot store, answers operational
// questions in HGQL, summarizes districts with the hybrid aggregate
// operator, and forecasts demand for one station.
//
//   run: ./build/examples/bike_sharing [stations] [days]

#include <cstdio>
#include <cstdlib>

#include "analytics/hybrid_aggregate.h"
#include "query/executor.h"
#include "storage/polyglot.h"
#include "ts/forecast.h"
#include "workloads/bike_sharing.h"

using namespace hygraph;

int main(int argc, char** argv) {
  workloads::BikeSharingConfig config;
  config.stations = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 80;
  config.days = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 7;
  config.districts = 8;
  config.sample_interval = 15 * kMinute;

  std::printf("== Bike sharing on HyGraph ==\n");
  std::printf("network: %zu stations in %zu districts, %zu days @ 15 min\n\n",
              config.stations, config.districts, config.days);

  auto dataset = workloads::GenerateBikeSharing(config);
  if (!dataset.ok()) return 1;

  storage::PolyglotStore store;
  auto stations = workloads::LoadIntoBackend(*dataset, &store);
  if (!stations.ok()) return 1;

  const std::string t0 = std::to_string(dataset->start());
  const std::string t1 = std::to_string(dataset->end());

  // 1. Operational question: the emptiest stations on average (candidates
  //    for rebalancing).
  const std::string empty_q =
      "MATCH (s:Station) RETURN s.name AS station, s.district AS district, "
      "ts_avg(s.bikes, " + t0 + ", " + t1 + ") AS avg_bikes "
      "ORDER BY avg_bikes ASC, station LIMIT 5";
  auto emptiest = query::Execute(store, empty_q);
  if (!emptiest.ok()) return 1;
  std::printf("emptiest stations (rebalancing candidates):\n%s\n",
              emptiest->ToString().c_str());

  // 2. Hybrid question: neighbors of the busiest hub whose availability
  //    tracks the hub's (same demand regime -> bad failover partners).
  const std::string corr_q =
      "MATCH (a:Station {name: 'S0'})-[:TRIP]->(b:Station) "
      "RETURN b.name AS neighbor, ts_corr(a.bikes, b.bikes, " + t0 + ", " +
      t1 + ") AS corr ORDER BY corr DESC LIMIT 5";
  auto correlated = query::Execute(store, corr_q);
  if (!correlated.ok()) return 1;
  std::printf("S0 trip-neighbors by availability correlation:\n%s\n",
              correlated->ToString().c_str());

  // 3. District summary via the hybrid aggregate operator (Q2 of the
  //    roadmap): structure collapses to one super-vertex per district and
  //    the member series merge at 6-hour granularity.
  auto hg = workloads::ToHyGraph(*dataset);
  if (!hg.ok()) return 1;
  analytics::HybridAggregateOptions agg;
  agg.group_key = "district";
  agg.granularity = 6 * kHour;
  auto summary = analytics::HybridAggregate(*hg, agg);
  if (!summary.ok()) return 1;
  std::printf("district summary (hybrid aggregate, 6h buckets):\n");
  for (graph::VertexId v : summary->summary.TsVertices()) {
    const auto& series = **summary->summary.VertexSeries(v);
    double avg = 0.0;
    for (size_t r = 0; r < series.size(); ++r) avg += series.at(r, 0);
    if (series.size() > 0) avg /= static_cast<double>(series.size());
    std::printf("  district %s: %zu members, %zu buckets, mean bikes %.1f\n",
                summary->summary.GetVertexProperty(v, "district")
                    ->ToString()
                    .c_str(),
                static_cast<size_t>(
                    summary->summary.GetVertexProperty(v, "count")->AsInt()),
                series.size(), avg);
  }

  // 4. Forecast tomorrow's availability for S0 (seasonal-naive, one-day
  //    season vs Holt trend).
  const ts::Series history = dataset->stations[0].bikes;
  const size_t season =
      static_cast<size_t>(kDay / config.sample_interval);
  auto snaive = ts::SeasonalNaiveForecast(history, season, 8,
                                          config.sample_interval * 12);
  auto holt = ts::HoltForecast(history, 0.4, 0.2, 8,
                               config.sample_interval * 12);
  if (snaive.ok() && holt.ok()) {
    std::printf("\nS0 availability forecast (next 8 steps of 3h):\n");
    std::printf("  %-26s %10s %10s\n", "time", "seasonal", "holt");
    for (size_t i = 0; i < snaive->size(); ++i) {
      std::printf("  %-26s %10.1f %10.1f\n",
                  FormatTimestamp(snaive->at(i).t).c_str(),
                  snaive->at(i).value, holt->at(i).value);
    }
  }
  return 0;
}
