// Durability & crash recovery walkthrough: wrap a storage backend in a
// DurableStore, ingest a small sensor workload, "crash" by dropping the
// process state, and recover everything from the snapshot + write-ahead
// log — including a torn WAL tail, which is salvaged rather than fatal.
//
//   build:  cmake -B build && cmake --build build --target durability_recovery
//   run:    ./build/examples/durability_recovery

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "storage/durable.h"
#include "storage/env.h"
#include "storage/polyglot.h"

using namespace hygraph;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  std::printf("== HyGraph durability & recovery ==\n\n");
  storage::Env* env = storage::Env::Default();
  char tmpl[] = "/tmp/hygraph_durability_example_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) return 1;
  const std::string dir = std::string(tmpl) + "/store";

  // 1. Open a durable store over the polyglot backend and ingest. Every
  //    mutation is WAL-logged and fsynced before it is acknowledged.
  {
    storage::DurableStore store(env, dir,
                                std::make_unique<storage::PolyglotStore>());
    Check(store.Open(), "open");
    auto station = store.AddVertex({"Station"}, {{"city", Value("berlin")}});
    auto sensor = store.AddVertex({"Sensor"}, {{"model", Value("T-1000")}});
    auto link = store.AddEdge(*sensor, *station, "mounted_at", {});
    Check(link.status(), "add edge");
    for (int i = 0; i < 24; ++i) {
      Check(store.AppendVertexSample(*sensor, "temperature",
                                     1700000000000 + i * kHour, 15.0 + i % 7),
            "append sample");
    }
    std::printf("ingested: %zu vertices, %zu edges, 24 samples\n",
                store.topology().VertexCount(), store.topology().EdgeCount());

    // 2. Checkpoint: full state goes into a checksummed snapshot, the WAL
    //    starts a fresh epoch.
    Check(store.Checkpoint(), "checkpoint");
    std::printf("checkpointed at sequence %llu\n",
                static_cast<unsigned long long>(store.next_seq() - 1));

    // 3. More writes after the checkpoint — these live only in the WAL.
    for (int i = 24; i < 30; ++i) {
      Check(store.AppendVertexSample(*sensor, "temperature",
                                     1700000000000 + i * kHour, 21.5),
            "append sample");
    }
    std::printf("appended 6 post-checkpoint samples\n\n");
  }  // <- the store object dies here: our simulated crash

  // 4. Tear the WAL tail, as a real power cut might mid-write.
  auto size = env->GetFileSize(dir + "/wal.log");
  Check(size.status(), "stat wal");
  Check(env->TruncateFile(dir + "/wal.log", *size - 5), "tear wal");
  std::printf("simulated crash: tore the last 5 bytes off the WAL\n\n");

  // 5. Recover: snapshot + WAL replay; the torn record is truncated away.
  storage::DurableStore store(env, dir,
                              std::make_unique<storage::PolyglotStore>());
  Check(store.Open(), "recover");
  const auto& stats = store.recovery();
  std::printf("recovered:\n");
  std::printf("  snapshot loaded:      %s (seq %llu)\n",
              stats.snapshot_loaded ? "yes" : "no",
              static_cast<unsigned long long>(stats.snapshot_seq));
  std::printf("  wal records replayed: %zu\n", stats.wal_records_replayed);
  std::printf("  torn tail salvaged:   %s (%llu bytes dropped)\n",
              stats.wal_torn_tail ? "yes" : "no",
              static_cast<unsigned long long>(stats.wal_bytes_dropped));
  auto series = store.VertexSeriesRange(1, "temperature", Interval::All());
  Check(series.status(), "read series");
  std::printf("  samples recovered:    %zu of 30 (the record the tear hit "
              "was truncated away; everything before it survived)\n",
              series->samples().size());

  // 6. The recovered store is immediately writable again.
  Check(store.AppendVertexSample(1, "temperature",
                                 1700000000000 + 30 * kHour, 19.0),
        "post-recovery write");
  std::printf("\npost-recovery append succeeded — back in business\n");
  std::system(("rm -rf " + std::string(tmpl)).c_str());
  return 0;
}
