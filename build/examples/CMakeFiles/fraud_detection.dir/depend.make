# Empty dependencies file for fraud_detection.
# This may be replaced when dependencies are built.
