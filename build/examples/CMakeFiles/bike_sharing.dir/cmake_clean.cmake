file(REMOVE_RECURSE
  "CMakeFiles/bike_sharing.dir/bike_sharing.cpp.o"
  "CMakeFiles/bike_sharing.dir/bike_sharing.cpp.o.d"
  "bike_sharing"
  "bike_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bike_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
