# Empty compiler generated dependencies file for bike_sharing.
# This may be replaced when dependencies are built.
