# Empty dependencies file for iot_monitoring.
# This may be replaced when dependencies are built.
