file(REMOVE_RECURSE
  "CMakeFiles/iot_monitoring.dir/iot_monitoring.cpp.o"
  "CMakeFiles/iot_monitoring.dir/iot_monitoring.cpp.o.d"
  "iot_monitoring"
  "iot_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
