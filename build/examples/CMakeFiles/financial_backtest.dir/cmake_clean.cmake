file(REMOVE_RECURSE
  "CMakeFiles/financial_backtest.dir/financial_backtest.cpp.o"
  "CMakeFiles/financial_backtest.dir/financial_backtest.cpp.o.d"
  "financial_backtest"
  "financial_backtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_backtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
