# Empty compiler generated dependencies file for financial_backtest.
# This may be replaced when dependencies are built.
