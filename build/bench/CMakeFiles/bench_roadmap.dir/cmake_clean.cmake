file(REMOVE_RECURSE
  "CMakeFiles/bench_roadmap.dir/bench_roadmap.cc.o"
  "CMakeFiles/bench_roadmap.dir/bench_roadmap.cc.o.d"
  "bench_roadmap"
  "bench_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
