# Empty dependencies file for bench_fig3_convert.
# This may be replaced when dependencies are built.
