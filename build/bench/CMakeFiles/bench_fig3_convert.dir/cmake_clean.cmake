file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_convert.dir/bench_fig3_convert.cc.o"
  "CMakeFiles/bench_fig3_convert.dir/bench_fig3_convert.cc.o.d"
  "bench_fig3_convert"
  "bench_fig3_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
