# Empty dependencies file for bench_fig2_fraud.
# This may be replaced when dependencies are built.
