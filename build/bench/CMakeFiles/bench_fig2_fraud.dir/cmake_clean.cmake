file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fraud.dir/bench_fig2_fraud.cc.o"
  "CMakeFiles/bench_fig2_fraud.dir/bench_fig2_fraud.cc.o.d"
  "bench_fig2_fraud"
  "bench_fig2_fraud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fraud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
