file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pipeline.dir/bench_fig4_pipeline.cc.o"
  "CMakeFiles/bench_fig4_pipeline.dir/bench_fig4_pipeline.cc.o.d"
  "bench_fig4_pipeline"
  "bench_fig4_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
