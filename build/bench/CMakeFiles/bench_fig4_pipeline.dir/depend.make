# Empty dependencies file for bench_fig4_pipeline.
# This may be replaced when dependencies are built.
