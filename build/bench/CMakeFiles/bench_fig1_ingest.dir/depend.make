# Empty dependencies file for bench_fig1_ingest.
# This may be replaced when dependencies are built.
