file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ingest.dir/bench_fig1_ingest.cc.o"
  "CMakeFiles/bench_fig1_ingest.dir/bench_fig1_ingest.cc.o.d"
  "bench_fig1_ingest"
  "bench_fig1_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
