file(REMOVE_RECURSE
  "CMakeFiles/hygraph_query.dir/query/ast.cc.o"
  "CMakeFiles/hygraph_query.dir/query/ast.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/backend.cc.o"
  "CMakeFiles/hygraph_query.dir/query/backend.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/executor.cc.o"
  "CMakeFiles/hygraph_query.dir/query/executor.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/functions.cc.o"
  "CMakeFiles/hygraph_query.dir/query/functions.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/lexer.cc.o"
  "CMakeFiles/hygraph_query.dir/query/lexer.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/parser.cc.o"
  "CMakeFiles/hygraph_query.dir/query/parser.cc.o.d"
  "CMakeFiles/hygraph_query.dir/query/planner.cc.o"
  "CMakeFiles/hygraph_query.dir/query/planner.cc.o.d"
  "libhygraph_query.a"
  "libhygraph_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
