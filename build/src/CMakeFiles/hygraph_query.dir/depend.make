# Empty dependencies file for hygraph_query.
# This may be replaced when dependencies are built.
