file(REMOVE_RECURSE
  "libhygraph_query.a"
)
