
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/hygraph_query.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/ast.cc.o.d"
  "/root/repo/src/query/backend.cc" "src/CMakeFiles/hygraph_query.dir/query/backend.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/backend.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/hygraph_query.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/executor.cc.o.d"
  "/root/repo/src/query/functions.cc" "src/CMakeFiles/hygraph_query.dir/query/functions.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/functions.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/hygraph_query.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/hygraph_query.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/hygraph_query.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/hygraph_query.dir/query/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
