# Empty compiler generated dependencies file for hygraph_common.
# This may be replaced when dependencies are built.
