file(REMOVE_RECURSE
  "libhygraph_common.a"
)
