file(REMOVE_RECURSE
  "CMakeFiles/hygraph_common.dir/common/stats.cc.o"
  "CMakeFiles/hygraph_common.dir/common/stats.cc.o.d"
  "CMakeFiles/hygraph_common.dir/common/status.cc.o"
  "CMakeFiles/hygraph_common.dir/common/status.cc.o.d"
  "CMakeFiles/hygraph_common.dir/common/strings.cc.o"
  "CMakeFiles/hygraph_common.dir/common/strings.cc.o.d"
  "CMakeFiles/hygraph_common.dir/common/time.cc.o"
  "CMakeFiles/hygraph_common.dir/common/time.cc.o.d"
  "CMakeFiles/hygraph_common.dir/common/value.cc.o"
  "CMakeFiles/hygraph_common.dir/common/value.cc.o.d"
  "libhygraph_common.a"
  "libhygraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
