file(REMOVE_RECURSE
  "libhygraph_workloads.a"
)
