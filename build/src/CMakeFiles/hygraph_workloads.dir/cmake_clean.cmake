file(REMOVE_RECURSE
  "CMakeFiles/hygraph_workloads.dir/workloads/bike_sharing.cc.o"
  "CMakeFiles/hygraph_workloads.dir/workloads/bike_sharing.cc.o.d"
  "CMakeFiles/hygraph_workloads.dir/workloads/financial.cc.o"
  "CMakeFiles/hygraph_workloads.dir/workloads/financial.cc.o.d"
  "CMakeFiles/hygraph_workloads.dir/workloads/fraud_workload.cc.o"
  "CMakeFiles/hygraph_workloads.dir/workloads/fraud_workload.cc.o.d"
  "libhygraph_workloads.a"
  "libhygraph_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
