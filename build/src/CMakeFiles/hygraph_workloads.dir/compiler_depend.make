# Empty compiler generated dependencies file for hygraph_workloads.
# This may be replaced when dependencies are built.
