file(REMOVE_RECURSE
  "CMakeFiles/hygraph_storage.dir/storage/all_in_graph.cc.o"
  "CMakeFiles/hygraph_storage.dir/storage/all_in_graph.cc.o.d"
  "CMakeFiles/hygraph_storage.dir/storage/polyglot.cc.o"
  "CMakeFiles/hygraph_storage.dir/storage/polyglot.cc.o.d"
  "libhygraph_storage.a"
  "libhygraph_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
