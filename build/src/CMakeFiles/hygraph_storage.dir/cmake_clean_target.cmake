file(REMOVE_RECURSE
  "libhygraph_storage.a"
)
