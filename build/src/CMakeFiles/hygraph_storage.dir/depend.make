# Empty dependencies file for hygraph_storage.
# This may be replaced when dependencies are built.
