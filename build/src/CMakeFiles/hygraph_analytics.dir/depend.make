# Empty dependencies file for hygraph_analytics.
# This may be replaced when dependencies are built.
