file(REMOVE_RECURSE
  "CMakeFiles/hygraph_analytics.dir/analytics/classify.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/classify.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/cluster.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/cluster.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/corr_reach.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/corr_reach.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/detection.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/detection.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/embedding.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/embedding.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/fraud.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/fraud.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/hybrid_aggregate.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/hybrid_aggregate.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/hybrid_match.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/hybrid_match.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/link_prediction.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/link_prediction.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/pattern_mining.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/pattern_mining.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/rag.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/rag.cc.o.d"
  "CMakeFiles/hygraph_analytics.dir/analytics/seg_snapshot.cc.o"
  "CMakeFiles/hygraph_analytics.dir/analytics/seg_snapshot.cc.o.d"
  "libhygraph_analytics.a"
  "libhygraph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
