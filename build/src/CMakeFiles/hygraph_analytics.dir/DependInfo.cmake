
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/classify.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/classify.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/classify.cc.o.d"
  "/root/repo/src/analytics/cluster.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/cluster.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/cluster.cc.o.d"
  "/root/repo/src/analytics/corr_reach.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/corr_reach.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/corr_reach.cc.o.d"
  "/root/repo/src/analytics/detection.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/detection.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/detection.cc.o.d"
  "/root/repo/src/analytics/embedding.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/embedding.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/embedding.cc.o.d"
  "/root/repo/src/analytics/fraud.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/fraud.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/fraud.cc.o.d"
  "/root/repo/src/analytics/hybrid_aggregate.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/hybrid_aggregate.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/hybrid_aggregate.cc.o.d"
  "/root/repo/src/analytics/hybrid_match.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/hybrid_match.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/hybrid_match.cc.o.d"
  "/root/repo/src/analytics/link_prediction.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/link_prediction.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/link_prediction.cc.o.d"
  "/root/repo/src/analytics/pattern_mining.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/pattern_mining.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/pattern_mining.cc.o.d"
  "/root/repo/src/analytics/rag.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/rag.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/rag.cc.o.d"
  "/root/repo/src/analytics/seg_snapshot.cc" "src/CMakeFiles/hygraph_analytics.dir/analytics/seg_snapshot.cc.o" "gcc" "src/CMakeFiles/hygraph_analytics.dir/analytics/seg_snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
