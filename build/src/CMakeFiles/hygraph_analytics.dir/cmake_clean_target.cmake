file(REMOVE_RECURSE
  "libhygraph_analytics.a"
)
