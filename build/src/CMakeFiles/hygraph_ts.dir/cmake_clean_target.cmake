file(REMOVE_RECURSE
  "libhygraph_ts.a"
)
