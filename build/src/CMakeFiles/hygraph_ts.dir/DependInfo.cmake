
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/aggregate.cc" "src/CMakeFiles/hygraph_ts.dir/ts/aggregate.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/aggregate.cc.o.d"
  "/root/repo/src/ts/anomaly.cc" "src/CMakeFiles/hygraph_ts.dir/ts/anomaly.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/anomaly.cc.o.d"
  "/root/repo/src/ts/correlate.cc" "src/CMakeFiles/hygraph_ts.dir/ts/correlate.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/correlate.cc.o.d"
  "/root/repo/src/ts/distance.cc" "src/CMakeFiles/hygraph_ts.dir/ts/distance.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/distance.cc.o.d"
  "/root/repo/src/ts/downsample.cc" "src/CMakeFiles/hygraph_ts.dir/ts/downsample.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/downsample.cc.o.d"
  "/root/repo/src/ts/features.cc" "src/CMakeFiles/hygraph_ts.dir/ts/features.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/features.cc.o.d"
  "/root/repo/src/ts/forecast.cc" "src/CMakeFiles/hygraph_ts.dir/ts/forecast.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/forecast.cc.o.d"
  "/root/repo/src/ts/hypertable.cc" "src/CMakeFiles/hygraph_ts.dir/ts/hypertable.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/hypertable.cc.o.d"
  "/root/repo/src/ts/motif.cc" "src/CMakeFiles/hygraph_ts.dir/ts/motif.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/motif.cc.o.d"
  "/root/repo/src/ts/multiseries.cc" "src/CMakeFiles/hygraph_ts.dir/ts/multiseries.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/multiseries.cc.o.d"
  "/root/repo/src/ts/pca.cc" "src/CMakeFiles/hygraph_ts.dir/ts/pca.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/pca.cc.o.d"
  "/root/repo/src/ts/sax.cc" "src/CMakeFiles/hygraph_ts.dir/ts/sax.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/sax.cc.o.d"
  "/root/repo/src/ts/segmentation.cc" "src/CMakeFiles/hygraph_ts.dir/ts/segmentation.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/segmentation.cc.o.d"
  "/root/repo/src/ts/series.cc" "src/CMakeFiles/hygraph_ts.dir/ts/series.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/series.cc.o.d"
  "/root/repo/src/ts/subsequence.cc" "src/CMakeFiles/hygraph_ts.dir/ts/subsequence.cc.o" "gcc" "src/CMakeFiles/hygraph_ts.dir/ts/subsequence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
