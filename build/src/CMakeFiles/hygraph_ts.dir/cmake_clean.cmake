file(REMOVE_RECURSE
  "CMakeFiles/hygraph_ts.dir/ts/aggregate.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/aggregate.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/anomaly.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/anomaly.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/correlate.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/correlate.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/distance.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/distance.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/downsample.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/downsample.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/features.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/features.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/forecast.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/forecast.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/hypertable.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/hypertable.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/motif.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/motif.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/multiseries.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/multiseries.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/pca.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/pca.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/sax.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/sax.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/segmentation.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/segmentation.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/series.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/series.cc.o.d"
  "CMakeFiles/hygraph_ts.dir/ts/subsequence.cc.o"
  "CMakeFiles/hygraph_ts.dir/ts/subsequence.cc.o.d"
  "libhygraph_ts.a"
  "libhygraph_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
