# Empty dependencies file for hygraph_ts.
# This may be replaced when dependencies are built.
