# Empty dependencies file for hygraph_core.
# This may be replaced when dependencies are built.
