file(REMOVE_RECURSE
  "CMakeFiles/hygraph_core.dir/core/builder.cc.o"
  "CMakeFiles/hygraph_core.dir/core/builder.cc.o.d"
  "CMakeFiles/hygraph_core.dir/core/convert.cc.o"
  "CMakeFiles/hygraph_core.dir/core/convert.cc.o.d"
  "CMakeFiles/hygraph_core.dir/core/hygraph.cc.o"
  "CMakeFiles/hygraph_core.dir/core/hygraph.cc.o.d"
  "CMakeFiles/hygraph_core.dir/core/serialize.cc.o"
  "CMakeFiles/hygraph_core.dir/core/serialize.cc.o.d"
  "CMakeFiles/hygraph_core.dir/core/stream.cc.o"
  "CMakeFiles/hygraph_core.dir/core/stream.cc.o.d"
  "CMakeFiles/hygraph_core.dir/core/validate.cc.o"
  "CMakeFiles/hygraph_core.dir/core/validate.cc.o.d"
  "libhygraph_core.a"
  "libhygraph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
