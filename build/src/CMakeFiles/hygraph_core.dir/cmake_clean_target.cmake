file(REMOVE_RECURSE
  "libhygraph_core.a"
)
