
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cc" "src/CMakeFiles/hygraph_core.dir/core/builder.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/builder.cc.o.d"
  "/root/repo/src/core/convert.cc" "src/CMakeFiles/hygraph_core.dir/core/convert.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/convert.cc.o.d"
  "/root/repo/src/core/hygraph.cc" "src/CMakeFiles/hygraph_core.dir/core/hygraph.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/hygraph.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/hygraph_core.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/CMakeFiles/hygraph_core.dir/core/stream.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/stream.cc.o.d"
  "/root/repo/src/core/validate.cc" "src/CMakeFiles/hygraph_core.dir/core/validate.cc.o" "gcc" "src/CMakeFiles/hygraph_core.dir/core/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
