file(REMOVE_RECURSE
  "libhygraph_graph.a"
)
