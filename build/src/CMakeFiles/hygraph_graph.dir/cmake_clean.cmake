file(REMOVE_RECURSE
  "CMakeFiles/hygraph_graph.dir/graph/aggregate.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/aggregate.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/algorithms.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/algorithms.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/centrality.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/centrality.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/community.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/community.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/pattern.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/pattern.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/property_graph.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/property_graph.cc.o.d"
  "CMakeFiles/hygraph_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/hygraph_graph.dir/graph/traversal.cc.o.d"
  "libhygraph_graph.a"
  "libhygraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
