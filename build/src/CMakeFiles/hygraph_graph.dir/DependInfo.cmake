
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/aggregate.cc" "src/CMakeFiles/hygraph_graph.dir/graph/aggregate.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/aggregate.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/hygraph_graph.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/centrality.cc" "src/CMakeFiles/hygraph_graph.dir/graph/centrality.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/centrality.cc.o.d"
  "/root/repo/src/graph/community.cc" "src/CMakeFiles/hygraph_graph.dir/graph/community.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/community.cc.o.d"
  "/root/repo/src/graph/pattern.cc" "src/CMakeFiles/hygraph_graph.dir/graph/pattern.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/pattern.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/CMakeFiles/hygraph_graph.dir/graph/property_graph.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/property_graph.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/hygraph_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/hygraph_graph.dir/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
