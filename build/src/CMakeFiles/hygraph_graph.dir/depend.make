# Empty dependencies file for hygraph_graph.
# This may be replaced when dependencies are built.
