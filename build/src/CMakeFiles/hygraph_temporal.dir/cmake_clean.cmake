file(REMOVE_RECURSE
  "CMakeFiles/hygraph_temporal.dir/temporal/metric_evolution.cc.o"
  "CMakeFiles/hygraph_temporal.dir/temporal/metric_evolution.cc.o.d"
  "CMakeFiles/hygraph_temporal.dir/temporal/snapshot.cc.o"
  "CMakeFiles/hygraph_temporal.dir/temporal/snapshot.cc.o.d"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_graph.cc.o"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_graph.cc.o.d"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_pattern.cc.o"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_pattern.cc.o.d"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_reachability.cc.o"
  "CMakeFiles/hygraph_temporal.dir/temporal/temporal_reachability.cc.o.d"
  "libhygraph_temporal.a"
  "libhygraph_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
