# Empty dependencies file for hygraph_temporal.
# This may be replaced when dependencies are built.
