
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/metric_evolution.cc" "src/CMakeFiles/hygraph_temporal.dir/temporal/metric_evolution.cc.o" "gcc" "src/CMakeFiles/hygraph_temporal.dir/temporal/metric_evolution.cc.o.d"
  "/root/repo/src/temporal/snapshot.cc" "src/CMakeFiles/hygraph_temporal.dir/temporal/snapshot.cc.o" "gcc" "src/CMakeFiles/hygraph_temporal.dir/temporal/snapshot.cc.o.d"
  "/root/repo/src/temporal/temporal_graph.cc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_graph.cc.o" "gcc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_graph.cc.o.d"
  "/root/repo/src/temporal/temporal_pattern.cc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_pattern.cc.o" "gcc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_pattern.cc.o.d"
  "/root/repo/src/temporal/temporal_reachability.cc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_reachability.cc.o" "gcc" "src/CMakeFiles/hygraph_temporal.dir/temporal/temporal_reachability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
