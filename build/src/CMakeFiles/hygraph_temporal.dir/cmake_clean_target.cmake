file(REMOVE_RECURSE
  "libhygraph_temporal.a"
)
