file(REMOVE_RECURSE
  "CMakeFiles/detection_test.dir/detection_test.cc.o"
  "CMakeFiles/detection_test.dir/detection_test.cc.o.d"
  "detection_test"
  "detection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
