# Empty compiler generated dependencies file for detection_test.
# This may be replaced when dependencies are built.
