# Empty dependencies file for detection_test.
# This may be replaced when dependencies are built.
