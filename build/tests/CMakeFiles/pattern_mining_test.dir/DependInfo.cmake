
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pattern_mining_test.cc" "tests/CMakeFiles/pattern_mining_test.dir/pattern_mining_test.cc.o" "gcc" "tests/CMakeFiles/pattern_mining_test.dir/pattern_mining_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hygraph_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hygraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
