file(REMOVE_RECURSE
  "CMakeFiles/pattern_mining_test.dir/pattern_mining_test.cc.o"
  "CMakeFiles/pattern_mining_test.dir/pattern_mining_test.cc.o.d"
  "pattern_mining_test"
  "pattern_mining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
