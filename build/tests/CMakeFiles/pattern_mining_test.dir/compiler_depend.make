# Empty compiler generated dependencies file for pattern_mining_test.
# This may be replaced when dependencies are built.
