file(REMOVE_RECURSE
  "CMakeFiles/temporal_pattern_test.dir/temporal_pattern_test.cc.o"
  "CMakeFiles/temporal_pattern_test.dir/temporal_pattern_test.cc.o.d"
  "temporal_pattern_test"
  "temporal_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
