# Empty compiler generated dependencies file for temporal_pattern_test.
# This may be replaced when dependencies are built.
