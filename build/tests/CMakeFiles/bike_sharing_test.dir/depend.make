# Empty dependencies file for bike_sharing_test.
# This may be replaced when dependencies are built.
