file(REMOVE_RECURSE
  "CMakeFiles/bike_sharing_test.dir/bike_sharing_test.cc.o"
  "CMakeFiles/bike_sharing_test.dir/bike_sharing_test.cc.o.d"
  "bike_sharing_test"
  "bike_sharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bike_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
