# Empty compiler generated dependencies file for polyglot_test.
# This may be replaced when dependencies are built.
