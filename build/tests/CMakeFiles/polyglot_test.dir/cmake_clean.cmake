file(REMOVE_RECURSE
  "CMakeFiles/polyglot_test.dir/polyglot_test.cc.o"
  "CMakeFiles/polyglot_test.dir/polyglot_test.cc.o.d"
  "polyglot_test"
  "polyglot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyglot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
