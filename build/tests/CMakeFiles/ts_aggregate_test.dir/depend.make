# Empty dependencies file for ts_aggregate_test.
# This may be replaced when dependencies are built.
