file(REMOVE_RECURSE
  "CMakeFiles/ts_aggregate_test.dir/ts_aggregate_test.cc.o"
  "CMakeFiles/ts_aggregate_test.dir/ts_aggregate_test.cc.o.d"
  "ts_aggregate_test"
  "ts_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
