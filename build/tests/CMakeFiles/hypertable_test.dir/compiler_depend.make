# Empty compiler generated dependencies file for hypertable_test.
# This may be replaced when dependencies are built.
