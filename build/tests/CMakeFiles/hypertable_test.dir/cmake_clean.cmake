file(REMOVE_RECURSE
  "CMakeFiles/hypertable_test.dir/hypertable_test.cc.o"
  "CMakeFiles/hypertable_test.dir/hypertable_test.cc.o.d"
  "hypertable_test"
  "hypertable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypertable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
