# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for all_in_graph_test.
