# Empty dependencies file for all_in_graph_test.
# This may be replaced when dependencies are built.
