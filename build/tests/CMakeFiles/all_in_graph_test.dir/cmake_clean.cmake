file(REMOVE_RECURSE
  "CMakeFiles/all_in_graph_test.dir/all_in_graph_test.cc.o"
  "CMakeFiles/all_in_graph_test.dir/all_in_graph_test.cc.o.d"
  "all_in_graph_test"
  "all_in_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_in_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
