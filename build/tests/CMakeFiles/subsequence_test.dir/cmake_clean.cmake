file(REMOVE_RECURSE
  "CMakeFiles/subsequence_test.dir/subsequence_test.cc.o"
  "CMakeFiles/subsequence_test.dir/subsequence_test.cc.o.d"
  "subsequence_test"
  "subsequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
