# Empty compiler generated dependencies file for subsequence_test.
# This may be replaced when dependencies are built.
