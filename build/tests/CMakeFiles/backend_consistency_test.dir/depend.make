# Empty dependencies file for backend_consistency_test.
# This may be replaced when dependencies are built.
