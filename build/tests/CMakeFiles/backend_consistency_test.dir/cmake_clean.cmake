file(REMOVE_RECURSE
  "CMakeFiles/backend_consistency_test.dir/backend_consistency_test.cc.o"
  "CMakeFiles/backend_consistency_test.dir/backend_consistency_test.cc.o.d"
  "backend_consistency_test"
  "backend_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
