file(REMOVE_RECURSE
  "CMakeFiles/hybrid_match_test.dir/hybrid_match_test.cc.o"
  "CMakeFiles/hybrid_match_test.dir/hybrid_match_test.cc.o.d"
  "hybrid_match_test"
  "hybrid_match_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
