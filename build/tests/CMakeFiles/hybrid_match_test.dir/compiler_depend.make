# Empty compiler generated dependencies file for hybrid_match_test.
# This may be replaced when dependencies are built.
