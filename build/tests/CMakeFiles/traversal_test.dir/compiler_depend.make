# Empty compiler generated dependencies file for traversal_test.
# This may be replaced when dependencies are built.
