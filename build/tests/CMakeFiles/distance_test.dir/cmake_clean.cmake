file(REMOVE_RECURSE
  "CMakeFiles/distance_test.dir/distance_test.cc.o"
  "CMakeFiles/distance_test.dir/distance_test.cc.o.d"
  "distance_test"
  "distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
