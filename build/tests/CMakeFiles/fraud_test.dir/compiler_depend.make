# Empty compiler generated dependencies file for fraud_test.
# This may be replaced when dependencies are built.
