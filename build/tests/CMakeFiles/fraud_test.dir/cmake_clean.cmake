file(REMOVE_RECURSE
  "CMakeFiles/fraud_test.dir/fraud_test.cc.o"
  "CMakeFiles/fraud_test.dir/fraud_test.cc.o.d"
  "fraud_test"
  "fraud_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
