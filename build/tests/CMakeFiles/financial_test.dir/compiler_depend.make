# Empty compiler generated dependencies file for financial_test.
# This may be replaced when dependencies are built.
