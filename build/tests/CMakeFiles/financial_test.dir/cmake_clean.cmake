file(REMOVE_RECURSE
  "CMakeFiles/financial_test.dir/financial_test.cc.o"
  "CMakeFiles/financial_test.dir/financial_test.cc.o.d"
  "financial_test"
  "financial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
