file(REMOVE_RECURSE
  "CMakeFiles/hygraph_test.dir/hygraph_test.cc.o"
  "CMakeFiles/hygraph_test.dir/hygraph_test.cc.o.d"
  "hygraph_test"
  "hygraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hygraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
