# Empty compiler generated dependencies file for hygraph_test.
# This may be replaced when dependencies are built.
