file(REMOVE_RECURSE
  "CMakeFiles/anomaly_test.dir/anomaly_test.cc.o"
  "CMakeFiles/anomaly_test.dir/anomaly_test.cc.o.d"
  "anomaly_test"
  "anomaly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
