file(REMOVE_RECURSE
  "CMakeFiles/algorithms_test.dir/algorithms_test.cc.o"
  "CMakeFiles/algorithms_test.dir/algorithms_test.cc.o.d"
  "algorithms_test"
  "algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
