file(REMOVE_RECURSE
  "CMakeFiles/community_test.dir/community_test.cc.o"
  "CMakeFiles/community_test.dir/community_test.cc.o.d"
  "community_test"
  "community_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
