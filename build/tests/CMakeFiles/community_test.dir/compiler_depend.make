# Empty compiler generated dependencies file for community_test.
# This may be replaced when dependencies are built.
