file(REMOVE_RECURSE
  "CMakeFiles/snapshot_test.dir/snapshot_test.cc.o"
  "CMakeFiles/snapshot_test.dir/snapshot_test.cc.o.d"
  "snapshot_test"
  "snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
