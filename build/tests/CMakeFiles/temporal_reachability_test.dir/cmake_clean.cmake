file(REMOVE_RECURSE
  "CMakeFiles/temporal_reachability_test.dir/temporal_reachability_test.cc.o"
  "CMakeFiles/temporal_reachability_test.dir/temporal_reachability_test.cc.o.d"
  "temporal_reachability_test"
  "temporal_reachability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_reachability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
