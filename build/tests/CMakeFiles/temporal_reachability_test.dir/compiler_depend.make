# Empty compiler generated dependencies file for temporal_reachability_test.
# This may be replaced when dependencies are built.
