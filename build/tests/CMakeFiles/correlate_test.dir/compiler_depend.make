# Empty compiler generated dependencies file for correlate_test.
# This may be replaced when dependencies are built.
