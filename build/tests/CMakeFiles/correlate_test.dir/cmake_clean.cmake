file(REMOVE_RECURSE
  "CMakeFiles/correlate_test.dir/correlate_test.cc.o"
  "CMakeFiles/correlate_test.dir/correlate_test.cc.o.d"
  "correlate_test"
  "correlate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
