file(REMOVE_RECURSE
  "CMakeFiles/metric_evolution_test.dir/metric_evolution_test.cc.o"
  "CMakeFiles/metric_evolution_test.dir/metric_evolution_test.cc.o.d"
  "metric_evolution_test"
  "metric_evolution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
