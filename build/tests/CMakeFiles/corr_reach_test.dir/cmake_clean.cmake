file(REMOVE_RECURSE
  "CMakeFiles/corr_reach_test.dir/corr_reach_test.cc.o"
  "CMakeFiles/corr_reach_test.dir/corr_reach_test.cc.o.d"
  "corr_reach_test"
  "corr_reach_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corr_reach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
