# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for corr_reach_test.
