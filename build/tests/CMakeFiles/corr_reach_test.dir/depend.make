# Empty dependencies file for corr_reach_test.
# This may be replaced when dependencies are built.
