file(REMOVE_RECURSE
  "CMakeFiles/classify_test.dir/classify_test.cc.o"
  "CMakeFiles/classify_test.dir/classify_test.cc.o.d"
  "classify_test"
  "classify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
