# Empty dependencies file for classify_test.
# This may be replaced when dependencies are built.
