file(REMOVE_RECURSE
  "CMakeFiles/builder_test.dir/builder_test.cc.o"
  "CMakeFiles/builder_test.dir/builder_test.cc.o.d"
  "builder_test"
  "builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
