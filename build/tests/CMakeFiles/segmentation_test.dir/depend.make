# Empty dependencies file for segmentation_test.
# This may be replaced when dependencies are built.
