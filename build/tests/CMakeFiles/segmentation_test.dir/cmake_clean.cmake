file(REMOVE_RECURSE
  "CMakeFiles/segmentation_test.dir/segmentation_test.cc.o"
  "CMakeFiles/segmentation_test.dir/segmentation_test.cc.o.d"
  "segmentation_test"
  "segmentation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
