# Empty dependencies file for hybrid_aggregate_test.
# This may be replaced when dependencies are built.
