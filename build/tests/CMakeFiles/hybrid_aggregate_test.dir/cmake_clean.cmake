file(REMOVE_RECURSE
  "CMakeFiles/hybrid_aggregate_test.dir/hybrid_aggregate_test.cc.o"
  "CMakeFiles/hybrid_aggregate_test.dir/hybrid_aggregate_test.cc.o.d"
  "hybrid_aggregate_test"
  "hybrid_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
