file(REMOVE_RECURSE
  "CMakeFiles/seg_snapshot_test.dir/seg_snapshot_test.cc.o"
  "CMakeFiles/seg_snapshot_test.dir/seg_snapshot_test.cc.o.d"
  "seg_snapshot_test"
  "seg_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seg_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
