# Empty dependencies file for seg_snapshot_test.
# This may be replaced when dependencies are built.
