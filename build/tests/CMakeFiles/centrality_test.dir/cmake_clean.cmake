file(REMOVE_RECURSE
  "CMakeFiles/centrality_test.dir/centrality_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality_test.cc.o.d"
  "centrality_test"
  "centrality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
