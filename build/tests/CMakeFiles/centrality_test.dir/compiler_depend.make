# Empty compiler generated dependencies file for centrality_test.
# This may be replaced when dependencies are built.
