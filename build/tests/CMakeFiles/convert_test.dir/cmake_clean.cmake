file(REMOVE_RECURSE
  "CMakeFiles/convert_test.dir/convert_test.cc.o"
  "CMakeFiles/convert_test.dir/convert_test.cc.o.d"
  "convert_test"
  "convert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
