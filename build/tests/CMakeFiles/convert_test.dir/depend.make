# Empty dependencies file for convert_test.
# This may be replaced when dependencies are built.
