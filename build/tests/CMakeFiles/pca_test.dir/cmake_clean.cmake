file(REMOVE_RECURSE
  "CMakeFiles/pca_test.dir/pca_test.cc.o"
  "CMakeFiles/pca_test.dir/pca_test.cc.o.d"
  "pca_test"
  "pca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
