# Empty compiler generated dependencies file for pca_test.
# This may be replaced when dependencies are built.
