file(REMOVE_RECURSE
  "CMakeFiles/time_test.dir/time_test.cc.o"
  "CMakeFiles/time_test.dir/time_test.cc.o.d"
  "time_test"
  "time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
