# Empty compiler generated dependencies file for time_test.
# This may be replaced when dependencies are built.
