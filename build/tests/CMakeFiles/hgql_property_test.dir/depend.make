# Empty dependencies file for hgql_property_test.
# This may be replaced when dependencies are built.
