file(REMOVE_RECURSE
  "CMakeFiles/hgql_property_test.dir/hgql_property_test.cc.o"
  "CMakeFiles/hgql_property_test.dir/hgql_property_test.cc.o.d"
  "hgql_property_test"
  "hgql_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgql_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
