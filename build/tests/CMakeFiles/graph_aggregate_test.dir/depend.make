# Empty dependencies file for graph_aggregate_test.
# This may be replaced when dependencies are built.
