file(REMOVE_RECURSE
  "CMakeFiles/graph_aggregate_test.dir/graph_aggregate_test.cc.o"
  "CMakeFiles/graph_aggregate_test.dir/graph_aggregate_test.cc.o.d"
  "graph_aggregate_test"
  "graph_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
