file(REMOVE_RECURSE
  "CMakeFiles/motif_test.dir/motif_test.cc.o"
  "CMakeFiles/motif_test.dir/motif_test.cc.o.d"
  "motif_test"
  "motif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
