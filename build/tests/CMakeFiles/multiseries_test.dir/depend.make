# Empty dependencies file for multiseries_test.
# This may be replaced when dependencies are built.
