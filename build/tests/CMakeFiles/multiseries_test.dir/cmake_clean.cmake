file(REMOVE_RECURSE
  "CMakeFiles/multiseries_test.dir/multiseries_test.cc.o"
  "CMakeFiles/multiseries_test.dir/multiseries_test.cc.o.d"
  "multiseries_test"
  "multiseries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiseries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
