file(REMOVE_RECURSE
  "CMakeFiles/temporal_graph_test.dir/temporal_graph_test.cc.o"
  "CMakeFiles/temporal_graph_test.dir/temporal_graph_test.cc.o.d"
  "temporal_graph_test"
  "temporal_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
