# Empty compiler generated dependencies file for rag_test.
# This may be replaced when dependencies are built.
