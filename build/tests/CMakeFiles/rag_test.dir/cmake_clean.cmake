file(REMOVE_RECURSE
  "CMakeFiles/rag_test.dir/rag_test.cc.o"
  "CMakeFiles/rag_test.dir/rag_test.cc.o.d"
  "rag_test"
  "rag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
