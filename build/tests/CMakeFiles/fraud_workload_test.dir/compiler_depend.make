# Empty compiler generated dependencies file for fraud_workload_test.
# This may be replaced when dependencies are built.
