file(REMOVE_RECURSE
  "CMakeFiles/fraud_workload_test.dir/fraud_workload_test.cc.o"
  "CMakeFiles/fraud_workload_test.dir/fraud_workload_test.cc.o.d"
  "fraud_workload_test"
  "fraud_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
