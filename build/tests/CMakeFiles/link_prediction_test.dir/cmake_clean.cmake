file(REMOVE_RECURSE
  "CMakeFiles/link_prediction_test.dir/link_prediction_test.cc.o"
  "CMakeFiles/link_prediction_test.dir/link_prediction_test.cc.o.d"
  "link_prediction_test"
  "link_prediction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
