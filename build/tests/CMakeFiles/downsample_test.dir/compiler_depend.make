# Empty compiler generated dependencies file for downsample_test.
# This may be replaced when dependencies are built.
