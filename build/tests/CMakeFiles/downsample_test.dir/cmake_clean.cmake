file(REMOVE_RECURSE
  "CMakeFiles/downsample_test.dir/downsample_test.cc.o"
  "CMakeFiles/downsample_test.dir/downsample_test.cc.o.d"
  "downsample_test"
  "downsample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downsample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
