file(REMOVE_RECURSE
  "CMakeFiles/property_graph_test.dir/property_graph_test.cc.o"
  "CMakeFiles/property_graph_test.dir/property_graph_test.cc.o.d"
  "property_graph_test"
  "property_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
