file(REMOVE_RECURSE
  "CMakeFiles/sax_test.dir/sax_test.cc.o"
  "CMakeFiles/sax_test.dir/sax_test.cc.o.d"
  "sax_test"
  "sax_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
