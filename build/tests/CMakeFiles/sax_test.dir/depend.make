# Empty dependencies file for sax_test.
# This may be replaced when dependencies are built.
