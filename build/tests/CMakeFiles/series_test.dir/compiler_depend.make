# Empty compiler generated dependencies file for series_test.
# This may be replaced when dependencies are built.
