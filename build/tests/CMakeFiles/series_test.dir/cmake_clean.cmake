file(REMOVE_RECURSE
  "CMakeFiles/series_test.dir/series_test.cc.o"
  "CMakeFiles/series_test.dir/series_test.cc.o.d"
  "series_test"
  "series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
