#include "core/builder.h"

namespace hygraph::core {

void HyGraphBuilder::Fail(const Status& status) {
  if (first_error_.ok()) first_error_ = status;
}

HyGraphBuilder& HyGraphBuilder::PgVertex(const std::string& name,
                                         std::vector<std::string> labels,
                                         PropertyMap properties,
                                         Interval validity) {
  if (!first_error_.ok()) return *this;
  if (names_.count(name)) {
    Fail(Status::AlreadyExists("duplicate vertex name '" + name + "'"));
    return *this;
  }
  auto v = hg_.AddPgVertex(std::move(labels), std::move(properties), validity);
  if (!v.ok()) {
    Fail(v.status());
    return *this;
  }
  names_[name] = *v;
  return *this;
}

HyGraphBuilder& HyGraphBuilder::TsVertex(const std::string& name,
                                         std::vector<std::string> labels,
                                         ts::MultiSeries series) {
  if (!first_error_.ok()) return *this;
  if (names_.count(name)) {
    Fail(Status::AlreadyExists("duplicate vertex name '" + name + "'"));
    return *this;
  }
  auto v = hg_.AddTsVertex(std::move(labels), std::move(series));
  if (!v.ok()) {
    Fail(v.status());
    return *this;
  }
  names_[name] = *v;
  return *this;
}

HyGraphBuilder& HyGraphBuilder::PgEdge(const std::string& src,
                                       const std::string& dst,
                                       std::string label,
                                       PropertyMap properties,
                                       Interval validity) {
  if (!first_error_.ok()) return *this;
  auto s = IdOf(src);
  auto d = IdOf(dst);
  if (!s.ok()) {
    Fail(s.status());
    return *this;
  }
  if (!d.ok()) {
    Fail(d.status());
    return *this;
  }
  auto e = hg_.AddPgEdge(*s, *d, std::move(label), std::move(properties),
                         validity);
  if (!e.ok()) Fail(e.status());
  return *this;
}

HyGraphBuilder& HyGraphBuilder::TsEdge(const std::string& src,
                                       const std::string& dst,
                                       std::string label,
                                       ts::MultiSeries series) {
  if (!first_error_.ok()) return *this;
  auto s = IdOf(src);
  auto d = IdOf(dst);
  if (!s.ok()) {
    Fail(s.status());
    return *this;
  }
  if (!d.ok()) {
    Fail(d.status());
    return *this;
  }
  auto e = hg_.AddTsEdge(*s, *d, std::move(label), std::move(series));
  if (!e.ok()) Fail(e.status());
  return *this;
}

HyGraphBuilder& HyGraphBuilder::VertexSeriesProperty(const std::string& name,
                                                     const std::string& key,
                                                     ts::MultiSeries series) {
  if (!first_error_.ok()) return *this;
  auto v = IdOf(name);
  if (!v.ok()) {
    Fail(v.status());
    return *this;
  }
  auto id = hg_.SetVertexSeriesProperty(*v, key, std::move(series));
  if (!id.ok()) Fail(id.status());
  return *this;
}

Result<VertexId> HyGraphBuilder::IdOf(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound("no vertex named '" + name + "'");
  }
  return it->second;
}

Result<HyGraph> HyGraphBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  return std::move(hg_);
}

}  // namespace hygraph::core
