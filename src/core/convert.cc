#include "core/convert.h"

#include <algorithm>

#include "ts/correlate.h"

namespace hygraph::core {

namespace {

// Extraction to plain graph models drops series-valued properties: the
// target model has nowhere to put them, and a raw SeriesRef would dangle.
graph::PropertyMap StripSeriesRefs(const graph::PropertyMap& props) {
  graph::PropertyMap out;
  for (const auto& [key, value] : props) {
    if (!value.is_series_ref()) out.emplace(key, value);
  }
  return out;
}

}  // namespace

Result<HyGraph> FromPropertyGraph(const graph::PropertyGraph& lpg) {
  HyGraph hg;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId v : lpg.VertexIds()) {
    const graph::Vertex& vertex = **lpg.GetVertex(v);
    auto added = hg.AddPgVertex(vertex.labels, vertex.properties);
    if (!added.ok()) return added.status();
    remap[v] = *added;
  }
  for (EdgeId e : lpg.EdgeIds()) {
    const graph::Edge& edge = **lpg.GetEdge(e);
    auto added = hg.AddPgEdge(remap.at(edge.src), remap.at(edge.dst),
                              edge.label, edge.properties);
    if (!added.ok()) return added.status();
  }
  return hg;
}

Result<HyGraph> FromTemporalGraph(
    const temporal::TemporalPropertyGraph& tpg) {
  HyGraph hg;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId v : tpg.graph().VertexIds()) {
    const graph::Vertex& vertex = **tpg.graph().GetVertex(v);
    auto validity = tpg.VertexValidity(v);
    if (!validity.ok()) return validity.status();
    auto added = hg.AddPgVertex(vertex.labels, vertex.properties, *validity);
    if (!added.ok()) return added.status();
    remap[v] = *added;
  }
  for (EdgeId e : tpg.graph().EdgeIds()) {
    const graph::Edge& edge = **tpg.graph().GetEdge(e);
    auto validity = tpg.EdgeValidity(e);
    if (!validity.ok()) return validity.status();
    auto added = hg.AddPgEdge(remap.at(edge.src), remap.at(edge.dst),
                              edge.label, edge.properties, *validity);
    if (!added.ok()) return added.status();
  }
  return hg;
}

Result<HyGraph> FromSeriesCollection(std::vector<ts::MultiSeries> collection,
                                     const std::string& label) {
  HyGraph hg;
  for (ts::MultiSeries& ms : collection) {
    auto added = hg.AddTsVertex({label}, std::move(ms));
    if (!added.ok()) return added.status();
  }
  return hg;
}

Result<graph::PropertyGraph> ToPropertyGraph(
    const HyGraph& hg, Timestamp t,
    std::unordered_map<VertexId, VertexId>* id_map) {
  graph::PropertyGraph out;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId v : hg.structure().VertexIds()) {
    if (!hg.tpg().VertexValidAt(v, t)) continue;
    const graph::Vertex& vertex = **hg.structure().GetVertex(v);
    remap[v] = out.AddVertex(vertex.labels,
                             StripSeriesRefs(vertex.properties));
  }
  for (EdgeId e : hg.structure().EdgeIds()) {
    if (!hg.tpg().EdgeValidAt(e, t)) continue;
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    auto src = remap.find(edge.src);
    auto dst = remap.find(edge.dst);
    if (src == remap.end() || dst == remap.end()) continue;
    auto added = out.AddEdge(src->second, dst->second, edge.label,
                             StripSeriesRefs(edge.properties));
    if (!added.ok()) return added.status();
  }
  if (id_map != nullptr) *id_map = std::move(remap);
  return out;
}

Result<temporal::TemporalPropertyGraph> ToTemporalGraph(const HyGraph& hg) {
  temporal::TemporalPropertyGraph out;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId v : hg.structure().VertexIds()) {
    const graph::Vertex& vertex = **hg.structure().GetVertex(v);
    auto validity = hg.VertexValidity(v);
    if (!validity.ok()) return validity.status();
    auto added = out.AddVertex(vertex.labels,
                               StripSeriesRefs(vertex.properties), *validity);
    if (!added.ok()) return added.status();
    remap[v] = *added;
  }
  for (EdgeId e : hg.structure().EdgeIds()) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    auto validity = hg.EdgeValidity(e);
    if (!validity.ok()) return validity.status();
    auto added = out.AddEdge(remap.at(edge.src), remap.at(edge.dst),
                             edge.label, StripSeriesRefs(edge.properties),
                             *validity);
    if (!added.ok()) return added.status();
  }
  return out;
}

std::vector<ts::MultiSeries> ToSeriesCollection(const HyGraph& hg) {
  std::vector<ts::MultiSeries> out;
  for (VertexId v : hg.TsVertices()) {
    out.push_back(**hg.VertexSeries(v));
  }
  for (EdgeId e : hg.TsEdges()) {
    out.push_back(**hg.EdgeSeries(e));
  }
  // Pooled series properties, in id order.
  for (SeriesId id = 0;; ++id) {
    auto series = hg.LookupSeries(id);
    if (!series.ok()) break;  // ids are dense from 0
    out.push_back(**series);
  }
  return out;
}

Result<HyGraph> SeriesSimilarityGraph(const std::vector<ts::Series>& series,
                                      const SimilarityGraphOptions& options) {
  if (options.threshold < 0.0 || options.threshold > 1.0) {
    return Status::InvalidArgument("threshold must be in [0, 1]");
  }
  HyGraph hg;
  std::vector<VertexId> vertex_of;
  vertex_of.reserve(series.size());
  for (const ts::Series& s : series) {
    // Wrap the univariate series as a single-variable MultiSeries.
    ts::MultiSeries ms(s.name(), {"value"});
    for (const ts::Sample& sample : s.samples()) {
      HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(sample.t, {sample.value}));
    }
    auto v = hg.AddTsVertex({options.vertex_label}, std::move(ms));
    if (!v.ok()) return v.status();
    HYGRAPH_RETURN_IF_ERROR(hg.SetVertexProperty(*v, "name", s.name()));
    vertex_of.push_back(*v);
  }
  for (size_t i = 0; i < series.size(); ++i) {
    for (size_t j = i + 1; j < series.size(); ++j) {
      auto corr =
          ts::Correlation(series[i], series[j], options.min_overlap);
      if (!corr.ok()) continue;
      if (std::abs(*corr) < options.threshold) continue;
      if (options.sliding_window > 0) {
        auto sliding = ts::SlidingCorrelation(
            series[i], series[j], options.sliding_window,
            options.sliding_window, options.min_overlap);
        if (!sliding.ok()) return sliding.status();
        ts::MultiSeries ms(series[i].name() + "~" + series[j].name(),
                           {"correlation"});
        for (const ts::Sample& sample : sliding->samples()) {
          HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(sample.t, {sample.value}));
        }
        auto e = hg.AddTsEdge(vertex_of[i], vertex_of[j], options.edge_label,
                              std::move(ms));
        if (!e.ok()) return e.status();
        HYGRAPH_RETURN_IF_ERROR(hg.SetEdgeProperty(*e, "correlation", *corr));
      } else {
        auto e = hg.AddPgEdge(vertex_of[i], vertex_of[j], options.edge_label,
                              {{"correlation", Value(*corr)}});
        if (!e.ok()) return e.status();
      }
    }
  }
  return hg;
}

}  // namespace hygraph::core
