#include "core/hygraph.h"

namespace hygraph::core {

// Re-checks every R2 consistency invariant from scratch. The mutators keep
// these invariants incrementally; this full pass exists for tests,
// failure-injection coverage, and as a guard after bulk imports that used
// mutable_graph() directly.
Status HyGraph::Validate() const {
  // 1. Temporal integrity of the structural layer: edge validity contained
  //    in endpoint validity, every element has a validity interval.
  HYGRAPH_RETURN_IF_ERROR(tpg_.ValidateIntegrity());

  // 2. Kind bookkeeping: every live vertex/edge has a kind; every TS
  //    element has a series (δ is total on V_ts ∪ E_ts) and every series
  //    entry belongs to a TS element.
  for (VertexId v : structure().VertexIds()) {
    auto it = vertex_kind_.find(v);
    if (it == vertex_kind_.end()) {
      return Status::Corruption("vertex " + std::to_string(v) +
                                " has no element kind");
    }
    const bool has_series = vertex_series_.count(v) > 0;
    if ((it->second == ElementKind::kTs) != has_series) {
      return Status::Corruption("vertex " + std::to_string(v) +
                                ": kind and series presence disagree");
    }
  }
  for (EdgeId e : structure().EdgeIds()) {
    auto it = edge_kind_.find(e);
    if (it == edge_kind_.end()) {
      return Status::Corruption("edge " + std::to_string(e) +
                                " has no element kind");
    }
    const bool has_series = edge_series_.count(e) > 0;
    if ((it->second == ElementKind::kTs) != has_series) {
      return Status::Corruption("edge " + std::to_string(e) +
                                ": kind and series presence disagree");
    }
  }

  // 3. Chronological integrity of every series (R2): strictly increasing
  //    time axes. MultiSeries enforces this on mutation; re-verify in case
  //    of direct manipulation.
  auto check_series = [](const ts::MultiSeries& ms,
                         const std::string& where) -> Status {
    const auto& times = ms.times();
    for (size_t i = 1; i < times.size(); ++i) {
      if (times[i] <= times[i - 1]) {
        return Status::Corruption("series of " + where +
                                  " violates chronological order");
      }
    }
    return Status::OK();
  };
  for (const auto& [v, ms] : vertex_series_) {
    HYGRAPH_RETURN_IF_ERROR(check_series(ms, "vertex " + std::to_string(v)));
  }
  for (const auto& [e, ms] : edge_series_) {
    HYGRAPH_RETURN_IF_ERROR(check_series(ms, "edge " + std::to_string(e)));
  }
  for (const auto& [id, ms] : series_pool_) {
    HYGRAPH_RETURN_IF_ERROR(
        check_series(ms, "pooled series " + std::to_string(id)));
  }

  // 4. Every SeriesRef property resolves into the pool.
  auto check_props = [this](const PropertyMap& props,
                            const std::string& where) -> Status {
    for (const auto& [key, value] : props) {
      if (value.is_series_ref() && !series_pool_.count(value.AsSeriesId())) {
        return Status::Corruption(where + " property '" + key +
                                  "' references a missing series");
      }
    }
    return Status::OK();
  };
  for (VertexId v : structure().VertexIds()) {
    HYGRAPH_RETURN_IF_ERROR(check_props((*structure().GetVertex(v))->properties,
                                        "vertex " + std::to_string(v)));
  }
  for (EdgeId e : structure().EdgeIds()) {
    HYGRAPH_RETURN_IF_ERROR(check_props((*structure().GetEdge(e))->properties,
                                        "edge " + std::to_string(e)));
  }

  // 5. Subgraphs: membership intervals contained in both the subgraph's
  //    validity and the member element's validity; members must exist.
  for (const auto& [id, sg] : subgraphs_) {
    HYGRAPH_RETURN_IF_ERROR(
        check_props(sg.properties, "subgraph " + std::to_string(id)));
    for (const Subgraph::Member& m : sg.members) {
      if (!sg.validity.ContainsInterval(m.membership)) {
        return Status::Corruption("subgraph " + std::to_string(id) +
                                  " membership exceeds subgraph validity");
      }
      auto element_validity = ElementValidity(m.element);
      if (!element_validity.ok()) {
        return Status::Corruption("subgraph " + std::to_string(id) +
                                  " references a missing element");
      }
      if (!element_validity->ContainsInterval(m.membership)) {
        return Status::Corruption("subgraph " + std::to_string(id) +
                                  " membership exceeds element validity");
      }
    }
  }
  return Status::OK();
}

}  // namespace hygraph::core
