#ifndef HYGRAPH_CORE_SERIALIZE_H_
#define HYGRAPH_CORE_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::core {

/// Text serialization of a HyGraph instance — a line-oriented format so
/// instances survive process restarts, can be shipped between tools, and
/// diff cleanly in version control. One record per line:
///
///   HYGRAPH 1                      header + format version
///   V <id> PG <validity> <labels> <properties>
///   V <id> TS <labels> <properties> SERIES <multiseries>
///   E <id> PG <src> <dst> <label> <validity> <properties>
///   E <id> TS <src> <dst> <label> <properties> SERIES <multiseries>
///   P <series-id> <multiseries>    pooled series (series properties)
///   S <id> <validity> <labels> <properties>
///   M <subgraph-id> V|E <element-id> <interval>
///   CHECKSUM <crc32-hex>           trailer over every preceding byte
///
/// Serialize always ends the document with the CHECKSUM record (CRC-32 of
/// all preceding lines, each terminated by '\n'). Deserialize verifies it
/// when present — a mismatch, or any record after it, is kCorruption — so
/// truncation and single-bit rot are detected instead of silently parsed.
/// Checksum-less input (hand-written fixtures, pre-trailer files) still
/// loads.
///
/// Fields are space-separated; strings are percent-encoded so values may
/// contain spaces or newlines. Ids are preserved exactly, so references
/// (SeriesRef properties, subgraph members) remain valid after a round
/// trip and Serialize(Deserialize(x)) == x.
///
/// Not a paper artifact per se, but required for a usable system: the
/// paper's architecture assumes instances can be persisted and exchanged
/// between the storage layer and analysis tools.

/// Renders the instance to the textual format.
Result<std::string> Serialize(const HyGraph& hg);

/// Parses an instance from the textual format. Fails with a line-numbered
/// error on malformed input; validates the result before returning.
Result<HyGraph> Deserialize(const std::string& text);

/// File convenience wrappers. SaveToFile is atomic and durable: it writes
/// `path + ".tmp"`, fsyncs, then renames over `path`, reporting any write,
/// sync, close, or rename failure as kIOError (a crashed or full disk never
/// leaves a half-written `path` behind). LoadFromFile verifies the
/// CHECKSUM trailer via Deserialize.
Status SaveToFile(const HyGraph& hg, const std::string& path);
Result<HyGraph> LoadFromFile(const std::string& path);

/// Percent-encoding helpers (exposed for tests).
std::string EncodeField(const std::string& raw);
Result<std::string> DecodeField(const std::string& encoded);

}  // namespace hygraph::core

#endif  // HYGRAPH_CORE_SERIALIZE_H_
