#include "core/stream.h"

namespace hygraph::core {

UpdateEvent UpdateEvent::AddPgVertex(Timestamp at, std::string id,
                                     std::vector<std::string> labels,
                                     graph::PropertyMap properties) {
  UpdateEvent e;
  e.kind = Kind::kAddPgVertex;
  e.at = at;
  e.id = std::move(id);
  e.labels = std::move(labels);
  e.properties = std::move(properties);
  return e;
}

UpdateEvent UpdateEvent::AddTsVertex(Timestamp at, std::string id,
                                     std::vector<std::string> labels,
                                     std::vector<std::string> variables) {
  UpdateEvent e;
  e.kind = Kind::kAddTsVertex;
  e.at = at;
  e.id = std::move(id);
  e.labels = std::move(labels);
  e.variables = std::move(variables);
  return e;
}

UpdateEvent UpdateEvent::AddPgEdge(Timestamp at, std::string id,
                                   std::string src, std::string dst,
                                   std::string label,
                                   graph::PropertyMap properties) {
  UpdateEvent e;
  e.kind = Kind::kAddPgEdge;
  e.at = at;
  e.id = std::move(id);
  e.src = std::move(src);
  e.dst = std::move(dst);
  e.label = std::move(label);
  e.properties = std::move(properties);
  return e;
}

UpdateEvent UpdateEvent::AddTsEdge(Timestamp at, std::string id,
                                   std::string src, std::string dst,
                                   std::string label,
                                   std::vector<std::string> variables) {
  UpdateEvent e;
  e.kind = Kind::kAddTsEdge;
  e.at = at;
  e.id = std::move(id);
  e.src = std::move(src);
  e.dst = std::move(dst);
  e.label = std::move(label);
  e.variables = std::move(variables);
  return e;
}

UpdateEvent UpdateEvent::Sample(Timestamp at, std::string vertex_id,
                                std::vector<double> row) {
  UpdateEvent e;
  e.kind = Kind::kAppendVertexSample;
  e.at = at;
  e.id = std::move(vertex_id);
  e.row = std::move(row);
  return e;
}

UpdateEvent UpdateEvent::EdgeSample(Timestamp at, std::string edge_id,
                                    std::vector<double> row) {
  UpdateEvent e;
  e.kind = Kind::kAppendEdgeSample;
  e.at = at;
  e.id = std::move(edge_id);
  e.row = std::move(row);
  return e;
}

UpdateEvent UpdateEvent::ExpireVertex(Timestamp at, std::string id) {
  UpdateEvent e;
  e.kind = Kind::kExpireVertex;
  e.at = at;
  e.id = std::move(id);
  return e;
}

StreamProcessor::StreamProcessor(HyGraph* hg, StreamOptions options)
    : hg_(hg), options_(options) {}

Result<graph::VertexId> StreamProcessor::ResolveVertex(
    const std::string& id) const {
  auto it = vertices_.find(id);
  if (it == vertices_.end()) {
    return Status::NotFound("no vertex with external id '" + id + "'");
  }
  return it->second;
}

Result<graph::EdgeId> StreamProcessor::ResolveEdge(
    const std::string& id) const {
  auto it = edges_.find(id);
  if (it == edges_.end()) {
    return Status::NotFound("no edge with external id '" + id + "'");
  }
  return it->second;
}

Status StreamProcessor::Apply(const UpdateEvent& event) {
  if (event.at < stats_.watermark) {
    return Status::FailedPrecondition(
        "event at " + FormatTimestamp(event.at) +
        " is behind the stream watermark " +
        FormatTimestamp(stats_.watermark));
  }
  HYGRAPH_RETURN_IF_ERROR(ApplyImpl(event));
  stats_.watermark = event.at;
  ++stats_.events_applied;
  MaybeEvict();
  return Status::OK();
}

Status StreamProcessor::ApplyAll(const std::vector<UpdateEvent>& events) {
  for (const UpdateEvent& event : events) {
    HYGRAPH_RETURN_IF_ERROR(Apply(event));
  }
  return Status::OK();
}

Status StreamProcessor::ApplyImpl(const UpdateEvent& event) {
  switch (event.kind) {
    case UpdateEvent::Kind::kAddPgVertex: {
      if (vertices_.count(event.id)) {
        return Status::AlreadyExists("vertex '" + event.id + "' exists");
      }
      auto v = hg_->AddPgVertex(event.labels, event.properties,
                                Interval{event.at, kMaxTimestamp});
      if (!v.ok()) return v.status();
      vertices_[event.id] = *v;
      return Status::OK();
    }
    case UpdateEvent::Kind::kAddTsVertex: {
      if (vertices_.count(event.id)) {
        return Status::AlreadyExists("vertex '" + event.id + "' exists");
      }
      if (event.variables.empty()) {
        return Status::InvalidArgument("TS vertex needs variables");
      }
      auto v = hg_->AddTsVertex(event.labels,
                                ts::MultiSeries(event.id, event.variables));
      if (!v.ok()) return v.status();
      vertices_[event.id] = *v;
      return Status::OK();
    }
    case UpdateEvent::Kind::kAddPgEdge:
    case UpdateEvent::Kind::kAddTsEdge: {
      if (edges_.count(event.id)) {
        return Status::AlreadyExists("edge '" + event.id + "' exists");
      }
      auto src = ResolveVertex(event.src);
      if (!src.ok()) return src.status();
      auto dst = ResolveVertex(event.dst);
      if (!dst.ok()) return dst.status();
      if (event.kind == UpdateEvent::Kind::kAddPgEdge) {
        auto e = hg_->AddPgEdge(*src, *dst, event.label, event.properties,
                                Interval{event.at, kMaxTimestamp});
        if (!e.ok()) return e.status();
        edges_[event.id] = *e;
      } else {
        if (event.variables.empty()) {
          return Status::InvalidArgument("TS edge needs variables");
        }
        auto e = hg_->AddTsEdge(*src, *dst, event.label,
                                ts::MultiSeries(event.id, event.variables));
        if (!e.ok()) return e.status();
        edges_[event.id] = *e;
      }
      return Status::OK();
    }
    case UpdateEvent::Kind::kAppendVertexSample: {
      auto v = ResolveVertex(event.id);
      if (!v.ok()) return v.status();
      HYGRAPH_RETURN_IF_ERROR(
          hg_->AppendToVertexSeries(*v, event.at, event.row));
      ++stats_.samples_appended;
      return Status::OK();
    }
    case UpdateEvent::Kind::kAppendEdgeSample: {
      auto e = ResolveEdge(event.id);
      if (!e.ok()) return e.status();
      HYGRAPH_RETURN_IF_ERROR(
          hg_->AppendToEdgeSeries(*e, event.at, event.row));
      ++stats_.samples_appended;
      return Status::OK();
    }
    case UpdateEvent::Kind::kSetVertexProperty: {
      auto v = ResolveVertex(event.id);
      if (!v.ok()) return v.status();
      return hg_->SetVertexProperty(*v, event.key, event.value);
    }
    case UpdateEvent::Kind::kExpireVertex: {
      auto v = ResolveVertex(event.id);
      if (!v.ok()) return v.status();
      HYGRAPH_RETURN_IF_ERROR(hg_->mutable_tpg()->ExpireVertex(*v, event.at));
      ++stats_.elements_expired;
      return Status::OK();
    }
    case UpdateEvent::Kind::kExpireEdge: {
      auto e = ResolveEdge(event.id);
      if (!e.ok()) return e.status();
      HYGRAPH_RETURN_IF_ERROR(hg_->mutable_tpg()->ExpireEdge(*e, event.at));
      ++stats_.elements_expired;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled event kind");
}

void StreamProcessor::MaybeEvict() {
  if (options_.retention <= 0) return;
  if (stats_.watermark - last_eviction_ < options_.eviction_period &&
      last_eviction_ != kMinTimestamp) {
    return;
  }
  last_eviction_ = stats_.watermark;
  const Interval keep{stats_.watermark - options_.retention, kMaxTimestamp};
  for (graph::VertexId v : hg_->TsVertices()) {
    auto removed = hg_->RetainVertexSeries(v, keep);
    if (removed.ok()) stats_.samples_evicted += *removed;
  }
  for (graph::EdgeId e : hg_->TsEdges()) {
    auto removed = hg_->RetainEdgeSeries(e, keep);
    if (removed.ok()) stats_.samples_evicted += *removed;
  }
}

}  // namespace hygraph::core
