#ifndef HYGRAPH_CORE_STREAM_H_
#define HYGRAPH_CORE_STREAM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::core {

/// Streaming ingestion for requirement R3 (timeliness): "the HyGRAPH model
/// must be designed for replacing stale data without compromising the
/// structure's integrity, even for high ingestion. Moreover, structural
/// updates must satisfy the velocity requirements of time-sensitive
/// scenarios."
///
/// A StreamProcessor applies a totally-ordered stream of UpdateEvents to a
/// live HyGraph instance. Producers address entities by *external string
/// ids* (device serials, account numbers); the processor owns the mapping
/// to internal ids. Event timestamps must be non-decreasing (the stream's
/// watermark); stale-data eviction runs on the watermark so old samples
/// age out without ever breaking chronological or temporal integrity.

/// One timestamped update.
struct UpdateEvent {
  enum class Kind : uint8_t {
    kAddPgVertex,        ///< id, labels, properties; valid from `at`
    kAddTsVertex,        ///< id, labels, variables
    kAddPgEdge,          ///< id, src, dst, label, properties; valid from `at`
    kAddTsEdge,          ///< id, src, dst, label, variables
    kAppendVertexSample, ///< id, row (arity = the TS vertex's variables)
    kAppendEdgeSample,   ///< id (edge id), row
    kSetVertexProperty,  ///< id, key, value
    kExpireVertex,       ///< id; validity ends at `at`
    kExpireEdge,         ///< id (edge id); validity ends at `at`
  };

  Kind kind = Kind::kAddPgVertex;
  Timestamp at = 0;
  std::string id;    ///< external id of the affected vertex or edge
  std::string src;   ///< external vertex id (edge creation)
  std::string dst;   ///< external vertex id (edge creation)
  std::string label;
  std::vector<std::string> labels;
  graph::PropertyMap properties;
  std::vector<std::string> variables;
  std::vector<double> row;
  std::string key;
  Value value;

  // Convenience constructors for the common events.
  static UpdateEvent AddPgVertex(Timestamp at, std::string id,
                                 std::vector<std::string> labels,
                                 graph::PropertyMap properties = {});
  static UpdateEvent AddTsVertex(Timestamp at, std::string id,
                                 std::vector<std::string> labels,
                                 std::vector<std::string> variables);
  static UpdateEvent AddPgEdge(Timestamp at, std::string id, std::string src,
                               std::string dst, std::string label,
                               graph::PropertyMap properties = {});
  static UpdateEvent AddTsEdge(Timestamp at, std::string id, std::string src,
                               std::string dst, std::string label,
                               std::vector<std::string> variables);
  static UpdateEvent Sample(Timestamp at, std::string vertex_id,
                            std::vector<double> row);
  static UpdateEvent EdgeSample(Timestamp at, std::string edge_id,
                                std::vector<double> row);
  static UpdateEvent ExpireVertex(Timestamp at, std::string id);
};

struct StreamOptions {
  /// Keep only samples newer than watermark - retention; 0 disables
  /// eviction.
  Duration retention = 0;
  /// Eviction sweeps run at most once per this period of stream time.
  Duration eviction_period = kHour;
};

struct StreamStats {
  size_t events_applied = 0;
  size_t samples_appended = 0;
  size_t samples_evicted = 0;
  size_t elements_expired = 0;
  Timestamp watermark = kMinTimestamp;
};

/// Applies events in order; rejects watermark regressions and malformed
/// events without mutating the instance.
class StreamProcessor {
 public:
  StreamProcessor(HyGraph* hg, StreamOptions options = {});

  StreamProcessor(const StreamProcessor&) = delete;
  StreamProcessor& operator=(const StreamProcessor&) = delete;

  /// Applies one event. The event's `at` must be >= the current watermark.
  Status Apply(const UpdateEvent& event);

  /// Applies a batch, stopping at the first error.
  Status ApplyAll(const std::vector<UpdateEvent>& events);

  const StreamStats& stats() const { return stats_; }

  /// Internal id of an externally-named vertex / edge.
  Result<graph::VertexId> ResolveVertex(const std::string& id) const;
  Result<graph::EdgeId> ResolveEdge(const std::string& id) const;

 private:
  Status ApplyImpl(const UpdateEvent& event);
  void MaybeEvict();

  HyGraph* hg_;
  StreamOptions options_;
  StreamStats stats_;
  std::unordered_map<std::string, graph::VertexId> vertices_;
  std::unordered_map<std::string, graph::EdgeId> edges_;
  Timestamp last_eviction_ = kMinTimestamp;
};

}  // namespace hygraph::core

#endif  // HYGRAPH_CORE_STREAM_H_
