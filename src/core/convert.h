#ifndef HYGRAPH_CORE_CONVERT_H_
#define HYGRAPH_CORE_CONVERT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "graph/property_graph.h"
#include "temporal/temporal_graph.h"
#include "ts/multiseries.h"
#include "ts/series.h"

namespace hygraph::core {

/// The <X>ToHyGraph and HyGraphTo<X> interfaces (Section 5 of the paper;
/// arrows (6)-(10) of Figure 3). Imports must be lossless (R1): converting
/// an LPG / TPG / series collection into a HyGraph and extracting it again
/// round-trips all structure, labels, properties and samples.

// ---- <X>ToHyGraph ----------------------------------------------------------

/// LPG → HyGraph: every vertex/edge becomes a PG element valid over All().
Result<HyGraph> FromPropertyGraph(const graph::PropertyGraph& lpg);

/// TPG → HyGraph: PG elements with their validity intervals preserved.
Result<HyGraph> FromTemporalGraph(const temporal::TemporalPropertyGraph& tpg);

/// Series collection → HyGraph: each series becomes a TS vertex labeled
/// `label` (arrow (6) without edges).
Result<HyGraph> FromSeriesCollection(std::vector<ts::MultiSeries> collection,
                                     const std::string& label = "TimeSeries");

// ---- HyGraphTo<X> ----------------------------------------------------------

/// HyGraph → LPG snapshot at instant `t`: PG elements valid at t keep their
/// labels and properties; TS elements (always valid) are included with
/// their labels. Series-valued properties (N_TS) are dropped — a plain LPG
/// cannot hold them; extraction to a narrower model is lossy exactly in
/// the dimension that model lacks. Vertex ids are remapped densely; the
/// mapping is returned through `id_map` when non-null.
Result<graph::PropertyGraph> ToPropertyGraph(
    const HyGraph& hg, Timestamp t,
    std::unordered_map<VertexId, VertexId>* id_map = nullptr);

/// HyGraph → TPG copy of the structural layer (validity preserved);
/// series-valued properties are dropped, as for ToPropertyGraph.
Result<temporal::TemporalPropertyGraph> ToTemporalGraph(const HyGraph& hg);

/// HyGraph → series collection: the series of every TS vertex/edge (δ)
/// followed by every pooled series property, in id order.
std::vector<ts::MultiSeries> ToSeriesCollection(const HyGraph& hg);

// ---- series → graph (arrow (6)) --------------------------------------------

/// Options for SeriesSimilarityGraph.
struct SimilarityGraphOptions {
  /// Absolute Pearson correlation at or above which two series get an edge.
  double threshold = 0.8;
  /// Label given to the created TS vertices.
  std::string vertex_label = "TimeSeries";
  /// Label given to similarity edges.
  std::string edge_label = "SIMILAR_TO";
  /// When > 0, similarity edges are TS edges carrying the sliding-window
  /// correlation series (window width in ms, stepped by the same width);
  /// when 0, edges are PG edges with a static "correlation" property.
  Duration sliding_window = 0;
  size_t min_overlap = 4;  ///< minimum aligned samples per correlation
};

/// Builds a HyGraph whose vertices are the given series and whose edges
/// connect series with |corr| >= threshold — the paper's "time series
/// connected by edges based on their similarity" [33], with the
/// time-varying similarity stored on TS edges as in the running example.
Result<HyGraph> SeriesSimilarityGraph(const std::vector<ts::Series>& series,
                                      const SimilarityGraphOptions& options = {});

}  // namespace hygraph::core

#endif  // HYGRAPH_CORE_CONVERT_H_
