#include "core/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace hygraph::core {

namespace {

// Round-trippable double formatting.
std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::string FormatInterval(const Interval& interval) {
  return std::to_string(interval.start) + " " + std::to_string(interval.end);
}

// Value <-> field. SeriesRef ids are remapped through `pool_remap` when
// serializing (canonical numbering) and taken literally when parsing.
std::string ValueToField(
    const Value& value,
    const std::map<SeriesId, SeriesId>* pool_remap) {
  switch (value.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kBool:
      return value.AsBool() ? "b:1" : "b:0";
    case ValueType::kInt:
      return "i:" + std::to_string(value.AsInt());
    case ValueType::kDouble:
      return "d:" + FormatDouble(value.AsDouble());
    case ValueType::kString:
      return "s:" + EncodeField(value.AsString());
    case ValueType::kSeriesRef: {
      SeriesId id = value.AsSeriesId();
      if (pool_remap != nullptr) id = pool_remap->at(id);
      return "ts:" + std::to_string(id);
    }
  }
  return "n";
}

Result<Value> ValueFromField(const std::string& field) {
  if (field == "n") return Value();
  if (StartsWith(field, "ts:")) {
    return Value::SeriesRef(static_cast<SeriesId>(
        std::strtoull(field.c_str() + 3, nullptr, 10)));
  }
  if (field.size() < 2 || field[1] != ':') {
    return Status::Corruption("malformed value field '" + field + "'");
  }
  const std::string payload = field.substr(2);
  switch (field[0]) {
    case 'b':
      return Value(payload == "1");
    case 'i':
      return Value(static_cast<int64_t>(std::strtoll(payload.c_str(),
                                                     nullptr, 10)));
    case 'd':
      return Value(std::strtod(payload.c_str(), nullptr));
    case 's': {
      auto decoded = DecodeField(payload);
      if (!decoded.ok()) return decoded.status();
      return Value(*decoded);
    }
    default:
      return Status::Corruption("unknown value tag in '" + field + "'");
  }
}

void AppendLabels(std::string* out, const std::vector<std::string>& labels) {
  *out += " L " + std::to_string(labels.size());
  for (const std::string& label : labels) {
    *out += " " + EncodeField(label);
  }
}

void AppendProperties(std::string* out, const graph::PropertyMap& props,
                      const std::map<SeriesId, SeriesId>* pool_remap) {
  *out += " P " + std::to_string(props.size());
  for (const auto& [key, value] : props) {
    *out += " " + EncodeField(key) + " " + ValueToField(value, pool_remap);
  }
}

void AppendMultiSeries(std::string* out, const ts::MultiSeries& ms) {
  *out += " MS " + EncodeField(ms.name()) + " " +
          std::to_string(ms.variable_count());
  for (const std::string& var : ms.variables()) {
    *out += " " + EncodeField(var);
  }
  *out += " " + std::to_string(ms.size());
  for (size_t r = 0; r < ms.size(); ++r) {
    *out += " " + std::to_string(ms.times()[r]);
    for (size_t c = 0; c < ms.variable_count(); ++c) {
      *out += " " + FormatDouble(ms.at(r, c));
    }
  }
}

// Token cursor over one line.
class Cursor {
 public:
  Cursor(std::vector<std::string> tokens, size_t line)
      : tokens_(std::move(tokens)), line_(line) {}

  bool done() const { return pos_ >= tokens_.size(); }

  Result<std::string> Next() {
    if (done()) return Fail("unexpected end of line");
    return tokens_[pos_++];
  }
  Result<int64_t> NextInt() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return static_cast<int64_t>(std::strtoll(tok->c_str(), nullptr, 10));
  }
  Result<uint64_t> NextUint() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return static_cast<uint64_t>(std::strtoull(tok->c_str(), nullptr, 10));
  }
  Result<double> NextDouble() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return std::strtod(tok->c_str(), nullptr);
  }
  Result<std::string> NextDecoded() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return DecodeField(*tok);
  }
  Status Expect(const std::string& literal) {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    if (*tok != literal) {
      return Fail("expected '" + literal + "', found '" + *tok + "'");
    }
    return Status::OK();
  }
  Status Fail(const std::string& msg) const {
    return Status::Corruption("line " + std::to_string(line_) + ": " + msg);
  }

  Result<Interval> NextInterval() {
    auto start = NextInt();
    if (!start.ok()) return start.status();
    auto end = NextInt();
    if (!end.ok()) return end.status();
    return Interval{*start, *end};
  }

  Result<std::vector<std::string>> NextLabels() {
    HYGRAPH_RETURN_IF_ERROR(Expect("L"));
    auto count = NextUint();
    if (!count.ok()) return count.status();
    std::vector<std::string> labels;
    for (uint64_t i = 0; i < *count; ++i) {
      auto label = NextDecoded();
      if (!label.ok()) return label.status();
      labels.push_back(std::move(*label));
    }
    return labels;
  }

  Result<graph::PropertyMap> NextProperties() {
    HYGRAPH_RETURN_IF_ERROR(Expect("P"));
    auto count = NextUint();
    if (!count.ok()) return count.status();
    graph::PropertyMap props;
    for (uint64_t i = 0; i < *count; ++i) {
      auto key = NextDecoded();
      if (!key.ok()) return key.status();
      auto field = Next();
      if (!field.ok()) return field.status();
      auto value = ValueFromField(*field);
      if (!value.ok()) return value.status();
      props[*key] = std::move(*value);
    }
    return props;
  }

  Result<ts::MultiSeries> NextMultiSeries() {
    HYGRAPH_RETURN_IF_ERROR(Expect("MS"));
    auto name = NextDecoded();
    if (!name.ok()) return name.status();
    auto var_count = NextUint();
    if (!var_count.ok()) return var_count.status();
    std::vector<std::string> variables;
    for (uint64_t i = 0; i < *var_count; ++i) {
      auto var = NextDecoded();
      if (!var.ok()) return var.status();
      variables.push_back(std::move(*var));
    }
    ts::MultiSeries ms(*name, std::move(variables));
    auto rows = NextUint();
    if (!rows.ok()) return rows.status();
    for (uint64_t r = 0; r < *rows; ++r) {
      auto t = NextInt();
      if (!t.ok()) return t.status();
      std::vector<double> row;
      for (uint64_t c = 0; c < *var_count; ++c) {
        auto v = NextDouble();
        if (!v.ok()) return v.status();
        row.push_back(*v);
      }
      HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(*t, row));
    }
    return ms;
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
  size_t line_;
};

// Canonical pool renumbering: pooled series ids in order of first
// reference, scanning vertices then edges then subgraphs by id, properties
// in key order.
Result<std::map<SeriesId, SeriesId>> CanonicalPoolOrder(const HyGraph& hg) {
  std::map<SeriesId, SeriesId> remap;
  auto visit = [&](const graph::PropertyMap& props) {
    for (const auto& [key, value] : props) {
      if (value.is_series_ref()) {
        remap.emplace(value.AsSeriesId(), remap.size());
      }
    }
  };
  for (graph::VertexId v : hg.structure().VertexIds()) {
    visit((*hg.structure().GetVertex(v))->properties);
  }
  for (graph::EdgeId e : hg.structure().EdgeIds()) {
    visit((*hg.structure().GetEdge(e))->properties);
  }
  // Re-number values (emplace above kept first-seen order keyed by old id;
  // rebuild with sequential targets in first-reference order).
  // emplace with remap.size() already assigns sequential ids in first-visit
  // order, so nothing more to do.
  return remap;
}

}  // namespace

std::string EncodeField(const std::string& raw) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    if (c <= ' ' || c == '%' || c == 0x7f) {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  if (out.empty()) out = "%00";  // empty fields stay visible
  return out;
}

Result<std::string> DecodeField(const std::string& encoded) {
  if (encoded == "%00") return std::string();
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out.push_back(encoded[i]);
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return Status::Corruption("truncated escape in '" + encoded + "'");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(encoded[i + 1]);
    const int lo = hex(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::Corruption("bad escape in '" + encoded + "'");
    }
    const int decoded = hi * 16 + lo;
    if (decoded == 0) {
      // %00 inside a non-empty field is not produced by EncodeField.
      return Status::Corruption("unexpected %00 inside field");
    }
    out.push_back(static_cast<char>(decoded));
    i += 2;
  }
  return out;
}

Result<std::string> Serialize(const HyGraph& hg) {
  // Dense-id requirement keeps the format free of id maps.
  const auto vertex_ids = hg.structure().VertexIds();
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    if (vertex_ids[i] != i) {
      return Status::FailedPrecondition(
          "serialization requires dense vertex ids (no removals)");
    }
  }
  const auto edge_ids = hg.structure().EdgeIds();
  for (size_t i = 0; i < edge_ids.size(); ++i) {
    if (edge_ids[i] != i) {
      return Status::FailedPrecondition(
          "serialization requires dense edge ids (no removals)");
    }
  }

  auto pool_remap = CanonicalPoolOrder(hg);
  if (!pool_remap.ok()) return pool_remap.status();

  std::string out = "HYGRAPH 1\n";
  for (graph::VertexId v : vertex_ids) {
    const graph::Vertex& vertex = **hg.structure().GetVertex(v);
    std::string line = "V " + std::to_string(v);
    if (hg.IsTsVertex(v)) {
      line += " TS";
      AppendLabels(&line, vertex.labels);
      AppendProperties(&line, vertex.properties, &*pool_remap);
      AppendMultiSeries(&line, **hg.VertexSeries(v));
    } else {
      line += " PG " + FormatInterval(*hg.VertexValidity(v));
      AppendLabels(&line, vertex.labels);
      AppendProperties(&line, vertex.properties, &*pool_remap);
    }
    out += line + "\n";
  }
  for (graph::EdgeId e : edge_ids) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    std::string line = "E " + std::to_string(e) + " ";
    if (hg.IsTsEdge(e)) {
      line += "TS " + std::to_string(edge.src) + " " +
              std::to_string(edge.dst) + " " + EncodeField(edge.label);
      AppendProperties(&line, edge.properties, &*pool_remap);
      AppendMultiSeries(&line, **hg.EdgeSeries(e));
    } else {
      line += "PG " + std::to_string(edge.src) + " " +
              std::to_string(edge.dst) + " " + EncodeField(edge.label) +
              " " + FormatInterval(*hg.EdgeValidity(e));
      AppendProperties(&line, edge.properties, &*pool_remap);
    }
    out += line + "\n";
  }
  // Pooled series in canonical order.
  std::vector<std::pair<SeriesId, SeriesId>> pool(pool_remap->begin(),
                                                  pool_remap->end());
  std::sort(pool.begin(), pool.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [old_id, new_id] : pool) {
    auto series = hg.LookupSeries(old_id);
    if (!series.ok()) return series.status();
    std::string line = "P " + std::to_string(new_id);
    AppendMultiSeries(&line, **series);
    out += line + "\n";
  }
  // Subgraphs and memberships.
  for (SubgraphId s : hg.SubgraphIds()) {
    std::string line = "S " + std::to_string(s) + " " +
                       FormatInterval(*hg.SubgraphValidity(s));
    AppendLabels(&line, **hg.SubgraphLabels(s));
    // Subgraph properties are not directly iterable; serialize the ones we
    // can reach is impossible without an accessor — expose via a stable
    // API: SubgraphAt carries no properties, so rely on GetSubgraphProperty
    // being keyed. We add a properties accessor below.
    AppendProperties(&line, hg.SubgraphProperties(s), &*pool_remap);
    out += line + "\n";
    // Memberships: γ is interval-based; enumerate raw member records.
    for (const auto& member : hg.SubgraphMemberRecords(s)) {
      out += "M " + std::to_string(s) + " " +
             (member.element.kind == ElementRef::Kind::kVertex ? "V" : "E") +
             " " + std::to_string(member.element.id) + " " +
             FormatInterval(member.membership) + "\n";
    }
  }
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(out));
  out += std::string("CHECKSUM ") + crc + "\n";
  // Serialization is rare and heavy; the process-global registry keeps its
  // tally without threading a registry through every call site.
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("serialize.saves")->Increment();
  registry.counter("serialize.bytes_saved")->Add(out.size());
  return out;
}

Result<HyGraph> Deserialize(const std::string& text) {
  HyGraph hg;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  // Pooled-series fixup: properties referencing pool ids are collected and
  // re-attached after the P records are read.
  struct PendingRef {
    bool is_edge;
    uint64_t id;
    std::string key;
    SeriesId pool_id;
  };
  std::vector<PendingRef> pending_refs;
  std::map<SeriesId, ts::MultiSeries> pool;
  // Running CRC over every byte preceding the CHECKSUM trailer, matching
  // how Serialize computed it (each line + '\n').
  uint32_t crc_state = kCrc32Init;
  bool saw_checksum = false;

  while (std::getline(in, line)) {
    ++line_number;
    if (Trim(line).empty()) continue;
    if (saw_checksum) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": data after CHECKSUM trailer");
    }
    std::vector<std::string> tokens;
    for (const std::string& tok : Split(line, ' ')) {
      if (!tok.empty()) tokens.push_back(tok);
    }
    const bool is_checksum = !tokens.empty() && tokens[0] == "CHECKSUM";
    if (!is_checksum) {
      crc_state = Crc32Update(crc_state, line.data(), line.size());
      crc_state = Crc32Update(crc_state, "\n", 1);
    }
    Cursor cursor(std::move(tokens), line_number);
    auto kind = cursor.Next();
    if (!kind.ok()) return kind.status();
    if (is_checksum) {
      if (!saw_header) return cursor.Fail("missing HYGRAPH header");
      auto stored = cursor.Next();
      if (!stored.ok()) return stored.status();
      const uint32_t expected =
          static_cast<uint32_t>(std::strtoul(stored->c_str(), nullptr, 16));
      if (Crc32Finalize(crc_state) != expected) {
        return cursor.Fail("checksum mismatch: file is corrupt");
      }
      saw_checksum = true;
      continue;
    }
    if (!saw_header) {
      if (*kind != "HYGRAPH") {
        return cursor.Fail("missing HYGRAPH header");
      }
      auto version = cursor.NextUint();
      if (!version.ok()) return version.status();
      if (*version != 1) return cursor.Fail("unsupported format version");
      saw_header = true;
      continue;
    }
    if (*kind == "V") {
      auto id = cursor.NextUint();
      if (!id.ok()) return id.status();
      auto flavor = cursor.Next();
      if (!flavor.ok()) return flavor.status();
      if (*flavor == "PG") {
        auto validity = cursor.NextInterval();
        if (!validity.ok()) return validity.status();
        auto labels = cursor.NextLabels();
        if (!labels.ok()) return labels.status();
        auto props = cursor.NextProperties();
        if (!props.ok()) return props.status();
        // Strip series refs; re-attach after the pool loads.
        graph::PropertyMap static_props;
        for (auto& [key, value] : *props) {
          if (value.is_series_ref()) {
            pending_refs.push_back(
                PendingRef{false, *id, key, value.AsSeriesId()});
          } else {
            static_props[key] = value;
          }
        }
        auto v = hg.AddPgVertex(std::move(*labels), std::move(static_props),
                                *validity);
        if (!v.ok()) return v.status();
        if (*v != *id) return cursor.Fail("non-sequential vertex id");
      } else if (*flavor == "TS") {
        auto labels = cursor.NextLabels();
        if (!labels.ok()) return labels.status();
        auto props = cursor.NextProperties();
        if (!props.ok()) return props.status();
        auto series = cursor.NextMultiSeries();
        if (!series.ok()) return series.status();
        auto v = hg.AddTsVertex(std::move(*labels), std::move(*series));
        if (!v.ok()) return v.status();
        if (*v != *id) return cursor.Fail("non-sequential vertex id");
        for (auto& [key, value] : *props) {
          if (value.is_series_ref()) {
            pending_refs.push_back(
                PendingRef{false, *id, key, value.AsSeriesId()});
          } else {
            HYGRAPH_RETURN_IF_ERROR(hg.SetVertexProperty(*v, key, value));
          }
        }
      } else {
        return cursor.Fail("unknown vertex flavor '" + *flavor + "'");
      }
    } else if (*kind == "E") {
      auto id = cursor.NextUint();
      if (!id.ok()) return id.status();
      auto flavor = cursor.Next();
      if (!flavor.ok()) return flavor.status();
      auto src = cursor.NextUint();
      if (!src.ok()) return src.status();
      auto dst = cursor.NextUint();
      if (!dst.ok()) return dst.status();
      auto label = cursor.NextDecoded();
      if (!label.ok()) return label.status();
      if (*flavor == "PG") {
        auto validity = cursor.NextInterval();
        if (!validity.ok()) return validity.status();
        auto props = cursor.NextProperties();
        if (!props.ok()) return props.status();
        graph::PropertyMap static_props;
        for (auto& [key, value] : *props) {
          if (value.is_series_ref()) {
            pending_refs.push_back(
                PendingRef{true, *id, key, value.AsSeriesId()});
          } else {
            static_props[key] = value;
          }
        }
        auto e = hg.AddPgEdge(*src, *dst, std::move(*label),
                              std::move(static_props), *validity);
        if (!e.ok()) return e.status();
        if (*e != *id) return cursor.Fail("non-sequential edge id");
      } else if (*flavor == "TS") {
        auto props = cursor.NextProperties();
        if (!props.ok()) return props.status();
        auto series = cursor.NextMultiSeries();
        if (!series.ok()) return series.status();
        auto e = hg.AddTsEdge(*src, *dst, std::move(*label),
                              std::move(*series));
        if (!e.ok()) return e.status();
        if (*e != *id) return cursor.Fail("non-sequential edge id");
        for (auto& [key, value] : *props) {
          if (value.is_series_ref()) {
            pending_refs.push_back(
                PendingRef{true, *id, key, value.AsSeriesId()});
          } else {
            HYGRAPH_RETURN_IF_ERROR(hg.SetEdgeProperty(*e, key, value));
          }
        }
      } else {
        return cursor.Fail("unknown edge flavor '" + *flavor + "'");
      }
    } else if (*kind == "P") {
      auto id = cursor.NextUint();
      if (!id.ok()) return id.status();
      auto series = cursor.NextMultiSeries();
      if (!series.ok()) return series.status();
      pool.emplace(*id, std::move(*series));
    } else if (*kind == "S") {
      auto id = cursor.NextUint();
      if (!id.ok()) return id.status();
      auto validity = cursor.NextInterval();
      if (!validity.ok()) return validity.status();
      auto labels = cursor.NextLabels();
      if (!labels.ok()) return labels.status();
      auto props = cursor.NextProperties();
      if (!props.ok()) return props.status();
      auto s = hg.CreateSubgraph(std::move(*labels), std::move(*props),
                                 *validity);
      if (!s.ok()) return s.status();
      if (*s != *id) return cursor.Fail("non-sequential subgraph id");
    } else if (*kind == "M") {
      auto s = cursor.NextUint();
      if (!s.ok()) return s.status();
      auto element_kind = cursor.Next();
      if (!element_kind.ok()) return element_kind.status();
      auto element_id = cursor.NextUint();
      if (!element_id.ok()) return element_id.status();
      auto membership = cursor.NextInterval();
      if (!membership.ok()) return membership.status();
      const ElementRef ref = *element_kind == "V"
                                 ? ElementRef::OfVertex(*element_id)
                                 : ElementRef::OfEdge(*element_id);
      HYGRAPH_RETURN_IF_ERROR(hg.AddToSubgraph(*s, ref, *membership));
    } else {
      return cursor.Fail("unknown record kind '" + *kind + "'");
    }
  }
  if (!saw_header) {
    return Status::Corruption("empty input (no HYGRAPH header)");
  }
  // Re-attach pooled series properties in canonical (pool-id) order so the
  // rebuilt pool gets the same ids.
  std::sort(pending_refs.begin(), pending_refs.end(),
            [](const PendingRef& a, const PendingRef& b) {
              return a.pool_id < b.pool_id;
            });
  for (const PendingRef& ref : pending_refs) {
    auto it = pool.find(ref.pool_id);
    if (it == pool.end()) {
      return Status::Corruption("property references missing pooled series " +
                                std::to_string(ref.pool_id));
    }
    if (ref.is_edge) {
      auto sid = hg.SetEdgeSeriesProperty(ref.id, ref.key, it->second);
      if (!sid.ok()) return sid.status();
    } else {
      auto sid = hg.SetVertexSeriesProperty(ref.id, ref.key, it->second);
      if (!sid.ok()) return sid.status();
    }
  }
  HYGRAPH_RETURN_IF_ERROR(hg.Validate());
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("serialize.loads")->Increment();
  registry.counter("serialize.bytes_loaded")->Add(text.size());
  return hg;
}

Status SaveToFile(const HyGraph& hg, const std::string& path) {
  auto text = Serialize(hg);
  if (!text.ok()) return text.status();
  // Write-temp + fsync + atomic rename: a crash or full disk mid-write can
  // only ever leave the temp file behind, never a truncated `path`.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + tmp +
                           "' for writing: " + std::strerror(errno));
  }
  const bool wrote =
      std::fwrite(text->data(), 1, text->size(), f) == text->size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename '" + tmp + "' -> '" + path +
                           "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

Result<HyGraph> LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read from '" + path + "' failed");
  return Deserialize(buffer.str());
}

}  // namespace hygraph::core
