#ifndef HYGRAPH_CORE_HYGRAPH_H_
#define HYGRAPH_CORE_HYGRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "temporal/temporal_graph.h"
#include "ts/multiseries.h"
#include "ts/series.h"

namespace hygraph::core {

using graph::EdgeId;
using graph::PropertyMap;
using graph::VertexId;
using temporal::TemporalPropertyGraph;

/// Whether a HyGraph element is a property-graph element (V_pg / E_pg) or a
/// time-series element (V_ts / E_ts) — the paper's first-class split.
enum class ElementKind : uint8_t { kPg, kTs };

/// Identifier of a logical subgraph (S in the HGM tuple).
using SubgraphId = uint64_t;
inline constexpr SubgraphId kInvalidSubgraphId = ~SubgraphId{0};

/// A reference to a vertex or an edge (used by subgraph membership).
struct ElementRef {
  enum class Kind : uint8_t { kVertex, kEdge } kind = Kind::kVertex;
  uint64_t id = 0;

  static ElementRef OfVertex(VertexId v) { return {Kind::kVertex, v}; }
  static ElementRef OfEdge(EdgeId e) { return {Kind::kEdge, e}; }
  bool operator==(const ElementRef&) const = default;
};

/// The HyGraph Model (HGM) instance — the paper's central contribution:
///
///   HG = (V, E, S, TS, η, γ, λ, φ, ρ, δ)
///
/// * V = V_pg ∪ V_ts and E = E_pg ∪ E_ts: vertices/edges are either
///   property-graph elements or first-class time-series elements
///   (ElementKind). Structure (η), labels (λ) and validity (ρ) live in an
///   embedded TemporalPropertyGraph.
/// * δ maps every TS vertex/edge to a (multivariate) time series; a TS
///   element *is* its series. The paper defines ρ only over
///   (V_pg ∪ E_pg ∪ S), so TS elements carry no validity of their own —
///   structurally they are treated as always valid, and their temporal
///   extent is the series' time span.
/// * φ maps PG elements (and subgraphs) × keys to values from
///   N = N_σ ∪ N_TS: static scalars, or references into the instance's
///   series pool (time-series property values).
/// * S is a set of logical subgraphs with labels, properties, validity, and
///   time-dependent membership γ(s, t) ⊆ P(V) × P(E).
///
/// All mutators preserve the R2 consistency invariants; Validate() (in
/// validate.cc) re-checks them from scratch.
class HyGraph {
 public:
  HyGraph() = default;

  HyGraph(const HyGraph&) = default;
  HyGraph& operator=(const HyGraph&) = default;
  HyGraph(HyGraph&&) = default;
  HyGraph& operator=(HyGraph&&) = default;

  // -- vertices and edges (V, E, η, λ, ρ, δ) --------------------------------

  /// Adds a property-graph vertex valid over `validity`.
  Result<VertexId> AddPgVertex(std::vector<std::string> labels,
                               PropertyMap properties,
                               Interval validity = Interval::All());

  /// Adds a time-series vertex: the entity *is* the series (δ). TS
  /// elements carry no ρ, so structurally the vertex is always valid.
  Result<VertexId> AddTsVertex(std::vector<std::string> labels,
                               ts::MultiSeries series);

  /// Adds a property-graph edge; fails unless validity fits both endpoints.
  Result<EdgeId> AddPgEdge(VertexId src, VertexId dst, std::string label,
                           PropertyMap properties,
                           Interval validity = Interval::All());

  /// Adds a time-series edge, e.g. a transaction-flow or similarity edge
  /// whose weight evolves over time.
  Result<EdgeId> AddTsEdge(VertexId src, VertexId dst, std::string label,
                           ts::MultiSeries series);

  ElementKind VertexKind(VertexId v) const;
  ElementKind EdgeKind(EdgeId e) const;
  bool IsTsVertex(VertexId v) const { return VertexKind(v) == ElementKind::kTs; }
  bool IsTsEdge(EdgeId e) const { return EdgeKind(e) == ElementKind::kTs; }

  /// δ: the series of a TS vertex / edge. Error for PG elements.
  Result<const ts::MultiSeries*> VertexSeries(VertexId v) const;
  Result<const ts::MultiSeries*> EdgeSeries(EdgeId e) const;
  /// Appends one observation row to a TS element's series (the timestamp
  /// must be strictly after the series' last row).
  Status AppendToVertexSeries(VertexId v, Timestamp t,
                              const std::vector<double>& row);
  Status AppendToEdgeSeries(EdgeId e, Timestamp t,
                            const std::vector<double>& row);

  /// Drops series rows outside `keep` from a TS element — the R3 staleness
  /// eviction path. Returns the number of rows removed.
  Result<size_t> RetainVertexSeries(VertexId v, const Interval& keep);
  Result<size_t> RetainEdgeSeries(EdgeId e, const Interval& keep);

  std::vector<VertexId> PgVertices() const;
  std::vector<VertexId> TsVertices() const;
  std::vector<EdgeId> PgEdges() const;
  std::vector<EdgeId> TsEdges() const;

  // -- properties (φ, N_σ ∪ N_TS) -------------------------------------------

  /// Sets a static property (N_σ). SeriesRef values are rejected — use
  /// SetVertexSeriesProperty so the reference stays consistent with the
  /// series pool.
  Status SetVertexProperty(VertexId v, const std::string& key, Value value);
  Status SetEdgeProperty(EdgeId e, const std::string& key, Value value);

  /// Attaches a time series as a property value (N_TS): the series goes
  /// into the instance's pool and the property holds a SeriesRef to it.
  Result<SeriesId> SetVertexSeriesProperty(VertexId v, const std::string& key,
                                           ts::MultiSeries series);
  Result<SeriesId> SetEdgeSeriesProperty(EdgeId e, const std::string& key,
                                         ts::MultiSeries series);

  Result<Value> GetVertexProperty(VertexId v, const std::string& key) const;
  Result<Value> GetEdgeProperty(EdgeId e, const std::string& key) const;

  /// Resolves a property that holds a SeriesRef to the pooled series.
  Result<const ts::MultiSeries*> GetVertexSeriesProperty(
      VertexId v, const std::string& key) const;
  Result<const ts::MultiSeries*> GetEdgeSeriesProperty(
      EdgeId e, const std::string& key) const;

  /// Direct lookup into the series pool (TS).
  Result<const ts::MultiSeries*> LookupSeries(SeriesId id) const;
  size_t SeriesPoolSize() const { return series_pool_.size(); }

  // -- subgraphs (S, γ) ------------------------------------------------------

  Result<SubgraphId> CreateSubgraph(std::vector<std::string> labels,
                                    PropertyMap properties,
                                    Interval validity = Interval::All());

  /// Adds an element to a subgraph over `membership`; the interval must be
  /// contained in both the subgraph's validity and the element's validity.
  Status AddToSubgraph(SubgraphId s, ElementRef element, Interval membership);

  /// γ(s, t): members of subgraph s at instant t.
  struct SubgraphMembers {
    std::vector<VertexId> vertices;
    std::vector<EdgeId> edges;
  };
  Result<SubgraphMembers> SubgraphAt(SubgraphId s, Timestamp t) const;

  Result<Interval> SubgraphValidity(SubgraphId s) const;
  Result<const std::vector<std::string>*> SubgraphLabels(SubgraphId s) const;

  /// All properties of a subgraph (φ restricted to S); an empty map for
  /// unknown ids.
  const PropertyMap& SubgraphProperties(SubgraphId s) const;

  /// Raw membership records (element, interval) of a subgraph — the data
  /// behind γ, used by serialization and introspection.
  struct SubgraphMemberRecord {
    ElementRef element;
    Interval membership;
  };
  std::vector<SubgraphMemberRecord> SubgraphMemberRecords(SubgraphId s) const;
  Status SetSubgraphProperty(SubgraphId s, const std::string& key,
                             Value value);
  Result<Value> GetSubgraphProperty(SubgraphId s,
                                    const std::string& key) const;
  std::vector<SubgraphId> SubgraphIds() const;

  // -- structure access -------------------------------------------------------

  /// The embedded TPG: adjacency, labels, validity, snapshots, pattern
  /// matching all operate through this view.
  const TemporalPropertyGraph& tpg() const { return tpg_; }
  const graph::PropertyGraph& structure() const { return tpg_.graph(); }

  /// Expert escape hatch: direct mutable access to the embedded TPG.
  /// Mutations through it bypass the model's kind/series bookkeeping — run
  /// Validate() afterwards. Exists for bulk imports and failure-injection
  /// tests.
  TemporalPropertyGraph* mutable_tpg() { return &tpg_; }

  size_t VertexCount() const { return tpg_.VertexCount(); }
  size_t EdgeCount() const { return tpg_.EdgeCount(); }

  /// Element validity (ρ). The model leaves TS elements outside ρ's
  /// domain: TS vertices report All(), TS edges report the intersection of
  /// their endpoints' validity (the structural layer's containment rule).
  Result<Interval> VertexValidity(VertexId v) const {
    return tpg_.VertexValidity(v);
  }
  Result<Interval> EdgeValidity(EdgeId e) const {
    return tpg_.EdgeValidity(e);
  }

  /// Full R2 consistency check (implemented in validate.cc): TPG temporal
  /// integrity, series chronology, subgraph membership containment, series
  /// reference resolution, kind bookkeeping.
  Status Validate() const;

 private:
  struct Subgraph {
    SubgraphId id = kInvalidSubgraphId;
    std::vector<std::string> labels;
    PropertyMap properties;
    Interval validity;
    struct Member {
      ElementRef element;
      Interval membership;
    };
    std::vector<Member> members;
  };

  Result<Interval> ElementValidity(const ElementRef& ref) const;
  SeriesId PoolSeries(ts::MultiSeries series);

  TemporalPropertyGraph tpg_;
  std::unordered_map<VertexId, ElementKind> vertex_kind_;
  std::unordered_map<EdgeId, ElementKind> edge_kind_;
  std::unordered_map<VertexId, ts::MultiSeries> vertex_series_;  // δ for V_ts
  std::unordered_map<EdgeId, ts::MultiSeries> edge_series_;      // δ for E_ts
  std::unordered_map<SeriesId, ts::MultiSeries> series_pool_;    // TS (N_TS)
  SeriesId next_series_id_ = 0;
  std::unordered_map<SubgraphId, Subgraph> subgraphs_;
  SubgraphId next_subgraph_id_ = 0;
};

}  // namespace hygraph::core

#endif  // HYGRAPH_CORE_HYGRAPH_H_
