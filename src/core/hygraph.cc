#include "core/hygraph.h"

#include <algorithm>

namespace hygraph::core {

namespace {

Status NotTsElement(const char* what, uint64_t id) {
  return Status::FailedPrecondition(std::string(what) + " " +
                                    std::to_string(id) +
                                    " is not a time-series element");
}

Status NoSuchSubgraph(SubgraphId s) {
  return Status::NotFound("no subgraph with id " + std::to_string(s));
}

}  // namespace

Result<VertexId> HyGraph::AddPgVertex(std::vector<std::string> labels,
                                      PropertyMap properties,
                                      Interval validity) {
  for (const auto& [key, value] : properties) {
    if (value.is_series_ref()) {
      return Status::InvalidArgument(
          "property '" + key +
          "' holds a raw SeriesRef; use SetVertexSeriesProperty");
    }
  }
  auto v = tpg_.AddVertex(std::move(labels), std::move(properties), validity);
  if (!v.ok()) return v.status();
  vertex_kind_[*v] = ElementKind::kPg;
  return *v;
}

Result<VertexId> HyGraph::AddTsVertex(std::vector<std::string> labels,
                                      ts::MultiSeries series) {
  auto v = tpg_.AddVertex(std::move(labels), {}, Interval::All());
  if (!v.ok()) return v.status();
  vertex_kind_[*v] = ElementKind::kTs;
  vertex_series_.emplace(*v, std::move(series));
  return *v;
}

Result<EdgeId> HyGraph::AddPgEdge(VertexId src, VertexId dst,
                                  std::string label, PropertyMap properties,
                                  Interval validity) {
  for (const auto& [key, value] : properties) {
    if (value.is_series_ref()) {
      return Status::InvalidArgument(
          "property '" + key +
          "' holds a raw SeriesRef; use SetEdgeSeriesProperty");
    }
  }
  auto e = tpg_.AddEdge(src, dst, std::move(label), std::move(properties),
                        validity);
  if (!e.ok()) return e.status();
  edge_kind_[*e] = ElementKind::kPg;
  return *e;
}

Result<EdgeId> HyGraph::AddTsEdge(VertexId src, VertexId dst,
                                  std::string label, ts::MultiSeries series) {
  // TS elements carry no ρ of their own, but the structural layer still
  // requires edge validity to fit the endpoints — clamp to their
  // intersection ("always valid, as far as the endpoints allow").
  auto src_validity = tpg_.VertexValidity(src);
  if (!src_validity.ok()) return src_validity.status();
  auto dst_validity = tpg_.VertexValidity(dst);
  if (!dst_validity.ok()) return dst_validity.status();
  const Interval validity = src_validity->Intersect(*dst_validity);
  if (validity.empty()) {
    return Status::FailedPrecondition(
        "endpoints' validity intervals do not overlap");
  }
  auto e = tpg_.AddEdge(src, dst, std::move(label), {}, validity);
  if (!e.ok()) return e.status();
  edge_kind_[*e] = ElementKind::kTs;
  edge_series_.emplace(*e, std::move(series));
  return *e;
}

ElementKind HyGraph::VertexKind(VertexId v) const {
  auto it = vertex_kind_.find(v);
  return it == vertex_kind_.end() ? ElementKind::kPg : it->second;
}

ElementKind HyGraph::EdgeKind(EdgeId e) const {
  auto it = edge_kind_.find(e);
  return it == edge_kind_.end() ? ElementKind::kPg : it->second;
}

Result<const ts::MultiSeries*> HyGraph::VertexSeries(VertexId v) const {
  auto it = vertex_series_.find(v);
  if (it == vertex_series_.end()) return Status(NotTsElement("vertex", v));
  return &it->second;
}

Result<const ts::MultiSeries*> HyGraph::EdgeSeries(EdgeId e) const {
  auto it = edge_series_.find(e);
  if (it == edge_series_.end()) return Status(NotTsElement("edge", e));
  return &it->second;
}

Status HyGraph::AppendToVertexSeries(VertexId v, Timestamp t,
                                     const std::vector<double>& row) {
  auto it = vertex_series_.find(v);
  if (it == vertex_series_.end()) return NotTsElement("vertex", v);
  return it->second.AppendRow(t, row);
}

Status HyGraph::AppendToEdgeSeries(EdgeId e, Timestamp t,
                                   const std::vector<double>& row) {
  auto it = edge_series_.find(e);
  if (it == edge_series_.end()) return NotTsElement("edge", e);
  return it->second.AppendRow(t, row);
}

Result<size_t> HyGraph::RetainVertexSeries(VertexId v, const Interval& keep) {
  auto it = vertex_series_.find(v);
  if (it == vertex_series_.end()) return Status(NotTsElement("vertex", v));
  return it->second.Retain(keep);
}

Result<size_t> HyGraph::RetainEdgeSeries(EdgeId e, const Interval& keep) {
  auto it = edge_series_.find(e);
  if (it == edge_series_.end()) return Status(NotTsElement("edge", e));
  return it->second.Retain(keep);
}

std::vector<VertexId> HyGraph::PgVertices() const {
  std::vector<VertexId> out;
  for (VertexId v : structure().VertexIds()) {
    if (VertexKind(v) == ElementKind::kPg) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> HyGraph::TsVertices() const {
  std::vector<VertexId> out;
  for (VertexId v : structure().VertexIds()) {
    if (VertexKind(v) == ElementKind::kTs) out.push_back(v);
  }
  return out;
}

std::vector<EdgeId> HyGraph::PgEdges() const {
  std::vector<EdgeId> out;
  for (EdgeId e : structure().EdgeIds()) {
    if (EdgeKind(e) == ElementKind::kPg) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> HyGraph::TsEdges() const {
  std::vector<EdgeId> out;
  for (EdgeId e : structure().EdgeIds()) {
    if (EdgeKind(e) == ElementKind::kTs) out.push_back(e);
  }
  return out;
}

Status HyGraph::SetVertexProperty(VertexId v, const std::string& key,
                                  Value value) {
  if (value.is_series_ref()) {
    return Status::InvalidArgument(
        "use SetVertexSeriesProperty to attach series values");
  }
  return tpg_.mutable_graph()->SetVertexProperty(v, key, std::move(value));
}

Status HyGraph::SetEdgeProperty(EdgeId e, const std::string& key,
                                Value value) {
  if (value.is_series_ref()) {
    return Status::InvalidArgument(
        "use SetEdgeSeriesProperty to attach series values");
  }
  return tpg_.mutable_graph()->SetEdgeProperty(e, key, std::move(value));
}

SeriesId HyGraph::PoolSeries(ts::MultiSeries series) {
  const SeriesId id = next_series_id_++;
  series_pool_.emplace(id, std::move(series));
  return id;
}

Result<SeriesId> HyGraph::SetVertexSeriesProperty(VertexId v,
                                                  const std::string& key,
                                                  ts::MultiSeries series) {
  if (!structure().HasVertex(v)) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  const SeriesId id = PoolSeries(std::move(series));
  HYGRAPH_RETURN_IF_ERROR(
      tpg_.mutable_graph()->SetVertexProperty(v, key, Value::SeriesRef(id)));
  return id;
}

Result<SeriesId> HyGraph::SetEdgeSeriesProperty(EdgeId e,
                                                const std::string& key,
                                                ts::MultiSeries series) {
  if (!structure().HasEdge(e)) {
    return Status::NotFound("no edge with id " + std::to_string(e));
  }
  const SeriesId id = PoolSeries(std::move(series));
  HYGRAPH_RETURN_IF_ERROR(
      tpg_.mutable_graph()->SetEdgeProperty(e, key, Value::SeriesRef(id)));
  return id;
}

Result<Value> HyGraph::GetVertexProperty(VertexId v,
                                         const std::string& key) const {
  return structure().GetVertexProperty(v, key);
}

Result<Value> HyGraph::GetEdgeProperty(EdgeId e,
                                       const std::string& key) const {
  return structure().GetEdgeProperty(e, key);
}

Result<const ts::MultiSeries*> HyGraph::GetVertexSeriesProperty(
    VertexId v, const std::string& key) const {
  auto value = structure().GetVertexProperty(v, key);
  if (!value.ok()) return value.status();
  if (!value->is_series_ref()) {
    return Status::FailedPrecondition("property '" + key +
                                      "' is not a series property");
  }
  return LookupSeries(value->AsSeriesId());
}

Result<const ts::MultiSeries*> HyGraph::GetEdgeSeriesProperty(
    EdgeId e, const std::string& key) const {
  auto value = structure().GetEdgeProperty(e, key);
  if (!value.ok()) return value.status();
  if (!value->is_series_ref()) {
    return Status::FailedPrecondition("property '" + key +
                                      "' is not a series property");
  }
  return LookupSeries(value->AsSeriesId());
}

Result<const ts::MultiSeries*> HyGraph::LookupSeries(SeriesId id) const {
  auto it = series_pool_.find(id);
  if (it == series_pool_.end()) {
    return Status::NotFound("no pooled series with id " + std::to_string(id));
  }
  return &it->second;
}

Result<SubgraphId> HyGraph::CreateSubgraph(std::vector<std::string> labels,
                                           PropertyMap properties,
                                           Interval validity) {
  if (validity.empty()) {
    return Status::InvalidArgument("subgraph validity interval is empty");
  }
  const SubgraphId id = next_subgraph_id_++;
  Subgraph sg;
  sg.id = id;
  sg.labels = std::move(labels);
  sg.properties = std::move(properties);
  sg.validity = validity;
  subgraphs_.emplace(id, std::move(sg));
  return id;
}

Result<Interval> HyGraph::ElementValidity(const ElementRef& ref) const {
  if (ref.kind == ElementRef::Kind::kVertex) {
    return tpg_.VertexValidity(ref.id);
  }
  return tpg_.EdgeValidity(ref.id);
}

Status HyGraph::AddToSubgraph(SubgraphId s, ElementRef element,
                              Interval membership) {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return NoSuchSubgraph(s);
  if (membership.empty()) {
    return Status::InvalidArgument("membership interval is empty");
  }
  if (!it->second.validity.ContainsInterval(membership)) {
    return Status::FailedPrecondition(
        "membership " + membership.ToString() +
        " exceeds subgraph validity " + it->second.validity.ToString());
  }
  auto element_validity = ElementValidity(element);
  if (!element_validity.ok()) return element_validity.status();
  if (!element_validity->ContainsInterval(membership)) {
    return Status::FailedPrecondition(
        "membership " + membership.ToString() +
        " exceeds element validity " + element_validity->ToString());
  }
  it->second.members.push_back(Subgraph::Member{element, membership});
  return Status::OK();
}

Result<HyGraph::SubgraphMembers> HyGraph::SubgraphAt(SubgraphId s,
                                                     Timestamp t) const {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return Status(NoSuchSubgraph(s));
  SubgraphMembers members;
  if (!it->second.validity.Contains(t)) return members;  // γ empty outside ρ
  for (const Subgraph::Member& m : it->second.members) {
    if (!m.membership.Contains(t)) continue;
    if (m.element.kind == ElementRef::Kind::kVertex) {
      members.vertices.push_back(m.element.id);
    } else {
      members.edges.push_back(m.element.id);
    }
  }
  std::sort(members.vertices.begin(), members.vertices.end());
  members.vertices.erase(
      std::unique(members.vertices.begin(), members.vertices.end()),
      members.vertices.end());
  std::sort(members.edges.begin(), members.edges.end());
  members.edges.erase(
      std::unique(members.edges.begin(), members.edges.end()),
      members.edges.end());
  return members;
}

Result<Interval> HyGraph::SubgraphValidity(SubgraphId s) const {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return Status(NoSuchSubgraph(s));
  return it->second.validity;
}

Result<const std::vector<std::string>*> HyGraph::SubgraphLabels(
    SubgraphId s) const {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return Status(NoSuchSubgraph(s));
  return &it->second.labels;
}

Status HyGraph::SetSubgraphProperty(SubgraphId s, const std::string& key,
                                    Value value) {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return NoSuchSubgraph(s);
  it->second.properties[key] = std::move(value);
  return Status::OK();
}

Result<Value> HyGraph::GetSubgraphProperty(SubgraphId s,
                                           const std::string& key) const {
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return Status(NoSuchSubgraph(s));
  auto prop = it->second.properties.find(key);
  if (prop == it->second.properties.end()) {
    return Status::NotFound("subgraph " + std::to_string(s) +
                            " has no property '" + key + "'");
  }
  return prop->second;
}

const PropertyMap& HyGraph::SubgraphProperties(SubgraphId s) const {
  static const PropertyMap* kEmpty =
      new PropertyMap();  // NOLINT(hygraph-naked-new): leaked singleton
  auto it = subgraphs_.find(s);
  return it == subgraphs_.end() ? *kEmpty : it->second.properties;
}

std::vector<HyGraph::SubgraphMemberRecord> HyGraph::SubgraphMemberRecords(
    SubgraphId s) const {
  std::vector<SubgraphMemberRecord> out;
  auto it = subgraphs_.find(s);
  if (it == subgraphs_.end()) return out;
  out.reserve(it->second.members.size());
  for (const Subgraph::Member& m : it->second.members) {
    out.push_back(SubgraphMemberRecord{m.element, m.membership});
  }
  return out;
}

std::vector<SubgraphId> HyGraph::SubgraphIds() const {
  std::vector<SubgraphId> ids;
  ids.reserve(subgraphs_.size());
  for (const auto& [id, _] : subgraphs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace hygraph::core
