#ifndef HYGRAPH_CORE_BUILDER_H_
#define HYGRAPH_CORE_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::core {

/// Fluent construction helper for HyGraph instances. Vertices are named so
/// edges can reference them by string; errors are collected and surfaced at
/// Build() so construction code stays linear:
///
///   HyGraphBuilder b;
///   b.PgVertex("alice", {"User"}, {{"name", Value("Alice")}})
///    .TsVertex("card1", {"CreditCard"}, balance_series)
///    .PgEdge("alice", "card1", "USES")
///    .TsEdge("card1", "merchant", "TX", tx_series);
///   Result<HyGraph> hg = b.Build();
class HyGraphBuilder {
 public:
  HyGraphBuilder() = default;

  HyGraphBuilder(const HyGraphBuilder&) = delete;
  HyGraphBuilder& operator=(const HyGraphBuilder&) = delete;

  HyGraphBuilder& PgVertex(const std::string& name,
                           std::vector<std::string> labels,
                           PropertyMap properties = {},
                           Interval validity = Interval::All());

  HyGraphBuilder& TsVertex(const std::string& name,
                           std::vector<std::string> labels,
                           ts::MultiSeries series);

  HyGraphBuilder& PgEdge(const std::string& src, const std::string& dst,
                         std::string label, PropertyMap properties = {},
                         Interval validity = Interval::All());

  HyGraphBuilder& TsEdge(const std::string& src, const std::string& dst,
                         std::string label, ts::MultiSeries series);

  /// Attaches a time series as a property of a named vertex.
  HyGraphBuilder& VertexSeriesProperty(const std::string& name,
                                       const std::string& key,
                                       ts::MultiSeries series);

  /// The id a named vertex received (valid before Build()).
  Result<VertexId> IdOf(const std::string& name) const;

  /// Returns the built instance, or the first accumulated error. The
  /// builder is left in a moved-from state on success.
  Result<HyGraph> Build();

 private:
  void Fail(const Status& status);

  HyGraph hg_;
  std::unordered_map<std::string, VertexId> names_;
  Status first_error_;
};

}  // namespace hygraph::core

#endif  // HYGRAPH_CORE_BUILDER_H_
