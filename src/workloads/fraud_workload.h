#ifndef HYGRAPH_WORKLOADS_FRAUD_WORKLOAD_H_
#define HYGRAPH_WORKLOADS_FRAUD_WORKLOAD_H_

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::workloads {

/// Synthetic credit-card world for the running example (Figures 2/4), with
/// planted ground truth so the three detection paths can be scored:
///
///   * **ring fraudsters** (gt_fraud = true): a one-hour burst of
///     high-amount transactions to >= 3 nearby merchants, with matching
///     balance crashes — both the graph and the TS signal fire.
///   * **heavy spenders** (the paper's "User 3", gt_fraud = false): very
///     volatile balances that trip the TS-only detector, but ordinary
///     transaction topology.
///   * **burst shoppers** (gt_fraud = false): a legitimate high-amount
///     shopping spree at one mall (nearby merchants within an hour) that
///     trips the graph-only detector, on top of a deep balance cushion
///     that keeps the TS detector quiet.
///   * **normal users**: small transactions, smooth random-walk balances.
struct FraudConfig {
  size_t users = 200;
  size_t merchants = 60;
  size_t merchant_clusters = 6;  ///< malls; "nearby" = same cluster
  double fraud_rate = 0.06;
  double heavy_spender_rate = 0.06;
  double burst_shopper_rate = 0.06;
  size_t days = 10;
  Timestamp start_time = 1700000000000;
  uint64_t seed = 99;
};

/// Generates the HyGraph instance using the paper's modelling conventions
/// (User/Merchant PG vertices, CreditCard TS vertices with a "balance"
/// series, USES PG edges, TX TS edges with an "amount" series). Ground
/// truth is the boolean user property "gt_fraud"; role bookkeeping for
/// tests is the string property "gt_role" (one of "normal", "ring",
/// "heavy", "burst").
Result<core::HyGraph> GenerateFraudHyGraph(const FraudConfig& config);

}  // namespace hygraph::workloads

#endif  // HYGRAPH_WORKLOADS_FRAUD_WORKLOAD_H_
