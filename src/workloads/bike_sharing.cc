#include "workloads/bike_sharing.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace hygraph::workloads {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Result<BikeSharingDataset> GenerateBikeSharing(
    const BikeSharingConfig& config) {
  if (config.stations == 0 || config.districts == 0 || config.days == 0) {
    return Status::InvalidArgument(
        "stations, districts and days must be positive");
  }
  if (config.sample_interval <= 0) {
    return Status::InvalidArgument("sample_interval must be positive");
  }
  BikeSharingDataset dataset;
  dataset.config = config;
  Rng rng(config.seed);

  // District centers on a ring; stations scatter around their center.
  std::vector<std::pair<double, double>> centers;
  for (size_t d = 0; d < config.districts; ++d) {
    const double angle =
        2.0 * kPi * static_cast<double>(d) / static_cast<double>(config.districts);
    centers.emplace_back(10000.0 + 6000.0 * std::cos(angle),
                         10000.0 + 6000.0 * std::sin(angle));
  }

  for (size_t i = 0; i < config.stations; ++i) {
    StationRecord station;
    station.name = "S" + std::to_string(i);
    station.district = static_cast<int64_t>(i % config.districts);
    const auto [cx, cy] = centers[static_cast<size_t>(station.district)];
    station.x = cx + rng.NextGaussian() * 800.0;
    station.y = cy + rng.NextGaussian() * 800.0;
    station.capacity = rng.NextInRange(15, 60);
    dataset.stations.push_back(std::move(station));
  }

  // Availability series: base load + daily sinusoid with district phase +
  // weekly modulation + noise, clamped to [0, capacity] and rounded — a
  // station holds a whole number of bikes.
  const size_t samples = dataset.samples_per_station();
  for (StationRecord& station : dataset.stations) {
    const double base = static_cast<double>(station.capacity) * 0.5;
    const double amplitude = static_cast<double>(station.capacity) * 0.3;
    const double phase = 2.0 * kPi *
                         static_cast<double>(station.district) /
                         static_cast<double>(config.districts);
    station.bikes.set_name(station.name + ".bikes");
    for (size_t s = 0; s < samples; ++s) {
      const Timestamp t =
          config.start_time + static_cast<Duration>(s) * config.sample_interval;
      const double day_fraction =
          static_cast<double>(t % kDay) / static_cast<double>(kDay);
      const double week_fraction =
          static_cast<double>(t % (7 * kDay)) / static_cast<double>(7 * kDay);
      double value = base +
                     amplitude * std::sin(2.0 * kPi * day_fraction + phase) +
                     0.15 * amplitude * std::sin(2.0 * kPi * week_fraction) +
                     rng.NextGaussian() * 1.5;
      value = std::round(
          std::clamp(value, 0.0, static_cast<double>(station.capacity)));
      HYGRAPH_RETURN_IF_ERROR(station.bikes.Append(t, value));
    }
  }

  // Gravity-model trips: prefer big, nearby stations.
  for (size_t src = 0; src < config.stations; ++src) {
    std::vector<std::pair<double, size_t>> weights;
    for (size_t dst = 0; dst < config.stations; ++dst) {
      if (dst == src) continue;
      const double dx = dataset.stations[src].x - dataset.stations[dst].x;
      const double dy = dataset.stations[src].y - dataset.stations[dst].y;
      const double dist = std::sqrt(dx * dx + dy * dy) + 100.0;
      const double w =
          static_cast<double>(dataset.stations[dst].capacity) / (dist * dist);
      weights.emplace_back(w, dst);
    }
    std::sort(weights.begin(), weights.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const size_t fanout = std::min(config.trips_per_station, weights.size());
    for (size_t k = 0; k < fanout; ++k) {
      TripRecord trip;
      trip.src = src;
      trip.dst = weights[k].second;
      const double dx = dataset.stations[src].x -
                        dataset.stations[trip.dst].x;
      const double dy = dataset.stations[src].y -
                        dataset.stations[trip.dst].y;
      trip.distance = std::sqrt(dx * dx + dy * dy);
      trip.daily_trips.set_name(dataset.stations[src].name + "->" +
                                dataset.stations[trip.dst].name);
      for (size_t day = 0; day < config.days; ++day) {
        const Timestamp t =
            config.start_time + static_cast<Duration>(day) * kDay;
        const double mean_trips = 20.0 * weights[k].first /
                                  (weights.front().first + 1e-9);
        // Rounded like the availability series: trip totals are counts.
        HYGRAPH_RETURN_IF_ERROR(trip.daily_trips.Append(
            t, std::round(std::max(0.0, mean_trips + rng.NextGaussian() * 2.0))));
      }
      dataset.trips.push_back(std::move(trip));
    }
  }
  return dataset;
}

Result<std::vector<graph::VertexId>> LoadIntoBackend(
    const BikeSharingDataset& dataset, query::QueryBackend* backend) {
  graph::PropertyGraph* g = backend->mutable_topology();
  std::vector<graph::VertexId> station_ids;
  station_ids.reserve(dataset.stations.size());
  for (const StationRecord& station : dataset.stations) {
    graph::PropertyMap props;
    props["name"] = station.name;
    props["district"] = station.district;
    props["capacity"] = station.capacity;
    props["x"] = station.x;
    props["y"] = station.y;
    station_ids.push_back(g->AddVertex({"Station"}, std::move(props)));
  }
  for (const StationRecord& station : dataset.stations) {
    const graph::VertexId v = station_ids[&station - dataset.stations.data()];
    for (const ts::Sample& s : station.bikes.samples()) {
      HYGRAPH_RETURN_IF_ERROR(
          backend->AppendVertexSample(v, "bikes", s.t, s.value));
    }
  }
  for (const TripRecord& trip : dataset.trips) {
    graph::PropertyMap props;
    props["distance"] = trip.distance;
    auto e = g->AddEdge(station_ids[trip.src], station_ids[trip.dst], "TRIP",
                        std::move(props));
    if (!e.ok()) return e.status();
    for (const ts::Sample& s : trip.daily_trips.samples()) {
      HYGRAPH_RETURN_IF_ERROR(
          backend->AppendEdgeSample(*e, "trips", s.t, s.value));
    }
  }
  return station_ids;
}

Result<core::HyGraph> ToHyGraph(const BikeSharingDataset& dataset) {
  core::HyGraph hg;
  std::vector<graph::VertexId> station_ids;
  for (const StationRecord& station : dataset.stations) {
    graph::PropertyMap props;
    props["name"] = station.name;
    props["district"] = station.district;
    props["capacity"] = station.capacity;
    props["x"] = station.x;
    props["y"] = station.y;
    auto v = hg.AddPgVertex({"Station"}, std::move(props));
    if (!v.ok()) return v.status();
    ts::MultiSeries ms(station.name + ".bikes", {"bikes"});
    for (const ts::Sample& s : station.bikes.samples()) {
      HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(s.t, {s.value}));
    }
    auto sid = hg.SetVertexSeriesProperty(*v, "history", std::move(ms));
    if (!sid.ok()) return sid.status();
    station_ids.push_back(*v);
  }
  for (const TripRecord& trip : dataset.trips) {
    ts::MultiSeries ms(trip.daily_trips.name(), {"trips"});
    for (const ts::Sample& s : trip.daily_trips.samples()) {
      HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(s.t, {s.value}));
    }
    auto e = hg.AddTsEdge(station_ids[trip.src], station_ids[trip.dst],
                          "TRIP", std::move(ms));
    if (!e.ok()) return e.status();
    HYGRAPH_RETURN_IF_ERROR(
        hg.SetEdgeProperty(*e, "distance", Value(trip.distance)));
  }
  return hg;
}

}  // namespace hygraph::workloads
