#ifndef HYGRAPH_WORKLOADS_FINANCIAL_H_
#define HYGRAPH_WORKLOADS_FINANCIAL_H_

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::workloads {

/// Synthetic financial-entity world for the Section-2 backtesting scenario:
/// companies go through lifecycle stages — inception, IPO, being listed on
/// exchanges with varying membership, acquisitions, bankruptcy — all of
/// which change the graph topology over time (validity intervals), while
/// public companies carry a daily stock-price series as a time-series
/// property.
///
///   (Company:PG {name, sector})        validity = [inception, death)
///       "price" series property        while public
///   (Exchange:PG {name})
///   Company -[LISTED_ON:PG]-> Exchange validity = [ipo, delisting)
///   Company -[ACQUIRED:PG]-> Company   validity = [acquisition, death)
struct FinancialConfig {
  size_t companies = 40;
  size_t exchanges = 3;
  size_t years = 6;
  double ipo_probability = 0.8;         ///< chance a company ever IPOs
  double acquisition_probability = 0.3; ///< chance of being acquired
  double bankruptcy_probability = 0.15; ///< chance of going bankrupt
  Timestamp start_time = 1500000000000; // 2017-07-14
  uint64_t seed = 2024;
};

Result<core::HyGraph> GenerateFinancialHyGraph(const FinancialConfig& config);

}  // namespace hygraph::workloads

#endif  // HYGRAPH_WORKLOADS_FINANCIAL_H_
