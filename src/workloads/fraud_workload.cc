#include "workloads/fraud_workload.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/rng.h"

namespace hygraph::workloads {

namespace {

constexpr double kPi = 3.14159265358979323846;

struct TxEvent {
  Timestamp t;
  size_t merchant;  // index into merchant vertex list
  double amount;
};

enum class Role { kNormal, kRing, kHeavy, kBurst };

const char* RoleName(Role role) {
  switch (role) {
    case Role::kNormal:
      return "normal";
    case Role::kRing:
      return "ring";
    case Role::kHeavy:
      return "heavy";
    case Role::kBurst:
      return "burst";
  }
  return "?";
}

}  // namespace

Result<core::HyGraph> GenerateFraudHyGraph(const FraudConfig& config) {
  if (config.users == 0 || config.merchants == 0 ||
      config.merchant_clusters == 0 || config.days == 0) {
    return Status::InvalidArgument(
        "users, merchants, merchant_clusters and days must be positive");
  }
  if (config.merchants < config.merchant_clusters * 3) {
    return Status::InvalidArgument(
        "need at least 3 merchants per cluster for ring bursts");
  }
  core::HyGraph hg;
  Rng rng(config.seed);
  const Timestamp t0 = config.start_time;
  const size_t hours = config.days * 24;

  // Merchants in well-separated clusters ("malls"); same-cluster merchants
  // are mutually within ~600m, different clusters are kilometers apart.
  std::vector<graph::VertexId> merchants;
  std::vector<size_t> merchant_cluster;
  for (size_t m = 0; m < config.merchants; ++m) {
    const size_t cluster = m % config.merchant_clusters;
    const double angle = 2.0 * kPi * static_cast<double>(cluster) /
                         static_cast<double>(config.merchant_clusters);
    graph::PropertyMap props;
    props["name"] = "M" + std::to_string(m);
    props["cluster"] = static_cast<int64_t>(cluster);
    props["x"] = 20000.0 * std::cos(angle) + rng.NextGaussian() * 200.0;
    props["y"] = 20000.0 * std::sin(angle) + rng.NextGaussian() * 200.0;
    auto v = hg.AddPgVertex({"Merchant"}, std::move(props));
    if (!v.ok()) return v.status();
    merchants.push_back(*v);
    merchant_cluster.push_back(cluster);
  }

  for (size_t u = 0; u < config.users; ++u) {
    // Role assignment: deterministic thresholds over one uniform draw.
    const double draw = rng.NextDouble();
    Role role = Role::kNormal;
    if (draw < config.fraud_rate) {
      role = Role::kRing;
    } else if (draw < config.fraud_rate + config.heavy_spender_rate) {
      role = Role::kHeavy;
    } else if (draw < config.fraud_rate + config.heavy_spender_rate +
                          config.burst_shopper_rate) {
      role = Role::kBurst;
    }

    // --- transaction plan -------------------------------------------------
    std::vector<TxEvent> events;
    // Habitual merchants (2-3) for everyday purchases.
    std::vector<size_t> habitual;
    const size_t habit_count = 2 + rng.NextBounded(2);
    for (size_t k = 0; k < habit_count; ++k) {
      habitual.push_back(rng.NextBounded(config.merchants));
    }
    for (size_t day = 0; day < config.days; ++day) {
      const size_t tx_count = 1 + rng.NextBounded(3);
      for (size_t k = 0; k < tx_count; ++k) {
        const Timestamp t = t0 + static_cast<Duration>(day) * kDay +
                            rng.NextInRange(8, 21) * kHour +
                            rng.NextInRange(0, 59) * kMinute;
        const double amount =
            role == Role::kHeavy ? rng.NextDoubleInRange(300.0, 950.0)
                                 : rng.NextDoubleInRange(10.0, 300.0);
        events.push_back(
            TxEvent{t, habitual[rng.NextBounded(habitual.size())], amount});
      }
    }

    // Planted behaviours.
    Timestamp burst_start = 0;
    double burst_total = 0.0;
    if (role == Role::kRing || role == Role::kBurst) {
      const size_t cluster = rng.NextBounded(config.merchant_clusters);
      // Distinct merchants of that cluster.
      std::vector<size_t> cluster_merchants;
      for (size_t m = 0; m < config.merchants; ++m) {
        if (merchant_cluster[m] == cluster) cluster_merchants.push_back(m);
      }
      const size_t burst_size =
          std::min<size_t>(3 + rng.NextBounded(2), cluster_merchants.size());
      // Day >= 1: the TS detector's trailing window needs a day of history
      // before a crash can register, mirroring real deployments that only
      // score entities with enough baseline.
      const size_t burst_day =
          config.days > 1 ? 1 + rng.NextBounded(config.days - 1) : 0;
      burst_start = t0 + static_cast<Duration>(burst_day) * kDay +
                    rng.NextInRange(10, 18) * kHour;
      for (size_t k = 0; k < burst_size; ++k) {
        const double amount = rng.NextDoubleInRange(1200.0, 3000.0);
        burst_total += amount;
        events.push_back(TxEvent{
            burst_start + static_cast<Duration>(k * 9 + 1) * kMinute,
            cluster_merchants[k], amount});
      }
    }

    // --- balance series ----------------------------------------------------
    // Hourly random walk; ring fraud crashes the balance at the burst,
    // heavy spenders have sporadic large jumps, burst shoppers settle their
    // spree at the statement date (spread out), so no local anomaly.
    ts::MultiSeries balance("card" + std::to_string(u) + ".balance",
                            {"balance"});
    double level = rng.NextDoubleInRange(2000.0, 8000.0);
    std::vector<Timestamp> heavy_jumps;
    if (role == Role::kHeavy) {
      const size_t jumps = 3 + rng.NextBounded(3);
      for (size_t j = 0; j < jumps; ++j) {
        heavy_jumps.push_back(
            t0 + static_cast<Duration>(rng.NextBounded(hours)) * kHour);
      }
      std::sort(heavy_jumps.begin(), heavy_jumps.end());
    }
    size_t next_jump = 0;
    bool crashed = false;
    for (size_t h = 0; h < hours; ++h) {
      const Timestamp t = t0 + static_cast<Duration>(h) * kHour;
      level += rng.NextGaussian() * 20.0;
      if (role == Role::kRing && !crashed && t >= burst_start) {
        level -= burst_total;  // the fraud drains the card
        crashed = true;
      }
      while (next_jump < heavy_jumps.size() && t >= heavy_jumps[next_jump]) {
        level += (rng.NextBernoulli(0.5) ? 1.0 : -1.0) *
                 rng.NextDoubleInRange(2000.0, 4000.0);
        ++next_jump;
      }
      HYGRAPH_RETURN_IF_ERROR(balance.AppendRow(t, {level}));
    }

    // --- materialize vertices/edges -----------------------------------------
    graph::PropertyMap user_props;
    user_props["name"] = "U" + std::to_string(u);
    user_props["gt_fraud"] = Value(role == Role::kRing);
    user_props["gt_role"] = RoleName(role);
    auto user = hg.AddPgVertex({"User"}, std::move(user_props));
    if (!user.ok()) return user.status();

    auto card = hg.AddTsVertex({"CreditCard"}, std::move(balance));
    if (!card.ok()) return card.status();
    HYGRAPH_RETURN_IF_ERROR(hg.SetVertexProperty(
        *card, "name", Value("C" + std::to_string(u))));
    auto uses = hg.AddPgEdge(*user, *card, "USES", {});
    if (!uses.ok()) return uses.status();

    // Group transactions per merchant into one TX TS edge each.
    std::map<size_t, std::vector<TxEvent>> per_merchant;
    for (const TxEvent& ev : events) per_merchant[ev.merchant].push_back(ev);
    for (auto& [merchant, tx] : per_merchant) {
      std::sort(tx.begin(), tx.end(),
                [](const TxEvent& a, const TxEvent& b) { return a.t < b.t; });
      ts::MultiSeries amounts("tx", {"amount"});
      Timestamp last = kMinTimestamp;
      for (const TxEvent& ev : tx) {
        // Nudge duplicate timestamps forward to keep the axis strict.
        const Timestamp t = ev.t <= last ? last + 1 : ev.t;
        HYGRAPH_RETURN_IF_ERROR(amounts.AppendRow(t, {ev.amount}));
        last = t;
      }
      auto edge =
          hg.AddTsEdge(*card, merchants[merchant], "TX", std::move(amounts));
      if (!edge.ok()) return edge.status();
    }
  }
  return hg;
}

}  // namespace hygraph::workloads
