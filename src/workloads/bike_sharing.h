#ifndef HYGRAPH_WORKLOADS_BIKE_SHARING_H_
#define HYGRAPH_WORKLOADS_BIKE_SHARING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "query/backend.h"
#include "ts/series.h"

namespace hygraph::workloads {

/// Synthetic substitute for the paper's published bike-sharing dataset [52]
/// (NYC network with time-series-enhanced nodes and edges). Stations sit on
/// a geographic grid grouped into districts; every station carries a
/// "bikes" availability series (daily sinusoid with a district-specific
/// phase, a weekly modulation, and noise — so same-district stations
/// correlate, which Q6-style correlation queries rely on); trips follow a
/// gravity model and carry a daily trip-count series.
struct BikeSharingConfig {
  size_t stations = 120;
  size_t districts = 8;
  size_t days = 14;
  Duration sample_interval = 5 * kMinute;
  /// Outgoing TRIP edges per station (targets drawn by gravity weighting).
  size_t trips_per_station = 4;
  // Midnight-aligned so daily windows and day-wide hypertable chunks
  // coincide, as they would for real daily-operations data.
  Timestamp start_time = 1699920000000;  // 2023-11-14T00:00:00Z
  uint64_t seed = 1234;
};

/// One generated station.
struct StationRecord {
  std::string name;     ///< "S<i>"
  int64_t district = 0;
  double x = 0.0;       ///< meters on a synthetic plane
  double y = 0.0;
  int64_t capacity = 0;
  ts::Series bikes;     ///< availability samples
};

/// One generated trip relation.
struct TripRecord {
  size_t src = 0;  ///< index into stations
  size_t dst = 0;
  double distance = 0.0;
  ts::Series daily_trips;  ///< one sample per day
};

/// The materialized dataset — generated once, loadable into any backend, so
/// engine comparisons run on byte-identical data.
struct BikeSharingDataset {
  BikeSharingConfig config;
  std::vector<StationRecord> stations;
  std::vector<TripRecord> trips;

  Timestamp start() const { return config.start_time; }
  Timestamp end() const {
    return config.start_time +
           static_cast<Duration>(config.days) * kDay;
  }
  size_t samples_per_station() const {
    return static_cast<size_t>(static_cast<Duration>(config.days) * kDay /
                               config.sample_interval);
  }
};

/// Deterministically generates the dataset.
Result<BikeSharingDataset> GenerateBikeSharing(const BikeSharingConfig& config);

/// Loads the dataset into a storage backend: Station vertices (label
/// "Station"; static properties name/district/capacity/x/y), TRIP edges
/// (static property "distance"), the "bikes" vertex series and the "trips"
/// edge series via the backend's sample-append path. Returns the station
/// vertex ids in dataset order.
Result<std::vector<graph::VertexId>> LoadIntoBackend(
    const BikeSharingDataset& dataset, query::QueryBackend* backend);

/// Builds a HyGraph view of the dataset: stations become PG vertices whose
/// "bikes" series is a time-series property; trips become TS edges carrying
/// the daily trip-count series.
Result<core::HyGraph> ToHyGraph(const BikeSharingDataset& dataset);

}  // namespace hygraph::workloads

#endif  // HYGRAPH_WORKLOADS_BIKE_SHARING_H_
