#include "workloads/financial.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace hygraph::workloads {

namespace {

const char* kSectors[] = {"tech", "energy", "finance", "health", "retail"};

}  // namespace

Result<core::HyGraph> GenerateFinancialHyGraph(const FinancialConfig& config) {
  if (config.companies == 0 || config.exchanges == 0 || config.years == 0) {
    return Status::InvalidArgument(
        "companies, exchanges and years must be positive");
  }
  core::HyGraph hg;
  Rng rng(config.seed);
  const Timestamp t0 = config.start_time;
  const Duration horizon = static_cast<Duration>(config.years) * 365 * kDay;
  const Timestamp t_end = t0 + horizon;

  std::vector<graph::VertexId> exchanges;
  for (size_t x = 0; x < config.exchanges; ++x) {
    graph::PropertyMap props;
    props["name"] = "X" + std::to_string(x);
    auto v = hg.AddPgVertex({"Exchange"}, std::move(props),
                            Interval{t0, kMaxTimestamp});
    if (!v.ok()) return v.status();
    exchanges.push_back(*v);
  }

  struct CompanyInfo {
    graph::VertexId vertex;
    Timestamp inception;
    Timestamp death;  // kMaxTimestamp when alive
  };
  std::vector<CompanyInfo> companies;

  for (size_t c = 0; c < config.companies; ++c) {
    const Timestamp inception =
        t0 + static_cast<Duration>(rng.NextBounded(
                 static_cast<uint64_t>(horizon / 2 / kDay))) *
                 kDay;
    Timestamp death = kMaxTimestamp;
    const bool goes_bankrupt =
        rng.NextBernoulli(config.bankruptcy_probability);
    if (goes_bankrupt) {
      death = inception + 200 * kDay +
              static_cast<Duration>(rng.NextBounded(
                  static_cast<uint64_t>((t_end - inception) / kDay))) *
                  kDay;
      death = std::min(death, t_end);
    }
    graph::PropertyMap props;
    props["name"] = "Comp" + std::to_string(c);
    props["sector"] = kSectors[rng.NextBounded(5)];
    auto v = hg.AddPgVertex({"Company"}, std::move(props),
                            Interval{inception, death});
    if (!v.ok()) return v.status();
    companies.push_back(CompanyInfo{*v, inception, death});

    // IPO: listed on 1-2 exchanges; public companies get a daily price
    // series (geometric-ish random walk) for their public lifetime.
    if (rng.NextBernoulli(config.ipo_probability)) {
      const Timestamp ipo = inception + 100 * kDay;
      const Timestamp end_public =
          death == kMaxTimestamp ? t_end : std::min(death, t_end);
      if (ipo < end_public) {
        const size_t listings = 1 + rng.NextBounded(2);
        for (size_t l = 0; l < listings && l < exchanges.size(); ++l) {
          const graph::VertexId exchange =
              exchanges[rng.NextBounded(exchanges.size())];
          // Some listings end early (delisting / membership change).
          Timestamp delist = death;
          if (rng.NextBernoulli(0.3)) {
            const Duration public_span = end_public - ipo;
            delist = ipo + public_span / 2;
          }
          auto e = hg.AddPgEdge(*v, exchange, "LISTED_ON", {},
                                Interval{ipo, delist});
          if (!e.ok()) return e.status();
        }
        ts::MultiSeries price("Comp" + std::to_string(c) + ".price",
                              {"close"});
        double level = rng.NextDoubleInRange(10.0, 200.0);
        const double drift = rng.NextDoubleInRange(-0.001, 0.002);
        const double vol = rng.NextDoubleInRange(0.005, 0.03);
        for (Timestamp t = ipo; t < end_public; t += kDay) {
          level *= std::exp(drift + vol * rng.NextGaussian());
          level = std::max(level, 0.01);
          HYGRAPH_RETURN_IF_ERROR(price.AppendRow(t, {level}));
        }
        auto sid = hg.SetVertexSeriesProperty(*v, "price", std::move(price));
        if (!sid.ok()) return sid.status();
        HYGRAPH_RETURN_IF_ERROR(
            hg.SetVertexProperty(*v, "ipo_date", Value(int64_t{ipo})));
      }
    }
  }

  // Acquisitions: a live company may be acquired by an older live company;
  // the ACQUIRED edge is valid from the acquisition until the earlier of
  // the two deaths.
  for (size_t c = 1; c < companies.size(); ++c) {
    if (!rng.NextBernoulli(config.acquisition_probability)) continue;
    const CompanyInfo& target = companies[c];
    const CompanyInfo& acquirer = companies[rng.NextBounded(c)];
    const Timestamp earliest =
        std::max(target.inception, acquirer.inception) + 150 * kDay;
    const Timestamp latest =
        std::min({target.death, acquirer.death, t_end});
    if (earliest >= latest) continue;
    const Timestamp when =
        earliest + static_cast<Duration>(rng.NextBounded(static_cast<uint64_t>(
                       (latest - earliest) / kDay + 1))) *
                       kDay;
    const Timestamp until = std::min(target.death, acquirer.death);
    if (when >= until) continue;
    auto e = hg.AddPgEdge(acquirer.vertex, target.vertex, "ACQUIRED", {},
                          Interval{when, until});
    if (!e.ok()) return e.status();
  }
  return hg;
}

}  // namespace hygraph::workloads
