#include "temporal/temporal_graph.h"

#include <algorithm>

namespace hygraph::temporal {

Result<VertexId> TemporalPropertyGraph::AddVertex(
    std::vector<std::string> labels, PropertyMap properties,
    Interval validity) {
  if (validity.empty()) {
    return Status::InvalidArgument("vertex validity interval is empty");
  }
  const VertexId v =
      graph_.AddVertex(std::move(labels), std::move(properties));
  vertex_validity_[v] = validity;
  return v;
}

Result<EdgeId> TemporalPropertyGraph::AddEdge(VertexId src, VertexId dst,
                                              std::string label,
                                              PropertyMap properties,
                                              Interval validity) {
  if (validity.empty()) {
    return Status::InvalidArgument("edge validity interval is empty");
  }
  auto src_validity = VertexValidity(src);
  if (!src_validity.ok()) return src_validity.status();
  auto dst_validity = VertexValidity(dst);
  if (!dst_validity.ok()) return dst_validity.status();
  if (!src_validity->ContainsInterval(validity) ||
      !dst_validity->ContainsInterval(validity)) {
    return Status::FailedPrecondition(
        "edge validity " + validity.ToString() +
        " is not contained in both endpoint validities (temporal "
        "integrity, R2)");
  }
  auto e = graph_.AddEdge(src, dst, std::move(label), std::move(properties));
  if (!e.ok()) return e.status();
  edge_validity_[*e] = validity;
  return *e;
}

Status TemporalPropertyGraph::ExpireVertex(VertexId v, Timestamp t) {
  auto it = vertex_validity_.find(v);
  if (it == vertex_validity_.end()) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  if (!it->second.Contains(t)) {
    return Status::InvalidArgument(
        "expiry time " + FormatTimestamp(t) + " outside current validity " +
        it->second.ToString());
  }
  // First close incident edges that would outlive the vertex.
  auto close_edges = [&](const std::vector<EdgeId>& edges) -> Status {
    for (EdgeId e : edges) {
      auto ev = edge_validity_.find(e);
      if (ev == edge_validity_.end()) continue;
      if (ev->second.end > t) {
        if (ev->second.start >= t) {
          return Status::Internal(
              "edge valid wholly after vertex expiry; integrity violated");
        }
        ev->second.end = t;
      }
    }
    return Status::OK();
  };
  HYGRAPH_RETURN_IF_ERROR(close_edges(graph_.OutEdges(v)));
  HYGRAPH_RETURN_IF_ERROR(close_edges(graph_.InEdges(v)));
  it->second.end = t;
  return Status::OK();
}

Status TemporalPropertyGraph::ExpireEdge(EdgeId e, Timestamp t) {
  auto it = edge_validity_.find(e);
  if (it == edge_validity_.end()) {
    return Status::NotFound("no edge with id " + std::to_string(e));
  }
  if (!it->second.Contains(t)) {
    return Status::InvalidArgument(
        "expiry time " + FormatTimestamp(t) + " outside current validity " +
        it->second.ToString());
  }
  it->second.end = t;
  return Status::OK();
}

Result<Interval> TemporalPropertyGraph::VertexValidity(VertexId v) const {
  auto it = vertex_validity_.find(v);
  if (it == vertex_validity_.end()) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  return it->second;
}

Result<Interval> TemporalPropertyGraph::EdgeValidity(EdgeId e) const {
  auto it = edge_validity_.find(e);
  if (it == edge_validity_.end()) {
    return Status::NotFound("no edge with id " + std::to_string(e));
  }
  return it->second;
}

bool TemporalPropertyGraph::VertexValidAt(VertexId v, Timestamp t) const {
  auto it = vertex_validity_.find(v);
  return it != vertex_validity_.end() && it->second.Contains(t);
}

bool TemporalPropertyGraph::EdgeValidAt(EdgeId e, Timestamp t) const {
  auto it = edge_validity_.find(e);
  return it != edge_validity_.end() && it->second.Contains(t);
}

std::vector<VertexId> TemporalPropertyGraph::VerticesAt(Timestamp t) const {
  std::vector<VertexId> out;
  for (VertexId v : graph_.VertexIds()) {
    if (VertexValidAt(v, t)) out.push_back(v);
  }
  return out;
}

std::vector<EdgeId> TemporalPropertyGraph::EdgesAt(Timestamp t) const {
  std::vector<EdgeId> out;
  for (EdgeId e : graph_.EdgeIds()) {
    if (EdgeValidAt(e, t)) out.push_back(e);
  }
  return out;
}

size_t TemporalPropertyGraph::DegreeAt(VertexId v, Timestamp t) const {
  if (!VertexValidAt(v, t)) return 0;
  size_t degree = 0;
  for (EdgeId e : graph_.OutEdges(v)) {
    if (EdgeValidAt(e, t)) ++degree;
  }
  for (EdgeId e : graph_.InEdges(v)) {
    if (EdgeValidAt(e, t)) ++degree;
  }
  return degree;
}

std::vector<Timestamp> TemporalPropertyGraph::EventTimestamps() const {
  std::vector<Timestamp> times;
  auto add = [&](const Interval& interval) {
    if (interval.start != kMinTimestamp) times.push_back(interval.start);
    if (interval.end != kMaxTimestamp) times.push_back(interval.end);
  };
  for (const auto& [_, interval] : vertex_validity_) add(interval);
  for (const auto& [_, interval] : edge_validity_) add(interval);
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

Status TemporalPropertyGraph::ValidateIntegrity() const {
  for (EdgeId e : graph_.EdgeIds()) {
    auto ev = EdgeValidity(e);
    if (!ev.ok()) {
      return Status::Corruption("edge " + std::to_string(e) +
                                " has no validity interval");
    }
    const Edge& edge = **graph_.GetEdge(e);
    auto sv = VertexValidity(edge.src);
    auto dv = VertexValidity(edge.dst);
    if (!sv.ok() || !dv.ok()) {
      return Status::Corruption("edge " + std::to_string(e) +
                                " endpoint lacks validity");
    }
    if (!sv->ContainsInterval(*ev) || !dv->ContainsInterval(*ev)) {
      return Status::Corruption(
          "edge " + std::to_string(e) +
          " validity exceeds an endpoint's validity (temporal integrity)");
    }
  }
  for (VertexId v : graph_.VertexIds()) {
    if (!vertex_validity_.count(v)) {
      return Status::Corruption("vertex " + std::to_string(v) +
                                " has no validity interval");
    }
  }
  return Status::OK();
}

}  // namespace hygraph::temporal
