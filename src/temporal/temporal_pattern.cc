#include "temporal/temporal_pattern.h"

#include <algorithm>

namespace hygraph::temporal {

Result<std::vector<TemporalMatch>> MatchTemporalPattern(
    const TemporalPropertyGraph& tpg, const TemporalPattern& pattern,
    const graph::MatchOptions& options) {
  if (!pattern.edge_windows.empty() &&
      pattern.edge_windows.size() != pattern.structure.edges.size()) {
    return Status::InvalidArgument(
        "edge_windows must be empty or parallel to structure.edges");
  }
  // Structural candidates first (temporal filters are cheap afterwards).
  // Matching runs unlimited and the limit is applied post-filter, since a
  // structural match may fail the temporal constraints.
  graph::MatchOptions structural = options;
  structural.limit = 0;
  auto candidates =
      graph::MatchPattern(tpg.graph(), pattern.structure, structural);
  if (!candidates.ok()) return candidates.status();

  std::vector<TemporalMatch> out;
  for (auto& match : *candidates) {
    bool keep = true;
    Interval joint = Interval::All();
    std::vector<Timestamp> starts;
    starts.reserve(match.edges.size());
    for (size_t i = 0; i < match.edges.size() && keep; ++i) {
      auto validity = tpg.EdgeValidity(match.edges[i]);
      if (!validity.ok()) {
        keep = false;
        break;
      }
      if (!pattern.edge_windows.empty() &&
          !validity->Overlaps(pattern.edge_windows[i])) {
        keep = false;
        break;
      }
      joint = joint.Intersect(*validity);
      starts.push_back(validity->start);
    }
    if (!keep) continue;
    for (const auto& [var, v] : match.vertices) {
      auto validity = tpg.VertexValidity(v);
      if (!validity.ok()) {
        keep = false;
        break;
      }
      joint = joint.Intersect(*validity);
    }
    if (!keep) continue;
    if (pattern.max_edge_span > 0 && starts.size() > 1) {
      const auto [lo, hi] = std::minmax_element(starts.begin(), starts.end());
      if (*hi - *lo > pattern.max_edge_span) continue;
    }
    if (pattern.require_monotone_edges &&
        !std::is_sorted(starts.begin(), starts.end())) {
      continue;
    }
    out.push_back(TemporalMatch{std::move(match), joint});
    if (options.limit != 0 && out.size() >= options.limit) break;
  }
  return out;
}

}  // namespace hygraph::temporal
