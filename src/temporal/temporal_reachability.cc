#include "temporal/temporal_reachability.h"

#include <algorithm>
#include <queue>

namespace hygraph::temporal {

namespace {

struct State {
  Timestamp arrival;
  graph::VertexId vertex;
  size_t hops;
  bool operator>(const State& other) const {
    return arrival > other.arrival;
  }
};

struct SearchOutput {
  std::unordered_map<graph::VertexId, Timestamp> arrival;
  std::unordered_map<graph::VertexId, size_t> hops;
  std::unordered_map<graph::VertexId,
                     std::pair<graph::VertexId, graph::EdgeId>>
      parent;
  std::unordered_map<graph::VertexId, Timestamp> traversal_time;
};

Result<SearchOutput> Run(const TemporalPropertyGraph& tpg,
                         graph::VertexId source,
                         const TemporalPathOptions& options) {
  if (!tpg.graph().HasVertex(source)) {
    return Status::NotFound("no vertex with id " + std::to_string(source));
  }
  if (options.window.empty()) {
    return Status::InvalidArgument("window is empty");
  }
  SearchOutput out;
  // Dijkstra-style label correcting on earliest arrival: arrival times only
  // improve, and edges can be traversed at max(arrival + dwell,
  // validity.start) when that instant is inside validity ∩ window.
  std::priority_queue<State, std::vector<State>, std::greater<State>> queue;
  out.arrival[source] = options.window.start;
  out.hops[source] = 0;
  queue.push(State{options.window.start, source, 0});
  while (!queue.empty()) {
    const State top = queue.top();
    queue.pop();
    auto best = out.arrival.find(top.vertex);
    if (best != out.arrival.end() && top.arrival > best->second) {
      continue;  // stale
    }
    for (graph::EdgeId eid : tpg.graph().OutEdges(top.vertex)) {
      const graph::Edge& edge = **tpg.graph().GetEdge(eid);
      if (!options.edge_label.empty() && edge.label != options.edge_label) {
        continue;
      }
      auto validity = tpg.EdgeValidity(eid);
      if (!validity.ok()) continue;
      const Interval usable = validity->Intersect(options.window);
      if (usable.empty()) continue;
      // Earliest instant this edge can be taken: dwell applies between
      // consecutive hops, not before the first departure.
      Timestamp depart = top.arrival;
      if (top.hops > 0) depart += options.min_dwell;
      const Timestamp traverse = std::max(depart, usable.start);
      if (!usable.Contains(traverse)) continue;
      auto existing = out.arrival.find(edge.dst);
      if (existing == out.arrival.end() || traverse < existing->second) {
        out.arrival[edge.dst] = traverse;
        out.hops[edge.dst] = top.hops + 1;
        out.parent[edge.dst] = {top.vertex, eid};
        out.traversal_time[edge.dst] = traverse;
        queue.push(State{traverse, edge.dst, top.hops + 1});
      }
    }
  }
  return out;
}

}  // namespace

Result<std::vector<EarliestArrival>> EarliestArrivalTimes(
    const TemporalPropertyGraph& tpg, graph::VertexId source,
    const TemporalPathOptions& options) {
  auto search = Run(tpg, source, options);
  if (!search.ok()) return search.status();
  std::vector<EarliestArrival> out;
  out.reserve(search->arrival.size());
  for (const auto& [v, t] : search->arrival) {
    out.push_back(EarliestArrival{v, t, search->hops[v]});
  }
  std::sort(out.begin(), out.end(),
            [](const EarliestArrival& a, const EarliestArrival& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.vertex < b.vertex;
            });
  return out;
}

Result<bool> IsTemporallyReachable(const TemporalPropertyGraph& tpg,
                                   graph::VertexId source,
                                   graph::VertexId target,
                                   const TemporalPathOptions& options) {
  if (!tpg.graph().HasVertex(target)) {
    return Status::NotFound("no vertex with id " + std::to_string(target));
  }
  auto search = Run(tpg, source, options);
  if (!search.ok()) return search.status();
  return search->arrival.count(target) > 0;
}

Result<TemporalPath> EarliestArrivalPath(const TemporalPropertyGraph& tpg,
                                         graph::VertexId source,
                                         graph::VertexId target,
                                         const TemporalPathOptions& options) {
  if (!tpg.graph().HasVertex(target)) {
    return Status::NotFound("no vertex with id " + std::to_string(target));
  }
  auto search = Run(tpg, source, options);
  if (!search.ok()) return search.status();
  if (!search->arrival.count(target)) {
    return Status::NotFound("no time-respecting path from " +
                            std::to_string(source) + " to " +
                            std::to_string(target));
  }
  TemporalPath path;
  path.arrival = search->arrival[target];
  graph::VertexId cur = target;
  while (cur != source) {
    auto parent = search->parent.find(cur);
    if (parent == search->parent.end()) break;  // reached the source
    path.vertices.push_back(cur);
    path.edges.push_back(parent->second.second);
    path.traversal_times.push_back(search->traversal_time[cur]);
    cur = parent->second.first;
  }
  path.vertices.push_back(source);
  std::reverse(path.vertices.begin(), path.vertices.end());
  std::reverse(path.edges.begin(), path.edges.end());
  std::reverse(path.traversal_times.begin(), path.traversal_times.end());
  return path;
}

}  // namespace hygraph::temporal
