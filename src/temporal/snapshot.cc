#include "temporal/snapshot.h"

#include <algorithm>

namespace hygraph::temporal {

Snapshot TakeSnapshot(const TemporalPropertyGraph& tpg, Timestamp t) {
  Snapshot snap;
  snap.at = t;
  for (VertexId v : tpg.VerticesAt(t)) {
    const Vertex& vertex = **tpg.graph().GetVertex(v);
    const VertexId mapped =
        snap.graph.AddVertex(vertex.labels, vertex.properties);
    snap.tpg_to_snapshot[v] = mapped;
    snap.snapshot_to_tpg[mapped] = v;
  }
  for (EdgeId e : tpg.EdgesAt(t)) {
    const Edge& edge = **tpg.graph().GetEdge(e);
    auto src = snap.tpg_to_snapshot.find(edge.src);
    auto dst = snap.tpg_to_snapshot.find(edge.dst);
    if (src == snap.tpg_to_snapshot.end() ||
        dst == snap.tpg_to_snapshot.end()) {
      continue;  // endpoint invalid at t; integrity normally prevents this
    }
    HYGRAPH_IGNORE_RESULT(snap.graph.AddEdge(
        src->second, dst->second, edge.label, edge.properties));
  }
  return snap;
}

SnapshotDiff DiffSnapshots(const TemporalPropertyGraph& tpg, Timestamp t1,
                           Timestamp t2) {
  SnapshotDiff diff;
  for (VertexId v : tpg.graph().VertexIds()) {
    const bool before = tpg.VertexValidAt(v, t1);
    const bool after = tpg.VertexValidAt(v, t2);
    if (!before && after) diff.added_vertices.push_back(v);
    if (before && !after) diff.removed_vertices.push_back(v);
  }
  for (EdgeId e : tpg.graph().EdgeIds()) {
    const bool before = tpg.EdgeValidAt(e, t1);
    const bool after = tpg.EdgeValidAt(e, t2);
    if (!before && after) diff.added_edges.push_back(e);
    if (before && !after) diff.removed_edges.push_back(e);
  }
  return diff;
}

}  // namespace hygraph::temporal
