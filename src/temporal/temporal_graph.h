#ifndef HYGRAPH_TEMPORAL_TEMPORAL_GRAPH_H_
#define HYGRAPH_TEMPORAL_TEMPORAL_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "graph/property_graph.h"

namespace hygraph::temporal {

using graph::Edge;
using graph::EdgeId;
using graph::PropertyGraph;
using graph::PropertyMap;
using graph::Vertex;
using graph::VertexId;

/// A temporal property graph (TPG [65]): an LPG where every vertex and edge
/// carries a validity interval ρ(o) = [t_start, t_end) with t_end
/// initialized to max(T) ("currently valid"). The structural part is an
/// embedded PropertyGraph; this class layers validity bookkeeping and
/// temporal-integrity checks (R2) on top:
///
///   * an edge's validity must be contained in the validity of both of its
///     endpoints (an edge cannot outlive its vertices);
///   * shrinking a vertex's validity is rejected while incident edges would
///     stick out of the new interval.
class TemporalPropertyGraph {
 public:
  TemporalPropertyGraph() = default;

  /// Adds a vertex valid over `validity`.
  Result<VertexId> AddVertex(std::vector<std::string> labels,
                             PropertyMap properties, Interval validity);

  /// Adds an edge valid over `validity`; fails unless the interval is
  /// contained in both endpoints' validity.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string label,
                         PropertyMap properties, Interval validity);

  /// Ends a vertex's validity at `t` (t must lie inside the current
  /// interval); incident edges still valid at `t` are ended too, keeping
  /// temporal integrity.
  Status ExpireVertex(VertexId v, Timestamp t);

  /// Ends an edge's validity at `t`.
  Status ExpireEdge(EdgeId e, Timestamp t);

  Result<Interval> VertexValidity(VertexId v) const;
  Result<Interval> EdgeValidity(EdgeId e) const;

  bool VertexValidAt(VertexId v, Timestamp t) const;
  bool EdgeValidAt(EdgeId e, Timestamp t) const;

  /// Live vertex/edge ids valid at instant `t`, increasing order.
  std::vector<VertexId> VerticesAt(Timestamp t) const;
  std::vector<EdgeId> EdgesAt(Timestamp t) const;

  /// Degree of v counting only edges valid at `t`.
  size_t DegreeAt(VertexId v, Timestamp t) const;

  /// Every distinct timestamp where the graph's structure changes (validity
  /// starts and finite ends), sorted. These are the natural sampling points
  /// for metric evolution.
  std::vector<Timestamp> EventTimestamps() const;

  /// Checks all temporal-integrity invariants from scratch; OK when every
  /// edge's validity is contained in its endpoints' validity. Mutators keep
  /// this invariant, so a failure indicates direct mutation of graph().
  Status ValidateIntegrity() const;

  /// The structural graph (labels, properties, adjacency). Mutating it
  /// directly bypasses validity bookkeeping — use the TPG mutators.
  const PropertyGraph& graph() const { return graph_; }
  PropertyGraph* mutable_graph() { return &graph_; }

  size_t VertexCount() const { return graph_.VertexCount(); }
  size_t EdgeCount() const { return graph_.EdgeCount(); }

 private:
  PropertyGraph graph_;
  std::unordered_map<VertexId, Interval> vertex_validity_;
  std::unordered_map<EdgeId, Interval> edge_validity_;
};

}  // namespace hygraph::temporal

#endif  // HYGRAPH_TEMPORAL_TEMPORAL_GRAPH_H_
