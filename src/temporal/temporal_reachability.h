#ifndef HYGRAPH_TEMPORAL_TEMPORAL_REACHABILITY_H_
#define HYGRAPH_TEMPORAL_TEMPORAL_REACHABILITY_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "temporal/temporal_graph.h"

namespace hygraph::temporal {

/// Time-respecting path problems on a TPG ("Path Problems in Temporal
/// Graphs" [87], cited by the paper's Figure 3 as a TPG operation).
///
/// A temporal path is a sequence of edges e_1, ..., e_k such that each
/// consecutive pair can be traversed in order: the traversal instant of
/// e_{i+1} is not before the traversal instant of e_i plus a per-hop
/// dwell time. An edge can be traversed at any instant in its validity
/// interval.

struct TemporalPathOptions {
  /// Only consider traversal instants inside this window.
  Interval window = Interval::All();
  /// Minimum time spent at a vertex between consecutive hops (ms).
  Duration min_dwell = 0;
  /// Restrict to edges with this label (empty = all).
  std::string edge_label;
};

/// One reached vertex with its earliest arrival instant.
struct EarliestArrival {
  graph::VertexId vertex = graph::kInvalidVertexId;
  Timestamp arrival = kMaxTimestamp;
  size_t hops = 0;
};

/// Computes earliest-arrival times from `source` (departing no earlier than
/// options.window.start) to every temporally reachable vertex, following
/// edges forward (src -> dst). The source arrives at window.start with 0
/// hops. Runs a label-correcting search over (vertex, arrival) states.
Result<std::vector<EarliestArrival>> EarliestArrivalTimes(
    const TemporalPropertyGraph& tpg, graph::VertexId source,
    const TemporalPathOptions& options = {});

/// True when `target` is reachable from `source` by a time-respecting path
/// within the window.
Result<bool> IsTemporallyReachable(const TemporalPropertyGraph& tpg,
                                   graph::VertexId source,
                                   graph::VertexId target,
                                   const TemporalPathOptions& options = {});

/// The actual earliest-arrival path (vertices and edges), or NotFound.
struct TemporalPath {
  std::vector<graph::VertexId> vertices;  ///< source ... target
  std::vector<graph::EdgeId> edges;
  std::vector<Timestamp> traversal_times;  ///< instant each edge was taken
  Timestamp arrival = kMaxTimestamp;
};
Result<TemporalPath> EarliestArrivalPath(
    const TemporalPropertyGraph& tpg, graph::VertexId source,
    graph::VertexId target, const TemporalPathOptions& options = {});

}  // namespace hygraph::temporal

#endif  // HYGRAPH_TEMPORAL_TEMPORAL_REACHABILITY_H_
