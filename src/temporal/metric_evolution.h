#ifndef HYGRAPH_TEMPORAL_METRIC_EVOLUTION_H_
#define HYGRAPH_TEMPORAL_METRIC_EVOLUTION_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "temporal/temporal_graph.h"
#include "ts/series.h"

namespace hygraph::temporal {

/// The paper's *metricEvolution* operator [63]: evaluates a graph metric at
/// a sequence of instants and returns the evolution as time series — the
/// canonical HyGraphTo<TS> transformation (arrow 7 in Figure 3) that turns
/// structure into series, which can then be stored back as time-series
/// properties of the corresponding vertices.

/// Sampling instants: explicit, or derived from the TPG's own structural
/// event timestamps.
std::vector<Timestamp> SampleTimes(const TemporalPropertyGraph& tpg,
                                   size_t max_points);

/// Degree-over-time for one vertex, evaluated at `times`.
Result<ts::Series> DegreeEvolution(const TemporalPropertyGraph& tpg,
                                   VertexId v,
                                   const std::vector<Timestamp>& times);

/// Degree-over-time for every vertex of the TPG.
Result<std::unordered_map<VertexId, ts::Series>> AllDegreeEvolutions(
    const TemporalPropertyGraph& tpg, const std::vector<Timestamp>& times);

/// |V(t)| and |E(t)| over time.
struct GraphSizeEvolution {
  ts::Series vertex_count;
  ts::Series edge_count;
};
Result<GraphSizeEvolution> SizeEvolution(const TemporalPropertyGraph& tpg,
                                         const std::vector<Timestamp>& times);

/// Number of weakly connected components over time (each instant is a
/// snapshot + component count; O(times * (V+E))).
Result<ts::Series> ComponentCountEvolution(
    const TemporalPropertyGraph& tpg, const std::vector<Timestamp>& times);

}  // namespace hygraph::temporal

#endif  // HYGRAPH_TEMPORAL_METRIC_EVOLUTION_H_
