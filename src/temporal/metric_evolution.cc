#include "temporal/metric_evolution.h"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.h"
#include "temporal/snapshot.h"

namespace hygraph::temporal {

std::vector<Timestamp> SampleTimes(const TemporalPropertyGraph& tpg,
                                   size_t max_points) {
  std::vector<Timestamp> events = tpg.EventTimestamps();
  if (max_points == 0 || events.size() <= max_points) return events;
  // Uniformly subsample the event list, always keeping first and last.
  std::vector<Timestamp> out;
  out.reserve(max_points);
  const double stride = static_cast<double>(events.size() - 1) /
                        static_cast<double>(max_points - 1);
  for (size_t i = 0; i < max_points; ++i) {
    out.push_back(events[static_cast<size_t>(i * stride + 0.5)]);
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

Status RequireIncreasing(const std::vector<Timestamp>& times) {
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) {
      return Status::InvalidArgument(
          "sample times must be strictly increasing");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ts::Series> DegreeEvolution(const TemporalPropertyGraph& tpg,
                                   VertexId v,
                                   const std::vector<Timestamp>& times) {
  if (!tpg.graph().HasVertex(v)) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  HYGRAPH_RETURN_IF_ERROR(RequireIncreasing(times));
  ts::Series out("degree_v" + std::to_string(v));
  for (Timestamp t : times) {
    HYGRAPH_RETURN_IF_ERROR(
        out.Append(t, static_cast<double>(tpg.DegreeAt(v, t))));
  }
  return out;
}

Result<std::unordered_map<VertexId, ts::Series>> AllDegreeEvolutions(
    const TemporalPropertyGraph& tpg, const std::vector<Timestamp>& times) {
  HYGRAPH_RETURN_IF_ERROR(RequireIncreasing(times));
  std::unordered_map<VertexId, ts::Series> out;
  for (VertexId v : tpg.graph().VertexIds()) {
    auto series = DegreeEvolution(tpg, v, times);
    if (!series.ok()) return series.status();
    out.emplace(v, std::move(*series));
  }
  return out;
}

Result<GraphSizeEvolution> SizeEvolution(const TemporalPropertyGraph& tpg,
                                         const std::vector<Timestamp>& times) {
  HYGRAPH_RETURN_IF_ERROR(RequireIncreasing(times));
  GraphSizeEvolution evolution;
  evolution.vertex_count.set_name("vertex_count");
  evolution.edge_count.set_name("edge_count");
  for (Timestamp t : times) {
    HYGRAPH_RETURN_IF_ERROR(evolution.vertex_count.Append(
        t, static_cast<double>(tpg.VerticesAt(t).size())));
    HYGRAPH_RETURN_IF_ERROR(evolution.edge_count.Append(
        t, static_cast<double>(tpg.EdgesAt(t).size())));
  }
  return evolution;
}

Result<ts::Series> ComponentCountEvolution(
    const TemporalPropertyGraph& tpg, const std::vector<Timestamp>& times) {
  HYGRAPH_RETURN_IF_ERROR(RequireIncreasing(times));
  ts::Series out("component_count");
  for (Timestamp t : times) {
    const Snapshot snap = TakeSnapshot(tpg, t);
    const auto components = graph::ConnectedComponents(snap.graph);
    std::unordered_set<VertexId> roots;
    for (const auto& [_, root] : components) roots.insert(root);
    HYGRAPH_RETURN_IF_ERROR(
        out.Append(t, static_cast<double>(roots.size())));
  }
  return out;
}

}  // namespace hygraph::temporal
