#ifndef HYGRAPH_TEMPORAL_TEMPORAL_PATTERN_H_
#define HYGRAPH_TEMPORAL_TEMPORAL_PATTERN_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "graph/pattern.h"
#include "temporal/temporal_graph.h"

namespace hygraph::temporal {

/// Temporal pattern matching over a TPG ("temporal pattern matching [87]"):
/// a structural pattern plus time constraints on the matched edges'
/// validity intervals.
struct TemporalPattern {
  /// The structural pattern (variables, labels, property predicates).
  graph::Pattern structure;
  /// Per-edge window (parallel to structure.edges; missing entries mean
  /// unconstrained): the matched edge's validity must overlap the window.
  std::vector<Interval> edge_windows;
  /// When > 0: the validity start times of all matched edges must fit in a
  /// window of at most this many milliseconds (the Listing-1 constraint
  /// "all transactions within one hour").
  Duration max_edge_span = 0;
  /// When true, the matched edges' validity start times must be
  /// non-decreasing in pattern-edge order (temporal paths [87]).
  bool require_monotone_edges = false;
};

/// One temporal match: the structural embedding plus the instant range in
/// which every matched element is simultaneously valid (may be empty when
/// only the span constraint was requested).
struct TemporalMatch {
  graph::PatternMatch match;
  Interval validity;  ///< intersection of matched elements' validity
};

/// Enumerates matches of `pattern` whose vertices/edges satisfy all the
/// temporal constraints. Vertices must be valid over the intersection of
/// their incident matched edges' validity.
Result<std::vector<TemporalMatch>> MatchTemporalPattern(
    const TemporalPropertyGraph& tpg, const TemporalPattern& pattern,
    const graph::MatchOptions& options = {});

}  // namespace hygraph::temporal

#endif  // HYGRAPH_TEMPORAL_TEMPORAL_PATTERN_H_
