#ifndef HYGRAPH_TEMPORAL_SNAPSHOT_H_
#define HYGRAPH_TEMPORAL_SNAPSHOT_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "temporal/temporal_graph.h"

namespace hygraph::temporal {

/// A materialized snapshot of a TPG at one instant ("Snapshot [45]" in
/// Table 2): a plain LPG plus the id mapping back to the TPG.
struct Snapshot {
  Timestamp at = 0;
  PropertyGraph graph;
  std::unordered_map<VertexId, VertexId> tpg_to_snapshot;  ///< vertex ids
  std::unordered_map<VertexId, VertexId> snapshot_to_tpg;  ///< vertex ids
};

/// Materializes the graph state valid at instant `t`.
Snapshot TakeSnapshot(const TemporalPropertyGraph& tpg, Timestamp t);

/// Structural difference between two instants of a TPG, in TPG ids.
struct SnapshotDiff {
  std::vector<VertexId> added_vertices;
  std::vector<VertexId> removed_vertices;
  std::vector<EdgeId> added_edges;
  std::vector<EdgeId> removed_edges;

  bool empty() const {
    return added_vertices.empty() && removed_vertices.empty() &&
           added_edges.empty() && removed_edges.empty();
  }
};

/// Elements valid at `t2` but not `t1` (added) and vice versa (removed).
SnapshotDiff DiffSnapshots(const TemporalPropertyGraph& tpg, Timestamp t1,
                           Timestamp t2);

}  // namespace hygraph::temporal

#endif  // HYGRAPH_TEMPORAL_SNAPSHOT_H_
