#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/clock.h"

namespace hygraph {

namespace {

/// Set inside WorkerLoop: a morsel body that fans out again runs its inner
/// morsels inline instead of publishing a nested job (see class comment).
thread_local bool t_is_pool_worker = false;

/// Total parallelism target (caller + helpers): HYGRAPH_THREADS when set
/// and positive, otherwise the hardware thread count. Read once.
size_t TotalParallelismFromEnv() {
  if (const char* env = std::getenv("HYGRAPH_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) {
      return std::min<size_t>(static_cast<size_t>(v), 256);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace

ThreadPool::ThreadPool() {
  MutexLock lock(mu_);
  target_workers_ = TotalParallelismFromEnv() - 1;
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> joinable;
  {
    MutexLock lock(mu_);
    stop_ = true;
    joinable.swap(threads_);
  }
  cv_.notify_all();
  join_cv_.notify_all();
  for (std::thread& t : joinable) t.join();
}

ThreadPool* ThreadPool::Instance() {
  static ThreadPool pool;
  return &pool;
}

size_t ThreadPool::worker_count() const {
  MutexLock lock(mu_);
  return target_workers_;
}

void ThreadPool::SetWorkerCount(size_t workers) {
  MutexLock lock(mu_);
  if (workers <= target_workers_) return;  // grow-only
  target_workers_ = workers;
  if (!threads_.empty()) EnsureWorkersLocked();
}

void ThreadPool::EnsureWorkersLocked() {
  while (threads_.size() < target_workers_) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

size_t ThreadPool::DrainJob(Job& job) {
  size_t mine = 0;
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    if (!job.failed.load(std::memory_order_acquire)) {
      Status s = (*job.body)(i);
      if (!s.ok() &&
          !job.failed.exchange(true, std::memory_order_acq_rel)) {
        // First failure wins; the release increment below publishes the
        // error to the caller's acquire load at the join barrier.
        job.error = std::move(s);
      }
    }
    ++mine;
    job.retired.fetch_add(1, std::memory_order_release);
  }
  return mine;
}

void ThreadPool::WorkerLoop() {
  t_is_pool_worker = true;
  const obs::Clock* clock = obs::SystemClock::Instance();
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mu_);
      while (!stop_ && job == nullptr) {
        for (const std::shared_ptr<Job>& candidate : jobs_) {
          if (candidate->next.load(std::memory_order_relaxed) >=
              candidate->n) {
            continue;  // exhausted; the publishing caller erases it
          }
          // A slot caps how many helpers attach to one job
          // (ParallelFor's max_parallelism); racing decrements below zero
          // just put the slot back.
          if (candidate->helper_slots.fetch_sub(
                  1, std::memory_order_relaxed) > 0) {
            job = candidate;
            break;
          }
          candidate->helper_slots.fetch_add(1, std::memory_order_relaxed);
        }
        if (job == nullptr) cv_.wait(mu_);
      }
      if (job == nullptr) return;  // stop_ set with nothing to drain
    }
    const uint64_t start = clock->NowNanos();
    const size_t ran = DrainJob(*job);
    if (ran > 0) {
      const uint64_t busy = clock->NowNanos() - start;
      if (job->stats.morsels_stolen != nullptr) {
        job->stats.morsels_stolen->Add(ran);
      }
      if (job->stats.worker_busy_nanos != nullptr) {
        job->stats.worker_busy_nanos->Add(busy);
      }
    }
    if (job->retired.load(std::memory_order_acquire) >= job->n) {
      // Last retiree wakes the publishing caller; taking the queue mutex
      // first makes the wakeup race-free against the caller's wait check.
      MutexLock lock(mu_);
      join_cv_.notify_all();
    }
  }
}

Status ThreadPool::ParallelFor(size_t morsels, size_t max_parallelism,
                               const std::function<Status(size_t)>& body,
                               const ParallelForStats& stats) {
  if (morsels == 0) return Status::OK();
  if (stats.morsels_dispatched != nullptr) {
    stats.morsels_dispatched->Add(morsels);
  }
  size_t helpers = worker_count();
  if (max_parallelism > 0) {
    helpers = std::min(helpers, max_parallelism - 1);
  }
  helpers = std::min(helpers, morsels - 1);
  if (helpers == 0 || t_is_pool_worker) {
    for (size_t i = 0; i < morsels; ++i) {
      HYGRAPH_RETURN_IF_ERROR(body(i));
    }
    return Status::OK();
  }

  auto job = std::make_shared<Job>();
  job->n = morsels;
  job->body = &body;
  job->stats = stats;
  job->helper_slots.store(static_cast<int>(helpers),
                          std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    EnsureWorkersLocked();
    jobs_.push_back(job);
  }
  cv_.notify_all();
  parallel_jobs_.fetch_add(1, std::memory_order_relaxed);

  DrainJob(*job);  // the caller participates

  {
    MutexLock lock(mu_);
    while (job->retired.load(std::memory_order_acquire) < job->n) {
      join_cv_.wait(mu_);
    }
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      if (*it == job) {
        jobs_.erase(it);
        break;
      }
    }
  }
  if (job->failed.load(std::memory_order_acquire)) return job->error;
  return Status::OK();
}

}  // namespace hygraph
