#include "common/context.h"

#include <string>
#include <utility>

#include "common/governor.h"

namespace hygraph {

namespace {
thread_local QueryContext* g_current_context = nullptr;
}  // namespace

QueryContext::~QueryContext() {
  if (governor_ != nullptr && reserved_bytes_ > 0) {
    governor_->Release(reserved_bytes_);
  }
}

void QueryContext::SetTimeout(uint64_t timeout_ms,
                              std::function<uint64_t()> now_nanos) {
  if (timeout_ms == 0 || !now_nanos) return;
  now_nanos_ = std::move(now_nanos);
  deadline_nanos_ = now_nanos_() + timeout_ms * 1'000'000ull;
}

void QueryContext::SetDeadline(uint64_t deadline_nanos,
                               std::function<uint64_t()> now_nanos) {
  if (deadline_nanos == 0 || !now_nanos) return;
  now_nanos_ = std::move(now_nanos);
  deadline_nanos_ = deadline_nanos;
}

Status QueryContext::CheckNow() {
  since_check_ = 0;
  if (cancelled()) {
    return Status::Cancelled("query cancelled after " +
                             std::to_string(charged_) + " units of work");
  }
  if (points_budget_ != 0 && charged_ > points_budget_) {
    return Status::ResourceExhausted(
        "points budget exhausted: " + std::to_string(charged_) + " of " +
        std::to_string(points_budget_) + " units");
  }
  if (deadline_nanos_ != 0 && now_nanos_() >= deadline_nanos_) {
    return Status::DeadlineExceeded("query deadline exceeded after " +
                                    std::to_string(charged_) +
                                    " units of work");
  }
  return Status::OK();
}

Status QueryContext::CheckCrossThread() const {
  if (cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline_nanos_ != 0 && now_nanos_() >= deadline_nanos_) {
    return Status::DeadlineExceeded("query deadline exceeded");
  }
  return Status::OK();
}

Status QueryContext::ReserveMemory(uint64_t bytes) {
  if (governor_ == nullptr || bytes == 0) return Status::OK();
  HYGRAPH_RETURN_IF_ERROR(governor_->Reserve(bytes));
  reserved_bytes_ += bytes;
  return Status::OK();
}

void QueryContext::ReleaseMemory(uint64_t bytes) {
  if (governor_ == nullptr || bytes == 0) return;
  if (bytes > reserved_bytes_) bytes = reserved_bytes_;
  governor_->Release(bytes);
  reserved_bytes_ -= bytes;
}

void QueryContext::AttachGovernor(ResourceGovernor* governor) {
  if (governor_ != nullptr && reserved_bytes_ > 0) {
    governor_->Release(reserved_bytes_);
    reserved_bytes_ = 0;
  }
  governor_ = governor;
}

QueryContext* QueryContext::Current() { return g_current_context; }

QueryContext::Scope::Scope(QueryContext* ctx) : previous_(g_current_context) {
  g_current_context = ctx;
}

QueryContext::Scope::~Scope() { g_current_context = previous_; }

}  // namespace hygraph
