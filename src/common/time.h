#ifndef HYGRAPH_COMMON_TIME_H_
#define HYGRAPH_COMMON_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace hygraph {

/// Milliseconds since the Unix epoch. All temporal data in HyGraph — series
/// sample times, entity validity intervals, snapshot times — uses this axis.
using Timestamp = int64_t;

/// A span of time in milliseconds.
using Duration = int64_t;

/// Sentinel for "the end of time" — used as the open end of validity
/// intervals (the paper initializes t_end to max(T)).
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();
/// Sentinel for "the beginning of time".
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();

inline constexpr Duration kMillisecond = 1;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

/// A half-open time interval [start, end). The paper's validity function
/// ρ : (V_pg ∪ E_pg ∪ S) → T × T returns such intervals; kMaxTimestamp as
/// `end` means "currently valid".
struct Interval {
  Timestamp start = kMinTimestamp;
  Timestamp end = kMaxTimestamp;

  /// The interval covering the whole time axis.
  static Interval All() { return Interval{kMinTimestamp, kMaxTimestamp}; }
  /// The degenerate interval containing a single instant.
  static Interval At(Timestamp t) { return Interval{t, t + 1}; }

  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool ContainsInterval(const Interval& other) const {
    return other.start >= start && other.end <= end;
  }
  bool Overlaps(const Interval& other) const {
    return start < other.end && other.start < end;
  }
  /// Intersection; empty() is true if the two intervals are disjoint.
  Interval Intersect(const Interval& other) const;

  bool empty() const { return end <= start; }
  /// Length in milliseconds; 0 for empty intervals. Saturates instead of
  /// overflowing for the All() interval.
  Duration length() const;

  bool operator==(const Interval& other) const = default;

  /// Renders as "[start, end)" with sentinels shown as -inf / +inf.
  std::string ToString() const;
};

/// Formats a timestamp as an ISO-8601-like UTC string
/// ("2024-03-01T12:30:05.250"); sentinels render as "-inf"/"+inf".
std::string FormatTimestamp(Timestamp t);

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_TIME_H_
