#ifndef HYGRAPH_COMMON_RNG_H_
#define HYGRAPH_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace hygraph {

/// Deterministic, seedable pseudo-random generator (splitmix64 core).
/// All workload generators and randomized algorithms in the library use this
/// so that tests and benchmarks are exactly reproducible across runs and
/// platforms (std::mt19937 distributions are not portable across stdlibs).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double NextDoubleInRange(double lo, double hi) {
    return lo + NextDouble() * (hi - lo);
  }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Poisson-distributed count (Knuth's method; fine for small means).
  int NextPoisson(double mean) {
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }

  /// Zipf-distributed rank in [0, n) with skew s (rejection-free inverse CDF
  /// over a precomputed-free harmonic approximation; adequate for workload
  /// generation).
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t state_;
};

inline uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Inverse-transform sampling against the generalized harmonic CDF,
  // approximated with the integral of x^-s. Exact enough for generating
  // skewed access patterns.
  if (n <= 1) return 0;
  const double u = NextDouble();
  if (s == 1.0) {
    const double h = std::log(static_cast<double>(n));
    const double x = std::exp(u * h);
    uint64_t r = static_cast<uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
  }
  const double one_minus_s = 1.0 - s;
  const double h = (std::pow(static_cast<double>(n), one_minus_s) - 1.0);
  const double x = std::pow(u * h + 1.0, 1.0 / one_minus_s);
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_RNG_H_
