#include "common/time.h"

#include <algorithm>
#include <cstdio>
#include <ctime>

namespace hygraph {

Interval Interval::Intersect(const Interval& other) const {
  return Interval{std::max(start, other.start), std::min(end, other.end)};
}

Duration Interval::length() const {
  if (empty()) return 0;
  // Avoid signed overflow when one bound is a sentinel.
  if (start <= kMinTimestamp / 2 || end >= kMaxTimestamp / 2) {
    return kMaxTimestamp;
  }
  return end - start;
}

std::string Interval::ToString() const {
  return "[" + FormatTimestamp(start) + ", " + FormatTimestamp(end) + ")";
}

std::string FormatTimestamp(Timestamp t) {
  if (t == kMaxTimestamp) return "+inf";
  if (t == kMinTimestamp) return "-inf";
  const std::time_t secs = static_cast<std::time_t>(t / 1000);
  const int millis = static_cast<int>(((t % 1000) + 1000) % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

}  // namespace hygraph
