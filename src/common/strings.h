#ifndef HYGRAPH_COMMON_STRINGS_H_
#define HYGRAPH_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace hygraph {

/// Splits on a single-character delimiter; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_STRINGS_H_
