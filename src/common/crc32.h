#ifndef HYGRAPH_COMMON_CRC32_H_
#define HYGRAPH_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hygraph {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3`
/// convention): feed chunks through Crc32Update starting from kCrc32Init and
/// finish with Crc32Finalize. Used by the WAL record framing and the
/// serialized-snapshot trailer to detect torn writes and bit rot.
inline constexpr uint32_t kCrc32Init = 0xffffffffu;

/// Folds `data` into a running CRC state.
uint32_t Crc32Update(uint32_t state, const void* data, size_t size);

/// Final xor; turns a running state into the conventional CRC value.
inline uint32_t Crc32Finalize(uint32_t state) { return state ^ 0xffffffffu; }

/// One-shot convenience: CRC-32 of a contiguous buffer.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data.data(), data.size()));
}

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_CRC32_H_
