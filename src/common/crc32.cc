#include "common/crc32.h"

namespace hygraph {

namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, built once at first
// use (byte-at-a-time; the WAL and snapshot paths are I/O-bound, so the
// simple table variant is plenty).
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t size) {
  static const Crc32Table table;
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    state = (state >> 8) ^ table.entries[(state ^ bytes[i]) & 0xffu];
  }
  return state;
}

}  // namespace hygraph
