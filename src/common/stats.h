#ifndef HYGRAPH_COMMON_STATS_H_
#define HYGRAPH_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace hygraph {

/// Streaming mean/variance accumulator (Welford's algorithm). Used by both
/// the TS aggregation kernels and the benchmark harness (Table 1 reports
/// mean response time and coefficient of variation).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation in percent: 100 * stddev / mean.
  /// 0 when fewer than two samples or the mean is exactly 0.
  double cv_percent() const;
  /// Smallest / largest value added so far. With no samples there is no
  /// extremum; both return 0 (never a stale or indeterminate value), and
  /// after exactly one Add both equal that sample.
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);
/// Sample standard deviation (n-1); 0 when fewer than two elements.
double StdDev(const std::vector<double>& xs);
/// Linear-interpolated quantile; q is clamped to [0,1]. Returns 0 for an
/// empty vector and the sole element for a 1-element vector (any q).
double Quantile(std::vector<double> xs, double q);
/// Median (50th percentile). Same edge cases as Quantile.
double Median(std::vector<double> xs);
/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_STATS_H_
