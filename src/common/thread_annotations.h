#ifndef HYGRAPH_COMMON_THREAD_ANNOTATIONS_H_
#define HYGRAPH_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis (capability analysis) macros, following the
/// attribute vocabulary of https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
/// and the naming style of abseil's thread_annotations.h.
///
/// Under Clang these expand to the `capability` attribute family, which lets
/// `-Wthread-safety` prove at compile time that every access to a
/// `HYGRAPH_GUARDED_BY(mu)` field happens with `mu` held (shared for reads,
/// exclusive for writes) and that functions declared `HYGRAPH_REQUIRES(mu)`
/// are only called with the lock held. Under any other compiler they expand
/// to nothing, so annotated code builds everywhere; the analysis is enforced
/// by the HYGRAPH_THREAD_SAFETY CMake option (Clang + -Wthread-safety
/// -Werror) and by the thread-safety CI job.
///
/// What the analysis cannot see — cross-translation-unit lock *ordering* —
/// is covered at runtime by the LockRank checker in common/sync.h.
///
/// This header is deliberately dependency-free (macros only) so it can be
/// included from every layer, including src/obs/ which sits beneath the
/// sync layer.

#if defined(__clang__)
#define HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" is the conventional
/// capability kind and shapes the diagnostic text).
#define HYGRAPH_CAPABILITY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (std::lock_guard-style scoped locks).
#define HYGRAPH_SCOPED_CAPABILITY \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a data member may only be accessed while holding the given
/// capability: shared for reads, exclusive for writes.
#define HYGRAPH_GUARDED_BY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Like GUARDED_BY, but guards the data a pointer/smart pointer points to
/// rather than the pointer itself.
#define HYGRAPH_PT_GUARDED_BY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Function attribute: the caller must hold the given capabilities
/// exclusively (…_SHARED: at least shared).
#define HYGRAPH_REQUIRES(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define HYGRAPH_REQUIRES_SHARED(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (exclusively / shared) and
/// holds it on return. On a SCOPED_CAPABILITY constructor the argument names
/// the lock the scope manages.
#define HYGRAPH_ACQUIRE(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define HYGRAPH_ACQUIRE_SHARED(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capability. A SCOPED_CAPABILITY
/// destructor uses the no-argument form, which releases in whatever mode the
/// scope acquired.
#define HYGRAPH_RELEASE(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define HYGRAPH_RELEASE_SHARED(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attribute: attempts the acquisition and returns `ret` on
/// success (first macro argument), e.g. HYGRAPH_TRY_ACQUIRE(true).
#define HYGRAPH_TRY_ACQUIRE(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define HYGRAPH_TRY_ACQUIRE_SHARED(...)                 \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(                \
      try_acquire_shared_capability(__VA_ARGS__))

/// Function attribute: the caller must NOT hold the given capabilities
/// (deadlock guard for functions that acquire them internally).
#define HYGRAPH_EXCLUDES(...) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability
/// (lets callers write HYGRAPH_GUARDED_BY(obj.mu()) through an accessor).
#define HYGRAPH_RETURN_CAPABILITY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Runtime assertion that the capability is held; teaches the analysis
/// about holds it cannot see (e.g. a lock taken by the caller's caller).
#define HYGRAPH_ASSERT_CAPABILITY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define HYGRAPH_ASSERT_SHARED_CAPABILITY(x) \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Escape hatch: turns the analysis off for one function body. Every use
/// must carry a comment explaining why the unguarded access is safe —
/// the established reasons in this tree are lock-free publication through
/// an atomic flag (double-checked caches), objects provably not yet shared
/// (freshly constructed forks), and quiescent-state test accessors.
#define HYGRAPH_NO_THREAD_SAFETY_ANALYSIS \
  HYGRAPH_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // HYGRAPH_COMMON_THREAD_ANNOTATIONS_H_
