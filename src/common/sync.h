#ifndef HYGRAPH_COMMON_SYNC_H_
#define HYGRAPH_COMMON_SYNC_H_

#include <mutex>
#include <shared_mutex>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace hygraph {

/// Instrumented mutex wrappers — the only way library code takes a lock
/// (scripts/hygraph_lint.py forbids raw std mutexes in src/ outside this
/// header and src/obs/, which sits beneath the sync layer: the registry
/// mutex cannot be instrumented by the registry it guards).
///
/// Every wrapper optionally carries SyncInstruments, raw pointers into a
/// MetricsRegistry resolved once at construction. The uncontended path
/// costs one relaxed counter add on top of the std primitive; only when a
/// try_lock fast path fails does the wrapper read the clock twice to
/// record the wait in the contention histogram. Default-constructed
/// wrappers are uninstrumented and add no overhead at all.
///
/// Lock hierarchy (DESIGN.md §10): DurableStore append mutex → store
/// coarse guard (AllInGraph/Polyglot) → hypertable series-map lock →
/// per-series shard lock → per-chunk aggregate-cache mutex. Acquisitions
/// must follow that order; no method of a lower layer calls back up.

/// Counter set shared by every lock of one store. Null members (the
/// default) disable instrumentation for that event.
struct SyncInstruments {
  obs::Counter* exclusive_acquisitions = nullptr;
  obs::Counter* shared_acquisitions = nullptr;
  obs::Counter* contentions = nullptr;
  obs::Histogram* contention_nanos = nullptr;

  /// Resolves the "concurrency.*" instruments in `registry` (get-or-create;
  /// stores sharing a registry share the counters). Null registry yields
  /// uninstrumented locks.
  static SyncInstruments ForRegistry(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return {};
    SyncInstruments in;
    in.exclusive_acquisitions = registry->counter("concurrency.lock_exclusive");
    in.shared_acquisitions = registry->counter("concurrency.lock_shared");
    in.contentions = registry->counter("concurrency.lock_contentions");
    in.contention_nanos = registry->histogram("concurrency.lock_contention_nanos");
    return in;
  }
};

namespace sync_internal {

/// Fast path: try_lock, count nothing extra. Slow path: count the
/// contention and time the blocking acquire.
template <typename LockFn, typename TryFn>
void AcquireTimed(const SyncInstruments& in, obs::Counter* acquisitions,
                  LockFn&& lock, TryFn&& try_lock) {
  if (acquisitions != nullptr) acquisitions->Increment();
  if (try_lock()) return;
  if (in.contentions != nullptr) in.contentions->Increment();
  if (in.contention_nanos != nullptr) {
    const obs::Clock* clock = obs::SystemClock::Instance();
    const uint64_t start = clock->NowNanos();
    lock();
    in.contention_nanos->Record(clock->NowNanos() - start);
    return;
  }
  lock();
}

}  // namespace sync_internal

/// Instrumented std::mutex. Meets the Lockable named requirement, so
/// std::lock_guard<Mutex> / std::unique_lock<Mutex> work as usual.
class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const SyncInstruments& instruments)
      : in_(instruments) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    sync_internal::AcquireTimed(
        in_, in_.exclusive_acquisitions, [this] { mu_.lock(); },
        [this] { return mu_.try_lock(); });
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (in_.exclusive_acquisitions != nullptr) {
      in_.exclusive_acquisitions->Increment();
    }
    return true;
  }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
  SyncInstruments in_;
};

/// Instrumented std::shared_mutex. Meets SharedLockable, so
/// std::shared_lock<SharedMutex> / std::unique_lock<SharedMutex> work.
class SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const SyncInstruments& instruments)
      : in_(instruments) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    sync_internal::AcquireTimed(
        in_, in_.exclusive_acquisitions, [this] { mu_.lock(); },
        [this] { return mu_.try_lock(); });
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (in_.exclusive_acquisitions != nullptr) {
      in_.exclusive_acquisitions->Increment();
    }
    return true;
  }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    sync_internal::AcquireTimed(
        in_, in_.shared_acquisitions, [this] { mu_.lock_shared(); },
        [this] { return mu_.try_lock_shared(); });
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    if (in_.shared_acquisitions != nullptr) {
      in_.shared_acquisitions->Increment();
    }
    return true;
  }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
  SyncInstruments in_;
};

using MutexLock = std::lock_guard<Mutex>;
using SharedLock = std::shared_lock<SharedMutex>;
using ExclusiveLock = std::unique_lock<SharedMutex>;

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_SYNC_H_
