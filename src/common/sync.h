#ifndef HYGRAPH_COMMON_SYNC_H_
#define HYGRAPH_COMMON_SYNC_H_

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"

namespace hygraph {

/// Instrumented mutex wrappers — the only way library code takes a lock
/// (scripts/hygraph_lint.py forbids raw std mutexes in src/ outside this
/// header and src/obs/, which sits beneath the sync layer: the registry
/// mutex cannot be instrumented by the registry it guards).
///
/// Every wrapper optionally carries SyncInstruments, raw pointers into a
/// MetricsRegistry resolved once at construction. The uncontended path
/// costs one relaxed counter add on top of the std primitive; only when a
/// try_lock fast path fails does the wrapper read the clock twice to
/// record the wait in the contention histogram. Default-constructed
/// wrappers are uninstrumented and add no overhead at all.
///
/// Lock hierarchy (DESIGN.md §10, rank table in §12) — no longer prose:
/// it is MACHINE-CHECKED twice over. (1) Compile time: the wrappers are
/// Clang thread-safety capabilities (common/thread_annotations.h), so
/// under HYGRAPH_THREAD_SAFETY every HYGRAPH_GUARDED_BY field access is
/// proven to hold the right lock. (2) Runtime: every lock carries an
/// optional LockRank from the hierarchy below; debug builds (or any build
/// with HYGRAPH_LOCK_RANK_CHECKS=1) keep a thread-local stack of held
/// ranks and fatally report any acquisition that is not strictly
/// descending the hierarchy, naming both locks. Acquisitions must follow
/// rank order (lower rank value first); no method of a lower layer calls
/// back up while holding its lock.

/// The fixed acquisition order, top of the hierarchy first. Ranks are
/// spaced by 10 so a future layer can slot between existing ones without
/// renumbering. kUnranked locks (the default) opt out of runtime order
/// checking — every named lock in src/ must carry a rank or an explicit
/// NOLINT(hygraph-unranked-lock) (enforced by scripts/hygraph_lint.py).
enum class LockRank : int {
  kUnranked = 0,
  /// HgqlServer connection/session registry (src/server/server.cc). The
  /// server is the top entry layer, so its locks rank above (numerically
  /// below) everything it can call into.
  kServerState = 2,
  /// Group-commit ticket mutex (src/server/group_commit.cc). Never held
  /// across the WAL append or sync itself — the leader releases it before
  /// calling DurableStore::SyncWal() — but parked followers block on it,
  /// so it must sit above kDurableAppend in the hierarchy.
  kServerCommit = 4,
  /// DurableStore append mutex (serializes WAL append + apply).
  kDurableAppend = 10,
  /// DurableStore WAL fsync mutex. SyncWal acquires append_mu_ ->
  /// wal_sync_mu_, then RELEASES append_mu_ and fsyncs holding only this
  /// lock, so mutators keep appending while a group-commit leader waits on
  /// the disk. Rotation sites (checkpoint, WAL rebuild) take it while
  /// holding append_mu_ — the same acquisition order — to drain an
  /// in-flight fsync before closing the old writer.
  kDurableWalSync = 12,
  /// Store coarse guard (AllInGraphStore / PolyglotStore reader-writer
  /// lock over graph + series maps).
  kStoreCoarse = 20,
  /// Hypertable series-map lock (exclusive only in Create).
  kSeriesMap = 30,
  /// Per-series shard lock (one SharedMutex per series).
  kSeriesShard = 40,
  /// Worker-pool queue mutex (common/thread_pool.h). Sits between the shard
  /// lock and the leaf ranks: fan-out happens after every shard lock is
  /// released (morsels run over pinned, immutable chunks), and morsel
  /// bodies may still take the leaf aggregate-cache mutex.
  kThreadPool = 45,
  /// Per-chunk aggregate-cache mutex (double-checked fill).
  kAggCache = 50,
  /// Cold-tier segment/cache state (storage/segment). Acquirable under a
  /// series shard lock (spill writes and lazy pins happen while the shard
  /// is held or while decoding pinned chunks) and under durable.append_mu_
  /// (checkpoint catalog writes); only the env leaf sits below it.
  kColdTier = 55,
  /// FaultInjectionEnv bookkeeping (leaf: taken around fault-state reads
  /// and writes, never while calling back into the engine).
  kEnvState = 60,
};

constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "unranked";
    case LockRank::kServerState:
      return "server.state_mu";
    case LockRank::kServerCommit:
      return "server.commit_mu";
    case LockRank::kDurableAppend:
      return "durable.append_mu";
    case LockRank::kDurableWalSync:
      return "durable.wal_sync_mu";
    case LockRank::kStoreCoarse:
      return "store.coarse_guard";
    case LockRank::kSeriesMap:
      return "hypertable.series_map_mu";
    case LockRank::kSeriesShard:
      return "hypertable.series_shard_mu";
    case LockRank::kThreadPool:
      return "thread_pool.queue_mu";
    case LockRank::kAggCache:
      return "hypertable.agg_cache_mu";
    case LockRank::kColdTier:
      return "segment_store.state_mu";
    case LockRank::kEnvState:
      return "fault_injection_env.state_mu";
  }
  return "unknown";
}

// Runtime lock-rank checking is on in debug builds and whenever the build
// defines HYGRAPH_LOCK_RANK_CHECKS=1 (the HYGRAPH_LOCK_RANK_CHECKS CMake
// option; scripts/tier1.sh runs the full ctest suite with it on). Release
// builds without the option pay nothing.
#if defined(HYGRAPH_LOCK_RANK_CHECKS)
#define HYGRAPH_LOCK_RANK_CHECKS_ENABLED_ HYGRAPH_LOCK_RANK_CHECKS
#elif !defined(NDEBUG)
#define HYGRAPH_LOCK_RANK_CHECKS_ENABLED_ 1
#else
#define HYGRAPH_LOCK_RANK_CHECKS_ENABLED_ 0
#endif

inline constexpr bool kLockRankChecksEnabled =
    HYGRAPH_LOCK_RANK_CHECKS_ENABLED_ != 0;

/// Counter set shared by every lock of one store. Null members (the
/// default) disable instrumentation for that event.
struct SyncInstruments {
  obs::Counter* exclusive_acquisitions = nullptr;
  obs::Counter* shared_acquisitions = nullptr;
  obs::Counter* contentions = nullptr;
  obs::Histogram* contention_nanos = nullptr;
  /// Lock-rank order checks performed (see LockRank); stays 0 in builds
  /// with checking compiled out.
  obs::Counter* rank_checks = nullptr;
  /// Clock for timing contended acquisitions. Null (the default) resolves
  /// to obs::SystemClock at the point of use, so tests can inject an
  /// obs::ManualClock and assert on the contention histogram
  /// deterministically (the raw-clock rule: no direct steady_clock reads).
  const obs::Clock* clock = nullptr;

  /// Resolves the "concurrency.*" instruments in `registry` (get-or-create;
  /// stores sharing a registry share the counters). Null registry yields
  /// uninstrumented locks. `clock` overrides the contention-timing clock
  /// (null = SystemClock).
  static SyncInstruments ForRegistry(obs::MetricsRegistry* registry,
                                     const obs::Clock* clock = nullptr) {
    if (registry == nullptr) return {};
    SyncInstruments in;
    in.exclusive_acquisitions = registry->counter("concurrency.lock_exclusive");
    in.shared_acquisitions = registry->counter("concurrency.lock_shared");
    in.contentions = registry->counter("concurrency.lock_contentions");
    in.contention_nanos = registry->histogram("concurrency.lock_contention_nanos");
    in.rank_checks = registry->counter("concurrency.lock_rank_checks");
    in.clock = clock;
    return in;
  }
};

namespace sync_internal {

/// Fast path: try_lock, count nothing extra. Slow path: count the
/// contention and time the blocking acquire. The contention clock is the
/// injectable SyncInstruments::clock, falling back to the system clock.
template <typename LockFn, typename TryFn>
void AcquireTimed(const SyncInstruments& in, obs::Counter* acquisitions,
                  LockFn&& lock, TryFn&& try_lock) {
  if (acquisitions != nullptr) acquisitions->Increment();
  if (try_lock()) return;
  if (in.contentions != nullptr) in.contentions->Increment();
  if (in.contention_nanos != nullptr) {
    const obs::Clock* clock =
        in.clock != nullptr ? in.clock : obs::SystemClock::Instance();
    const uint64_t start = clock->NowNanos();
    lock();
    in.contention_nanos->Record(clock->NowNanos() - start);
    return;
  }
  lock();
}

#if HYGRAPH_LOCK_RANK_CHECKS_ENABLED_

/// Thread-local stack of ranked locks this thread currently holds. Fixed
/// capacity: the real hierarchy is 6 deep; 64 leaves room for pathological
/// tests without ever allocating on a lock path.
struct HeldLockStack {
  static constexpr size_t kCapacity = 64;
  struct Entry {
    const void* lock;
    LockRank rank;
  };
  Entry entries[kCapacity];
  size_t size = 0;
};

inline thread_local HeldLockStack held_locks;

/// Out-of-order acquisition is a latent deadlock: report both lock names
/// and die. Not recoverable by design — the point of the checker is that
/// the full ctest suite (tier-1 runs it with checking on) cannot pass
/// while any code path acquires against the hierarchy.
[[noreturn]] inline void ReportRankInversion(LockRank held, LockRank acquiring) {
  std::fprintf(stderr,
               "hygraph lock-rank inversion: acquiring %s (rank %d) while "
               "holding %s (rank %d); the hierarchy in DESIGN.md §10 "
               "requires strictly increasing ranks\n",
               LockRankName(acquiring), static_cast<int>(acquiring),
               LockRankName(held), static_cast<int>(held));
  std::abort();
}

/// Fatal scan against every held ranked lock; counts one rank check.
inline void RankCheck(LockRank rank, obs::Counter* rank_checks) {
  if (rank == LockRank::kUnranked) return;
  if (rank_checks != nullptr) rank_checks->Increment();
  const HeldLockStack& s = held_locks;
  for (size_t i = 0; i < s.size; ++i) {
    if (s.entries[i].rank >= rank) {
      ReportRankInversion(s.entries[i].rank, rank);
    }
  }
}

inline void RankPush(const void* lock, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  HeldLockStack& s = held_locks;
  if (s.size < HeldLockStack::kCapacity) {
    s.entries[s.size++] = {lock, rank};
  }
}

inline void RankPop(const void* lock, LockRank rank) {
  if (rank == LockRank::kUnranked) return;
  HeldLockStack& s = held_locks;
  for (size_t i = s.size; i > 0; --i) {
    if (s.entries[i - 1].lock == lock) {
      for (size_t j = i - 1; j + 1 < s.size; ++j) {
        s.entries[j] = s.entries[j + 1];
      }
      --s.size;
      return;
    }
  }
}

/// Ranked locks the calling thread holds right now (tests assert it
/// returns to zero at quiescence).
inline size_t HeldRankedLocks() { return held_locks.size; }

#else  // !HYGRAPH_LOCK_RANK_CHECKS_ENABLED_

inline void RankCheck(LockRank, obs::Counter*) {}
inline void RankPush(const void*, LockRank) {}
inline void RankPop(const void*, LockRank) {}
inline size_t HeldRankedLocks() { return 0; }

#endif  // HYGRAPH_LOCK_RANK_CHECKS_ENABLED_

}  // namespace sync_internal

/// Instrumented std::mutex and a Clang thread-safety capability; lock with
/// hygraph::MutexLock. Construct with a LockRank so debug builds verify
/// the acquisition order at runtime.
class HYGRAPH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const SyncInstruments& instruments) : in_(instruments) {}
  explicit Mutex(LockRank rank, const SyncInstruments& instruments = {})
      : in_(instruments), rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HYGRAPH_ACQUIRE() {
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::AcquireTimed(
        in_, in_.exclusive_acquisitions, [this] { mu_.lock(); },
        [this] { return mu_.try_lock(); });
    sync_internal::RankPush(this, rank_);
  }
  bool try_lock() HYGRAPH_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::RankPush(this, rank_);
    if (in_.exclusive_acquisitions != nullptr) {
      in_.exclusive_acquisitions->Increment();
    }
    return true;
  }
  void unlock() HYGRAPH_RELEASE() {
    sync_internal::RankPop(this, rank_);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  SyncInstruments in_;
  LockRank rank_ = LockRank::kUnranked;
};

/// Instrumented std::shared_mutex, capability-annotated; lock with
/// hygraph::SharedLock (shared) / hygraph::ExclusiveLock (exclusive).
/// Shared acquisitions participate in rank checking exactly like
/// exclusive ones.
class HYGRAPH_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const SyncInstruments& instruments) : in_(instruments) {}
  explicit SharedMutex(LockRank rank, const SyncInstruments& instruments = {})
      : in_(instruments), rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HYGRAPH_ACQUIRE() {
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::AcquireTimed(
        in_, in_.exclusive_acquisitions, [this] { mu_.lock(); },
        [this] { return mu_.try_lock(); });
    sync_internal::RankPush(this, rank_);
  }
  bool try_lock() HYGRAPH_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::RankPush(this, rank_);
    if (in_.exclusive_acquisitions != nullptr) {
      in_.exclusive_acquisitions->Increment();
    }
    return true;
  }
  void unlock() HYGRAPH_RELEASE() {
    sync_internal::RankPop(this, rank_);
    mu_.unlock();
  }

  void lock_shared() HYGRAPH_ACQUIRE_SHARED() {
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::AcquireTimed(
        in_, in_.shared_acquisitions, [this] { mu_.lock_shared(); },
        [this] { return mu_.try_lock_shared(); });
    sync_internal::RankPush(this, rank_);
  }
  bool try_lock_shared() HYGRAPH_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    sync_internal::RankCheck(rank_, in_.rank_checks);
    sync_internal::RankPush(this, rank_);
    if (in_.shared_acquisitions != nullptr) {
      in_.shared_acquisitions->Increment();
    }
    return true;
  }
  void unlock_shared() HYGRAPH_RELEASE_SHARED() {
    sync_internal::RankPop(this, rank_);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  SyncInstruments in_;
  LockRank rank_ = LockRank::kUnranked;
};

/// Scoped locks. These replace the former std::lock_guard /
/// std::shared_lock aliases with SCOPED_CAPABILITY types the analysis
/// understands: constructing one acquires the capability for the enclosing
/// scope, so guarded fields become accessible without warnings. They are
/// deliberately minimal — no defer/adopt/manual-unlock surface — because a
/// lock whose hold interval is not a lexical scope cannot be proven by the
/// analysis (and nothing in this tree needs one).
class HYGRAPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HYGRAPH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() HYGRAPH_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

class HYGRAPH_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) HYGRAPH_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;
  ~SharedLock() HYGRAPH_RELEASE() { mu_.unlock_shared(); }

 private:
  SharedMutex& mu_;
};

class HYGRAPH_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) HYGRAPH_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;
  ~ExclusiveLock() HYGRAPH_RELEASE() { mu_.unlock(); }

 private:
  SharedMutex& mu_;
};

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_SYNC_H_
