#ifndef HYGRAPH_COMMON_STATUS_H_
#define HYGRAPH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hygraph {

/// Error categories used across the library. Mirrors the RocksDB convention:
/// public APIs report failure through Status / Result<T> rather than
/// exceptions, so callers can handle errors without unwinding.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  kIOError,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result for operations with no payload.
///
/// Usage:
///   Status s = graph.AddEdge(src, dst);
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: a call site that ignores a returned Status
/// fails to compile under -Werror=unused-result. Deliberate discards (best
/// effort cleanup, failure paths that cannot themselves be reported) must go
/// through HYGRAPH_IGNORE_RESULT so they stay grep-able and auditable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A filesystem / device failure (open, write, sync, rename, ...): the
  /// operation did not take effect durably, but retrying may succeed.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// The query's deadline passed before it finished. The partial work is
  /// discarded; the caller may retry with a larger TIMEOUT.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The caller (or an operator) cancelled the operation cooperatively.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// A memory / admission budget was exhausted. The operation was rejected
  /// or aborted to protect the process; retrying later may succeed.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// The subsystem is temporarily refusing this class of operation (e.g. a
  /// degraded read-only store rejecting mutations). Reads keep working.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  [[nodiscard]] bool IsCancelled() const {
    return code_ == StatusCode::kCancelled;
  }
  [[nodiscard]] bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  [[nodiscard]] bool IsUnavailable() const {
    return code_ == StatusCode::kUnavailable;
  }
  /// True for the cooperative-interruption family (deadline / cancel /
  /// budget): the query was cut on purpose, not by a bug or bad input.
  [[nodiscard]] bool IsInterruption() const {
    return IsDeadlineExceeded() || IsCancelled() || IsResourceExhausted();
  }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Holds either a T (when status().ok()) or an
/// error Status. Dereferencing a non-OK Result is a programming error
/// (checked by assert in debug builds). [[nodiscard]] for the same reason
/// as Status: an ignored Result silently swallows the error channel.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hygraph

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define HYGRAPH_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::hygraph::Status _hygraph_status__ = (expr);    \
    if (!_hygraph_status__.ok()) return _hygraph_status__; \
  } while (false)

/// Explicitly discards a [[nodiscard]] Status / Result. Every use marks a
/// call site where failure is acceptable by design (e.g. best-effort cleanup
/// after an earlier error already chosen for reporting). Using the macro —
/// rather than a bare void cast — keeps deliberate discards grep-able:
/// `git grep HYGRAPH_IGNORE_RESULT` audits all of them.
#define HYGRAPH_IGNORE_RESULT(expr) static_cast<void>(expr)

#endif  // HYGRAPH_COMMON_STATUS_H_
