#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace hygraph {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv_percent() const {
  if (count_ < 2 || mean_ == 0.0) return 0.0;
  return 100.0 * stddev() / std::abs(mean_);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace hygraph
