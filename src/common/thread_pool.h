#ifndef HYGRAPH_COMMON_THREAD_POOL_H_
#define HYGRAPH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace hygraph {

/// Optional instrumentation sinks for one ParallelFor call. The pool is
/// process-wide while metrics registries are per-store, so the counters are
/// injected per call (raw pointers into the caller's registry, same pattern
/// as SyncInstruments). Null members disable that event.
struct ParallelForStats {
  /// Every morsel executed (caller- or worker-run).
  obs::Counter* morsels_dispatched = nullptr;
  /// Morsels executed by helper workers rather than the calling thread.
  obs::Counter* morsels_stolen = nullptr;
  /// Wall time helper workers spent executing this call's morsels. The
  /// caller's own share is already inside the caller's wall time, so this
  /// is exactly the extra CPU the pool contributed (PROFILE's
  /// "scan.workers" span).
  obs::Counter* worker_busy_nanos = nullptr;
};

/// Process-wide worker pool for intra-query (morsel-driven) parallelism.
///
/// Shape: one global pool, sized once from std::thread::hardware_concurrency
/// with an HYGRAPH_THREADS override (total parallelism including the caller;
/// 1 disables the pool, 0/unset means the hardware count). Threads spawn
/// lazily on the first fan-out, so merely linking the pool costs nothing.
///
/// Execution model (Leis et al., "Morsel-Driven Parallelism"): ParallelFor
/// publishes a job of `n` independent morsels behind one shared atomic
/// cursor; idle workers attach and the CALLING THREAD PARTICIPATES, so a
/// fan-out never blocks on a busy pool — worst case the caller runs every
/// morsel itself and the call degrades to the serial loop. Each claimer
/// drains the cursor until the job is exhausted or a morsel fails; the
/// first non-OK Status wins, later claims are abandoned (their morsels are
/// retired unrun), and the caller returns after a single join barrier when
/// every claimed morsel has retired.
///
/// Locking: the queue mutex is ranked (LockRank::kThreadPool, between the
/// per-series shard lock and the leaf aggregate-cache mutex) and is NEVER
/// held while a morsel body runs, so bodies are free to take any lock the
/// hierarchy allows a plain thread. Bodies run on threads with no
/// thread-local QueryContext installed: governance inside a morsel goes
/// through QueryContext::CheckCrossThread() (cancel + deadline are
/// thread-safe) and work is charged by the caller at the join barrier.
///
/// Nested fan-out from inside a morsel body is not supported (a body that
/// calls ParallelFor simply runs its morsels inline; helpers never attach
/// to jobs published by other helpers), which keeps the join barrier
/// deadlock-free by construction.
class ThreadPool {
 public:
  /// The process-wide pool (never null; created on first use).
  static ThreadPool* Instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Helper threads this pool will run once spawned (0 = fan-outs execute
  /// serially on the caller). Total parallelism is worker_count() + 1.
  size_t worker_count() const;

  /// Grows the helper-thread target to exactly `workers` (benches and tests
  /// use it to exercise parallel schedules on small machines). Shrinking is
  /// not supported — per-call `max_parallelism` caps a single fan-out.
  void SetWorkerCount(size_t workers);

  /// Runs body(i) for every i in [0, morsels); the calling thread
  /// participates. At most `max_parallelism` threads (including the
  /// caller) execute concurrently; 0 means "no cap beyond pool size".
  /// Returns the first morsel failure, after all claimed morsels retired.
  Status ParallelFor(size_t morsels, size_t max_parallelism,
                     const std::function<Status(size_t)>& body,
                     const ParallelForStats& stats = {});

  /// Cumulative fan-outs that actually went parallel (≥1 helper attached).
  uint64_t parallel_jobs() const {
    return parallel_jobs_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    size_t n = 0;
    const std::function<Status(size_t)>* body = nullptr;
    ParallelForStats stats;
    std::atomic<size_t> next{0};     // morsel claim cursor
    std::atomic<size_t> retired{0};  // morsels finished (run or abandoned)
    std::atomic<bool> failed{false};
    std::atomic<int> helper_slots{0};  // helpers still allowed to attach
    Status error;  // written by the failed.exchange winner, read post-join
  };

  ThreadPool();

  void EnsureWorkersLocked() HYGRAPH_REQUIRES(mu_);
  void WorkerLoop();
  /// Claims and runs morsels of `job` until it is exhausted or failed;
  /// returns how many morsels this thread retired.
  size_t DrainJob(Job& job);

  mutable Mutex mu_{LockRank::kThreadPool};
  std::condition_variable_any cv_;           // workers: "a job is available"
  std::condition_variable_any join_cv_;      // callers: "a job fully retired"
  std::deque<std::shared_ptr<Job>> jobs_ HYGRAPH_GUARDED_BY(mu_);
  std::vector<std::thread> threads_  // NOLINT(hygraph-raw-thread): the pool
      HYGRAPH_GUARDED_BY(mu_);       // IS the sanctioned thread owner
  size_t target_workers_ HYGRAPH_GUARDED_BY(mu_) = 0;
  bool stop_ HYGRAPH_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> parallel_jobs_{0};
};

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_THREAD_POOL_H_
