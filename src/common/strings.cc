#include "common/strings.h"

#include <cctype>

namespace hygraph {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace hygraph
