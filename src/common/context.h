#ifndef HYGRAPH_COMMON_CONTEXT_H_
#define HYGRAPH_COMMON_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace hygraph {

class ResourceGovernor;

/// Per-query governance state: a deadline, a cooperative cancel flag, an
/// optional work budget (rows / points visited), and per-query memory
/// reservations. One QueryContext lives for one query execution and is
/// threaded by pointer through the executor, evaluator, hypertable scans,
/// and graph traversal / pattern-match loops.
///
/// Cost model: hot loops call Charge(n) once per item (or once per batch of
/// items). Charge only bumps two counters and re-reads the atomic cancel
/// flag; the clock is consulted at most once every kCheckInterval charged
/// units, so the per-item overhead on a scan is a null check plus an add.
/// The deadline is therefore enforced with a granularity of one check
/// interval, which is the contract the 2x-deadline acceptance bound relies
/// on.
///
/// Thread-safety: Cancel() / cancelled() may be called from any thread (the
/// flag is atomic). Everything else — Charge, deadlines, budgets, memory
/// accounting — is owned by the single thread running the query, matching
/// how RunPlan executes today.
///
/// Layering: this lives in common/ (not obs/) because graph/ links only
/// hygraph_common; the clock is injected as a plain now-function so the
/// executor can pass obs::SystemClock without common/ depending on obs/.
class QueryContext {
 public:
  /// How many charged units may pass between deadline (clock) checks.
  static constexpr uint64_t kCheckInterval = 1024;

  QueryContext() = default;
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Arms the deadline `timeout_ms` from now, reading "now" (and all later
  /// deadline checks) through `now_nanos`. A zero timeout is ignored.
  void SetTimeout(uint64_t timeout_ms, std::function<uint64_t()> now_nanos);

  /// Arms an absolute deadline in the time base of `now_nanos`.
  void SetDeadline(uint64_t deadline_nanos,
                   std::function<uint64_t()> now_nanos);

  [[nodiscard]] bool has_deadline() const { return deadline_nanos_ != 0; }

  /// Caps the total units this context may Charge(); exceeding it returns
  /// kResourceExhausted. Zero (the default) means unlimited.
  void SetPointsBudget(uint64_t budget) { points_budget_ = budget; }

  /// Requests cooperative cancellation. Safe from any thread; the running
  /// query observes it at its next Charge() checkpoint.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Accounts `units` of work (rows matched, samples decoded, vertices
  /// popped, ...) and returns the first governance violation hit:
  /// kCancelled, kResourceExhausted (points budget), or kDeadlineExceeded.
  /// Amortized: the deadline clock is read once per kCheckInterval units.
  Status Charge(uint64_t units = 1) {
    charged_ += units;
    since_check_ += units;
    if (since_check_ < kCheckInterval && !cancelled() &&
        (points_budget_ == 0 || charged_ <= points_budget_)) {
      return Status::OK();
    }
    return CheckNow();
  }

  /// Unamortized check: consults the cancel flag, points budget, and clock
  /// immediately. Used at loop boundaries and by Charge's slow path.
  Status CheckNow();

  /// The thread-safe subset of CheckNow() for pool workers executing
  /// morsels of this query on other threads: reads the atomic cancel flag
  /// and the deadline (armed before the fan-out, immutable while the query
  /// runs). Charging stays owner-thread-only — parallel scans charge their
  /// merged work total on the owning thread at the join barrier, so the
  /// points budget is enforced with fan-out granularity.
  Status CheckCrossThread() const;

  /// Total units charged so far.
  [[nodiscard]] uint64_t charged() const { return charged_; }

  /// Reserves `bytes` against the process-wide governor (when one is
  /// attached), tracking them so the destructor releases everything this
  /// query still holds. Returns kResourceExhausted when over budget.
  Status ReserveMemory(uint64_t bytes);

  /// Returns `bytes` of this query's reservation to the governor.
  void ReleaseMemory(uint64_t bytes);

  [[nodiscard]] uint64_t reserved_bytes() const { return reserved_bytes_; }

  /// Attaches the governor used by ReserveMemory. Null detaches (memory
  /// accounting becomes a no-op; already-held bytes are released first).
  void AttachGovernor(ResourceGovernor* governor);

  /// The context governing the current thread's query, or nullptr. Deep
  /// layers (hypertable decode loops) resolve this instead of widening
  /// every virtual interface above them — same pattern as RocksDB's
  /// thread-local perf_context.
  static QueryContext* Current();

  /// RAII installer for Current(); restores the previous context on scope
  /// exit so nested RunPlan calls compose.
  class Scope {
   public:
    explicit Scope(QueryContext* ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    QueryContext* previous_;
  };

 private:
  std::function<uint64_t()> now_nanos_;
  uint64_t deadline_nanos_ = 0;  // 0 = no deadline
  uint64_t points_budget_ = 0;   // 0 = unlimited
  uint64_t charged_ = 0;
  uint64_t since_check_ = 0;
  std::atomic<bool> cancelled_{false};
  ResourceGovernor* governor_ = nullptr;
  uint64_t reserved_bytes_ = 0;
};

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_CONTEXT_H_
