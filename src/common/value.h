#ifndef HYGRAPH_COMMON_VALUE_H_
#define HYGRAPH_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace hygraph {

/// Identifier of a time series stored in a series store (TS in the HGM
/// tuple). Properties of kind N_TS hold such an id rather than an inline
/// scalar — the paper's "time-series property values".
using SeriesId = uint64_t;
inline constexpr SeriesId kInvalidSeriesId = ~SeriesId{0};

/// Discriminates the alternatives a Value can hold.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
  kSeriesRef,  ///< reference into a series store (N_TS property values)
};

const char* ValueTypeName(ValueType type);

/// A dynamically-typed property value. The HGM property assignment
/// φ : (V_pg ∪ E_pg ∪ S) × K → N maps keys to values drawn from
/// N = N_σ ∪ N_TS: static scalars (null/bool/int/double/string) or a
/// reference to a time series (SeriesRef).
class Value {
 public:
  /// Constructs a null value.
  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                  // NOLINT(runtime/explicit)
  Value(int64_t i) : rep_(i) {}               // NOLINT(runtime/explicit)
  Value(int i) : rep_(int64_t{i}) {}          // NOLINT(runtime/explicit)
  Value(double d) : rep_(d) {}                // NOLINT(runtime/explicit)
  Value(std::string s) : rep_(std::move(s)) {}  // NOLINT(runtime/explicit)
  Value(const char* s) : rep_(std::string(s)) {}  // NOLINT(runtime/explicit)

  /// Constructs a series-reference value (distinct from the int overload so
  /// that N_σ and N_TS stay disjoint, as the model requires).
  static Value SeriesRef(SeriesId id) {
    Value v;
    v.rep_ = SeriesRefRep{id};
    return v;
  }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_series_ref() const { return type() == ValueType::kSeriesRef; }
  /// True for kInt or kDouble.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Unchecked accessors; calling the wrong one is a programming error.
  bool AsBool() const { return std::get<bool>(rep_); }
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  SeriesId AsSeriesId() const { return std::get<SeriesRefRep>(rep_).id; }

  /// Numeric widening: kInt and kDouble both convert; anything else fails.
  Result<double> ToDouble() const;

  /// Structural equality. Int and double compare equal when numerically
  /// equal (so `WHERE x = 3` matches 3.0).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way comparison for ORDER BY / range predicates. Values of
  /// incomparable types order by type tag (stable but arbitrary); numerics
  /// compare numerically across int/double.
  int Compare(const Value& other) const;

  std::string ToString() const;

 private:
  struct SeriesRefRep {
    SeriesId id;
    bool operator==(const SeriesRefRep&) const = default;
  };
  std::variant<std::monostate, bool, int64_t, double, std::string, SeriesRefRep>
      rep_;
};

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_VALUE_H_
