#ifndef HYGRAPH_COMMON_GOVERNOR_H_
#define HYGRAPH_COMMON_GOVERNOR_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace hygraph {

/// Process-wide memory budget and admission gate. Queries reserve bytes for
/// their big allocations (Materialize buffers, sort/distinct staging,
/// snapshot pins) through QueryContext::ReserveMemory; when the aggregate
/// would exceed the configured budget the reservation fails with
/// kResourceExhausted instead of letting the allocator OOM the process.
///
/// Admit() is the load-shedding gate: once aggregate reservations pass the
/// high-water mark, new queries are rejected up front rather than admitted
/// into an already-starved process.
///
/// All methods are thread-safe (lock-free CAS on a single counter). An
/// unconfigured governor (budget 0) grants everything, so standalone /
/// test code that never calls SetBudget is unaffected.
class ResourceGovernor {
 public:
  ResourceGovernor() = default;

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// The shared process-wide instance used by query execution.
  static ResourceGovernor* Global();

  /// Sets the total reservation budget in bytes. 0 = unlimited (default).
  /// Existing reservations are kept; only future Reserve calls see the new
  /// limit.
  void SetBudget(uint64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Sets the admission high-water mark in bytes. While aggregate
  /// reservations are at or above it, Admit() sheds new queries. 0 =
  /// admission never sheds (default).
  void SetAdmissionHighWater(uint64_t bytes) {
    high_water_.store(bytes, std::memory_order_relaxed);
  }

  /// Reserves `bytes`, failing with kResourceExhausted when the budget
  /// would be exceeded. Reserving 0 bytes always succeeds.
  Status Reserve(uint64_t bytes);

  /// Returns a previous reservation. Releasing more than was reserved
  /// clamps to zero (defensive; indicates an accounting bug upstream).
  void Release(uint64_t bytes);

  /// Aggregate outstanding reservations in bytes.
  [[nodiscard]] uint64_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }

  /// Admission gate: OK while below the high-water mark (or when no mark
  /// is configured), kResourceExhausted once reservations reach it.
  Status Admit() const;

 private:
  std::atomic<uint64_t> budget_{0};      // 0 = unlimited
  std::atomic<uint64_t> high_water_{0};  // 0 = never shed
  std::atomic<uint64_t> reserved_{0};
};

}  // namespace hygraph

#endif  // HYGRAPH_COMMON_GOVERNOR_H_
