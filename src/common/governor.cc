#include "common/governor.h"

#include <string>

namespace hygraph {

ResourceGovernor* ResourceGovernor::Global() {
  // Leaked singleton: the governor must outlive every query on every
  // thread, including ones torn down after main() returns.
  static ResourceGovernor* instance =
      new ResourceGovernor();  // NOLINT(hygraph-naked-new)
  return instance;
}

Status ResourceGovernor::Reserve(uint64_t bytes) {
  if (bytes == 0) return Status::OK();
  uint64_t current = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t budget = budget_.load(std::memory_order_relaxed);
    const uint64_t next = current + bytes;
    if (next < current) {  // overflow: certainly over any real budget
      return Status::ResourceExhausted("memory reservation overflow");
    }
    if (budget != 0 && next > budget) {
      return Status::ResourceExhausted(
          "memory budget exceeded: reserving " + std::to_string(bytes) +
          " bytes would put aggregate reservations at " +
          std::to_string(next) + " of " + std::to_string(budget));
    }
    if (reserved_.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
}

void ResourceGovernor::Release(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t current = reserved_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t next = current >= bytes ? current - bytes : 0;
    if (reserved_.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed)) {
      return;
    }
  }
}

Status ResourceGovernor::Admit() const {
  const uint64_t mark = high_water_.load(std::memory_order_relaxed);
  if (mark == 0) return Status::OK();
  const uint64_t held = reserved_.load(std::memory_order_relaxed);
  if (held < mark) return Status::OK();
  return Status::ResourceExhausted(
      "admission shed: " + std::to_string(held) +
      " bytes reserved, high-water mark " + std::to_string(mark));
}

}  // namespace hygraph
