#include "common/value.h"

#include <cmath>

namespace hygraph {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kSeriesRef:
      return "series_ref";
  }
  return "unknown";
}

ValueType Value::type() const {
  return static_cast<ValueType>(rep_.index());
}

Result<double> Value::ToDouble() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  return Status::InvalidArgument(std::string("value of type ") +
                                 ValueTypeName(type()) +
                                 " is not numeric");
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return ToDouble().value() == other.ToDouble().value();
  }
  return rep_ == other.rep_;
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    const double a = ToDouble().value();
    const double b = other.ToDouble().value();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kString:
      return AsString().compare(other.AsString());
    case ValueType::kSeriesRef: {
      const SeriesId a = AsSeriesId();
      const SeriesId b = other.AsSeriesId();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    default:
      return 0;  // numeric cases handled above
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      double d = AsDouble();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<int64_t>(d)) + ".0";
      }
      return std::to_string(d);
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kSeriesRef:
      return "ts#" + std::to_string(AsSeriesId());
  }
  return "?";
}

}  // namespace hygraph
