#include "ts/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace hygraph::ts {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kStdDev:
      return "stddev";
    case AggKind::kFirst:
      return "first";
    case AggKind::kLast:
      return "last";
  }
  return "?";
}

Result<AggKind> ParseAggKind(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "count") return AggKind::kCount;
  if (n == "sum") return AggKind::kSum;
  if (n == "avg" || n == "mean") return AggKind::kAvg;
  if (n == "min") return AggKind::kMin;
  if (n == "max") return AggKind::kMax;
  if (n == "stddev" || n == "std") return AggKind::kStdDev;
  if (n == "first") return AggKind::kFirst;
  if (n == "last") return AggKind::kLast;
  return Status::InvalidArgument("unknown aggregate '" + name + "'");
}

void AggState::Add(const Sample& s) {
  if (count == 0) {
    min = max = s.value;
    first = last = s;
  } else {
    min = std::min(min, s.value);
    max = std::max(max, s.value);
    if (s.t < first.t) first = s;
    if (s.t > last.t) last = s;
  }
  ++count;
  sum += s.value;
  sum_sq += s.value * s.value;
}

void AggState::Merge(const AggState& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  if (other.first.t < first.t) first = other.first;
  if (other.last.t > last.t) last = other.last;
  count += other.count;
  sum += other.sum;
  sum_sq += other.sum_sq;
}

Result<double> AggState::Finalize(AggKind kind) const {
  if (kind == AggKind::kCount) return static_cast<double>(count);
  if (count == 0) {
    return Status::NotFound("aggregate over empty range");
  }
  switch (kind) {
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      return sum / static_cast<double>(count);
    case AggKind::kMin:
      return min;
    case AggKind::kMax:
      return max;
    case AggKind::kStdDev: {
      if (count < 2) return 0.0;
      const double n = static_cast<double>(count);
      const double var = (sum_sq - sum * sum / n) / (n - 1);
      return std::sqrt(std::max(0.0, var));
    }
    case AggKind::kFirst:
      return first.value;
    case AggKind::kLast:
      return last.value;
    case AggKind::kCount:
      break;  // handled above
  }
  return Status::Internal("unhandled aggregate kind");
}

Result<double> Aggregate(const Series& series, const Interval& interval,
                         AggKind kind) {
  AggState state;
  auto [lo, hi] = series.RangeIndices(interval);
  for (size_t i = lo; i < hi; ++i) state.Add(series.at(i));
  return state.Finalize(kind);
}

Result<Series> WindowAggregate(const Series& series, const Interval& interval,
                               Duration width, AggKind kind) {
  return SlidingAggregate(series, interval, width, width, kind);
}

Result<Series> SlidingAggregate(const Series& series, const Interval& interval,
                                Duration width, Duration step, AggKind kind) {
  if (width <= 0 || step <= 0) {
    return Status::InvalidArgument("window width/step must be positive");
  }
  // Clamp the sweep to the data so the sentinel All() interval does not
  // produce an astronomically long loop — but keep the window *grid*
  // anchored at interval.start (skipping ahead by whole steps), so two
  // engines answering the same query agree on bucket boundaries no matter
  // where their data happens to begin.
  Interval span = interval.Intersect(series.TimeSpan());
  Series out(series.name() + "_" + AggKindName(kind));
  if (span.empty()) return out;
  Timestamp anchor = interval.start;
  if (anchor == kMinTimestamp) {
    anchor = span.start;
  } else if (anchor < span.start) {
    anchor += (span.start - anchor) / step * step;
  }
  auto [lo, hi] = series.RangeIndices(span);
  size_t cursor = lo;
  for (Timestamp w = anchor; w < span.end; w += step) {
    const Interval window{w, w + width};
    // Advance cursor to the first sample >= window start (windows move
    // monotonically so for tumbling windows this is a linear scan overall).
    size_t i;
    if (step >= width) {
      while (cursor < hi && series.at(cursor).t < window.start) ++cursor;
      i = cursor;
    } else {
      i = series.RangeIndices(window).first;
    }
    AggState state;
    while (i < hi && series.at(i).t < window.end) {
      state.Add(series.at(i));
      ++i;
    }
    if (step >= width) cursor = i;
    if (state.count > 0) {
      auto v = state.Finalize(kind);
      if (!v.ok()) return v.status();
      HYGRAPH_IGNORE_RESULT(out.Append(w, *v));
    }
  }
  return out;
}

}  // namespace hygraph::ts
