#include "ts/cold_tier.h"

namespace hygraph::ts {

// Out-of-line so the interface has one home for its vtable.
ColdTier::~ColdTier() = default;

}  // namespace hygraph::ts
