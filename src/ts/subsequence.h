#ifndef HYGRAPH_TS_SUBSEQUENCE_H_
#define HYGRAPH_TS_SUBSEQUENCE_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// A match of a query subsequence inside a longer series.
struct SubsequenceMatch {
  size_t offset = 0;       ///< start index in the haystack
  Timestamp start_time = 0;
  double distance = 0.0;   ///< z-normalized Euclidean distance

  bool operator==(const SubsequenceMatch&) const = default;
};

/// Subsequence matching (Table 2 rows Q1/E, "Subsequence matching [89]"):
/// slides `query` over `haystack` and returns the k best non-overlapping
/// matches by z-normalized Euclidean distance, best first.
Result<std::vector<SubsequenceMatch>> MatchSubsequence(
    const Series& haystack, const std::vector<double>& query, size_t k);

/// All match offsets whose z-normalized distance is <= threshold
/// (overlaps allowed), in increasing offset order.
Result<std::vector<SubsequenceMatch>> MatchSubsequenceThreshold(
    const Series& haystack, const std::vector<double>& query,
    double threshold);

/// Sliding z-normalized distance profile of `query` against every offset of
/// `haystack` (|haystack| - |query| + 1 entries). The building block for
/// both matchers and for the matrix-profile-lite motif/discord kernels.
Result<std::vector<double>> DistanceProfile(const Series& haystack,
                                            const std::vector<double>& query);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_SUBSEQUENCE_H_
