#include "ts/motif.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hygraph::ts {

Result<MatrixProfileResult> MatrixProfile(const Series& series, size_t m) {
  if (m < 2) {
    return Status::InvalidArgument("subsequence length must be >= 2");
  }
  if (series.size() < 2 * m) {
    return Status::InvalidArgument(
        "series must have at least 2*m samples for a matrix profile");
  }
  const std::vector<double> values = series.Values();
  const size_t n = values.size();
  const size_t count = n - m + 1;

  // Precompute per-offset mean and stddev with rolling sums.
  std::vector<double> means(count);
  std::vector<double> stds(count);
  {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += values[i];
      sum_sq += values[i] * values[i];
    }
    const double dm = static_cast<double>(m);
    for (size_t off = 0; off < count; ++off) {
      if (off > 0) {
        sum += values[off + m - 1] - values[off - 1];
        sum_sq += values[off + m - 1] * values[off + m - 1] -
                  values[off - 1] * values[off - 1];
      }
      means[off] = sum / dm;
      const double var = std::max(0.0, sum_sq / dm - means[off] * means[off]);
      stds[off] = std::sqrt(var);
    }
  }

  auto znorm_dist = [&](size_t a, size_t b) {
    double acc = 0.0;
    const double sa = stds[a] < 1e-12 ? 0.0 : 1.0 / stds[a];
    const double sb = stds[b] < 1e-12 ? 0.0 : 1.0 / stds[b];
    for (size_t i = 0; i < m; ++i) {
      const double za = (values[a + i] - means[a]) * sa;
      const double zb = (values[b + i] - means[b]) * sb;
      const double d = za - zb;
      acc += d * d;
    }
    return std::sqrt(acc);
  };

  MatrixProfileResult result;
  result.m = m;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  result.distances.assign(count, kInf);
  result.indices.assign(count, 0);
  const size_t exclusion = m / 2 == 0 ? 1 : m / 2;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + exclusion + 1; j < count; ++j) {
      const double d = znorm_dist(i, j);
      if (d < result.distances[i]) {
        result.distances[i] = d;
        result.indices[i] = j;
      }
      if (d < result.distances[j]) {
        result.distances[j] = d;
        result.indices[j] = i;
      }
    }
  }
  return result;
}

Result<std::vector<Motif>> FindMotifs(const Series& series, size_t m,
                                      size_t top_k) {
  auto profile = MatrixProfile(series, m);
  if (!profile.ok()) return profile.status();
  std::vector<char> blocked(profile->distances.size(), 0);
  std::vector<Motif> motifs;
  auto block_around = [&](size_t center) {
    const size_t lo = center >= m ? center - m + 1 : 0;
    const size_t hi = std::min(blocked.size(), center + m);
    for (size_t i = lo; i < hi; ++i) blocked[i] = 1;
  };
  while (motifs.size() < top_k) {
    size_t best = profile->distances.size();
    for (size_t i = 0; i < profile->distances.size(); ++i) {
      if (blocked[i] || blocked[profile->indices[i]]) continue;
      if (best == profile->distances.size() ||
          profile->distances[i] < profile->distances[best]) {
        best = i;
      }
    }
    if (best == profile->distances.size()) break;
    const size_t partner = profile->indices[best];
    motifs.push_back(Motif{std::min(best, partner), std::max(best, partner),
                           series.at(std::min(best, partner)).t,
                           series.at(std::max(best, partner)).t,
                           profile->distances[best]});
    block_around(best);
    block_around(partner);
  }
  return motifs;
}

}  // namespace hygraph::ts
