#include "ts/anomaly.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "ts/motif.h"

namespace hygraph::ts {

Result<std::vector<Anomaly>> DetectZScore(const Series& series,
                                          double threshold) {
  if (threshold <= 0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  std::vector<Anomaly> out;
  if (series.size() < 3) return out;
  const std::vector<double> values = series.Values();
  const double m = Mean(values);
  const double sd = StdDev(values);
  if (sd < 1e-12) return out;
  for (size_t i = 0; i < series.size(); ++i) {
    const double z = std::abs(series.at(i).value - m) / sd;
    if (z >= threshold) {
      out.push_back(Anomaly{i, series.at(i).t, series.at(i).value, z});
    }
  }
  return out;
}

Result<std::vector<Anomaly>> DetectIqr(const Series& series, double k) {
  if (k < 0) return Status::InvalidArgument("k must be non-negative");
  std::vector<Anomaly> out;
  if (series.size() < 4) return out;
  const std::vector<double> values = series.Values();
  const double q1 = Quantile(values, 0.25);
  const double q3 = Quantile(values, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  for (size_t i = 0; i < series.size(); ++i) {
    const double v = series.at(i).value;
    if (v < lo || v > hi) {
      const double dist = v < lo ? lo - v : v - hi;
      const double score = iqr > 1e-12 ? dist / iqr : dist;
      out.push_back(Anomaly{i, series.at(i).t, v, score});
    }
  }
  return out;
}

Result<std::vector<Anomaly>> DetectSlidingWindow(const Series& series,
                                                 size_t window,
                                                 double threshold) {
  if (window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (threshold <= 0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  std::vector<Anomaly> out;
  if (series.size() <= window) return out;
  // Rolling sums over the trailing window.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < window; ++i) {
    sum += series.at(i).value;
    sum_sq += series.at(i).value * series.at(i).value;
  }
  const double dw = static_cast<double>(window);
  for (size_t i = window; i < series.size(); ++i) {
    const double mean = sum / dw;
    const double var = std::max(0.0, sum_sq / dw - mean * mean);
    const double sd = std::sqrt(var);
    const double v = series.at(i).value;
    if (sd > 1e-12) {
      const double z = std::abs(v - mean) / sd;
      if (z >= threshold) {
        out.push_back(Anomaly{i, series.at(i).t, v, z});
      }
    }
    sum += v - series.at(i - window).value;
    sum_sq += v * v -
              series.at(i - window).value * series.at(i - window).value;
  }
  return out;
}

Result<std::vector<Anomaly>> DetectDiscords(const Series& series, size_t m,
                                            size_t top_k) {
  auto profile = MatrixProfile(series, m);
  if (!profile.ok()) return profile.status();
  // A discord is the subsequence with the *largest* nearest-neighbor
  // distance. Take top_k maxima with trivial-match exclusion.
  std::vector<char> blocked(profile->distances.size(), 0);
  std::vector<Anomaly> out;
  while (out.size() < top_k) {
    size_t best = profile->distances.size();
    for (size_t i = 0; i < profile->distances.size(); ++i) {
      if (blocked[i]) continue;
      if (best == profile->distances.size() ||
          profile->distances[i] > profile->distances[best]) {
        best = i;
      }
    }
    if (best == profile->distances.size()) break;
    out.push_back(Anomaly{best, series.at(best).t, profile->distances[best],
                          profile->distances[best]});
    const size_t lo = best >= m ? best - m + 1 : 0;
    const size_t hi = std::min(profile->distances.size(), best + m);
    for (size_t i = lo; i < hi; ++i) blocked[i] = 1;
  }
  return out;
}

}  // namespace hygraph::ts
