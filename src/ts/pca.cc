#include "ts/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hygraph::ts {

Status JacobiEigen(std::vector<std::vector<double>> a,
                   std::vector<double>* eigenvalues,
                   std::vector<std::vector<double>>* eigenvectors) {
  const size_t n = a.size();
  for (const auto& row : a) {
    if (row.size() != n) {
      return Status::InvalidArgument("JacobiEigen: matrix not square");
    }
  }
  // v starts as identity and accumulates rotations.
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  constexpr int kMaxSweeps = 100;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a[p][q] * a[p][q];
    }
    if (off < 1e-20) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k][p];
          const double vkq = v[k][q];
          v[k][p] = c * vkp - s * vkq;
          v[k][q] = s * vkp + c * vkq;
        }
      }
    }
  }
  // Sort by eigenvalue, decreasing.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return a[x][x] > a[y][y]; });
  eigenvalues->assign(n, 0.0);
  eigenvectors->assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    (*eigenvalues)[i] = a[order[i]][order[i]];
    for (size_t k = 0; k < n; ++k) {
      (*eigenvectors)[i][k] = v[k][order[i]];
    }
  }
  return Status::OK();
}

Result<PcaResult> ComputePca(const MultiSeries& ms) {
  const size_t rows = ms.size();
  const size_t cols = ms.variable_count();
  if (rows < 2 || cols < 1) {
    return Status::InvalidArgument("PCA requires >= 2 rows and >= 1 variable");
  }
  // Column means.
  std::vector<double> mean(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) mean[c] += ms.at(r, c);
  }
  for (double& m : mean) m /= static_cast<double>(rows);
  // Covariance matrix.
  std::vector<std::vector<double>> cov(cols, std::vector<double>(cols, 0.0));
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols; ++i) {
      const double di = ms.at(r, i) - mean[i];
      for (size_t j = i; j < cols; ++j) {
        cov[i][j] += di * (ms.at(r, j) - mean[j]);
      }
    }
  }
  const double denom = static_cast<double>(rows - 1);
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = i; j < cols; ++j) {
      cov[i][j] /= denom;
      cov[j][i] = cov[i][j];
    }
  }
  PcaResult result;
  HYGRAPH_RETURN_IF_ERROR(
      JacobiEigen(std::move(cov), &result.eigenvalues, &result.components));
  return result;
}

Result<double> PcaSimilarity(const MultiSeries& a, const MultiSeries& b,
                             size_t k) {
  if (a.variable_count() != b.variable_count()) {
    return Status::InvalidArgument(
        "PcaSimilarity: variable counts differ");
  }
  auto pa = ComputePca(a);
  if (!pa.ok()) return pa.status();
  auto pb = ComputePca(b);
  if (!pb.ok()) return pb.status();
  const size_t kk =
      std::min({k, pa->components.size(), pb->components.size()});
  if (kk == 0) return Status::InvalidArgument("PcaSimilarity: k must be >= 1");
  // Variance-weighted sum of squared cosines between principal axes
  // (Yang & Shahabi's S_PCA with eigenvalue weighting).
  double weight_total = 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < kk; ++i) {
    for (size_t j = 0; j < kk; ++j) {
      double dot = 0.0;
      for (size_t d = 0; d < a.variable_count(); ++d) {
        dot += pa->components[i][d] * pb->components[j][d];
      }
      const double w = std::max(0.0, pa->eigenvalues[i]) *
                       std::max(0.0, pb->eigenvalues[j]);
      acc += w * dot * dot;
      weight_total += w;
    }
  }
  if (weight_total < 1e-20) return 0.0;
  return acc / weight_total;
}

}  // namespace hygraph::ts
