#ifndef HYGRAPH_TS_MULTISERIES_H_
#define HYGRAPH_TS_MULTISERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// A multivariate time series: the paper's ts = {(t_1, y_1), ..., (t_n, y_n)}
/// where each y is a tuple (val_1, ..., val_k) of variable values observed at
/// the same instant. Stored column-major over a shared, strictly increasing
/// time axis.
class MultiSeries {
 public:
  MultiSeries() = default;
  /// Creates an empty multivariate series with named variables.
  MultiSeries(std::string name, std::vector<std::string> variables);

  static Result<MultiSeries> FromColumns(std::string name,
                                         std::vector<Timestamp> times,
                                         std::vector<std::string> variables,
                                         std::vector<std::vector<double>> columns);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }
  size_t variable_count() const { return variables_.size(); }
  const std::vector<std::string>& variables() const { return variables_; }
  const std::vector<Timestamp>& times() const { return times_; }

  /// Index of a variable by name, or error.
  Result<size_t> VariableIndex(const std::string& variable) const;

  /// Appends one observation row; `row` must have variable_count() entries
  /// and `t` must be strictly after the last timestamp.
  Status AppendRow(Timestamp t, const std::vector<double>& row);

  /// Value of variable `var_idx` at row `row_idx` (unchecked).
  double at(size_t row_idx, size_t var_idx) const {
    return columns_[var_idx][row_idx];
  }

  /// Extracts one variable as a univariate Series (copy).
  Result<Series> Variable(const std::string& variable) const;
  Series VariableByIndex(size_t var_idx) const;

  /// Rows whose timestamps fall inside `interval`, as a new MultiSeries.
  MultiSeries Slice(const Interval& interval) const;

  /// Drops all rows outside `keep` in place (R3 staleness eviction);
  /// returns the number of rows removed.
  size_t Retain(const Interval& keep);

  Interval TimeSpan() const;

  bool operator==(const MultiSeries& other) const {
    return times_ == other.times_ && variables_ == other.variables_ &&
           columns_ == other.columns_;
  }

 private:
  std::string name_;
  std::vector<std::string> variables_;
  std::vector<Timestamp> times_;
  std::vector<std::vector<double>> columns_;  // columns_[var][row]
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_MULTISERIES_H_
