#ifndef HYGRAPH_TS_SERIES_H_
#define HYGRAPH_TS_SERIES_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace hygraph::ts {

/// One observation of a univariate series.
struct Sample {
  Timestamp t = 0;
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

/// A univariate time series: samples strictly ordered by timestamp.
///
/// This is the in-memory working representation used by every analysis
/// kernel (aggregation, segmentation, correlation, ...). Chronological
/// integrity (requirement R2 in the paper) is enforced by the mutators:
/// Append rejects out-of-order timestamps and Insert keeps the order
/// invariant by sorted insertion.
class Series {
 public:
  Series() = default;
  explicit Series(std::string name) : name_(std::move(name)) {}

  Series(const Series&) = default;
  Series& operator=(const Series&) = default;
  Series(Series&&) = default;
  Series& operator=(Series&&) = default;

  /// Builds a series from parallel vectors; fails on length mismatch or
  /// non-strictly-increasing timestamps.
  static Result<Series> FromVectors(std::string name,
                                    std::vector<Timestamp> times,
                                    std::vector<double> values);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& at(size_t i) const { return samples_[i]; }
  const Sample& front() const { return samples_.front(); }
  const Sample& back() const { return samples_.back(); }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Pre-allocates capacity for `n` samples (used by streaming readers that
  /// know the result size up front).
  void Reserve(size_t n) { samples_.reserve(n); }

  /// Appends a sample; the timestamp must be strictly greater than the
  /// current last timestamp (chronological integrity).
  Status Append(Timestamp t, double value);

  /// Inserts a sample at its sorted position; replaces the value if a sample
  /// with the same timestamp already exists.
  void Insert(Timestamp t, double value);

  /// Removes all samples outside `keep` (the paper's R3: replacing stale
  /// data without compromising integrity). Returns the number removed.
  size_t Retain(const Interval& keep);

  /// The half-open interval [first_t, last_t + 1) covered by the series;
  /// empty interval when the series is empty.
  Interval TimeSpan() const;

  /// Index range [lo, hi) of samples whose timestamps fall inside
  /// `interval` (binary search).
  std::pair<size_t, size_t> RangeIndices(const Interval& interval) const;

  /// Copies the samples inside `interval` into a new series.
  Series Slice(const Interval& interval) const;

  /// Value at the greatest timestamp <= t, if any (last-observation-
  /// carried-forward lookup).
  Result<double> ValueAt(Timestamp t) const;

  /// All values / timestamps as dense vectors (for numeric kernels).
  std::vector<double> Values() const;
  std::vector<Timestamp> Timestamps() const;

  bool operator==(const Series& other) const {
    return samples_ == other.samples_;
  }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_SERIES_H_
