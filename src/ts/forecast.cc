#include "ts/forecast.h"

#include <cmath>

#include "ts/correlate.h"

namespace hygraph::ts {

Result<Series> EwmaSmooth(const Series& series, double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1]");
  }
  Series out(series.name() + "_ewma");
  double level = 0.0;
  for (size_t i = 0; i < series.size(); ++i) {
    const Sample& s = series.at(i);
    level = (i == 0) ? s.value : alpha * s.value + (1.0 - alpha) * level;
    HYGRAPH_IGNORE_RESULT(out.Append(s.t, level));
  }
  return out;
}

Result<Series> HoltForecast(const Series& series, double alpha, double beta,
                            size_t horizon, Duration step) {
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
    return Status::InvalidArgument("alpha/beta must be in (0, 1]");
  }
  if (series.size() < 2) {
    return Status::InvalidArgument("Holt forecast needs >= 2 samples");
  }
  if (step <= 0) return Status::InvalidArgument("step must be positive");
  double level = series.at(0).value;
  double trend = series.at(1).value - series.at(0).value;
  for (size_t i = 1; i < series.size(); ++i) {
    const double prev_level = level;
    level = alpha * series.at(i).value + (1.0 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1.0 - beta) * trend;
  }
  Series out(series.name() + "_holt");
  const Timestamp last = series.back().t;
  for (size_t h = 1; h <= horizon; ++h) {
    HYGRAPH_IGNORE_RESULT(out.Append(
        last + static_cast<Duration>(h) * step,
        level + static_cast<double>(h) * trend));
  }
  return out;
}

Result<Series> SeasonalNaiveForecast(const Series& series, size_t season,
                                     size_t horizon, Duration step) {
  if (season == 0) return Status::InvalidArgument("season must be >= 1");
  if (series.size() < season) {
    return Status::InvalidArgument("series shorter than one season");
  }
  if (step <= 0) return Status::InvalidArgument("step must be positive");
  Series out(series.name() + "_snaive");
  const Timestamp last = series.back().t;
  const size_t n = series.size();
  for (size_t h = 1; h <= horizon; ++h) {
    // Index of the observation one (or more) whole seasons before t+h.
    const size_t back = ((h - 1) % season) + 1;
    const size_t idx = n - season + back - 1;
    HYGRAPH_IGNORE_RESULT(out.Append(
        last + static_cast<Duration>(h) * step, series.at(idx).value));
  }
  return out;
}

Result<double> MeanAbsoluteError(const Series& actual,
                                 const Series& forecast) {
  std::vector<double> va;
  std::vector<double> vf;
  AlignOnTimestamps(actual, forecast, &va, &vf);
  if (va.empty()) {
    return Status::FailedPrecondition("MAE: no aligned samples");
  }
  double acc = 0.0;
  for (size_t i = 0; i < va.size(); ++i) acc += std::abs(va[i] - vf[i]);
  return acc / static_cast<double>(va.size());
}

}  // namespace hygraph::ts
