#include "ts/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"

namespace hygraph::ts {

Result<double> EuclideanDistance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("Euclidean distance: length mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

void ZNormalize(std::vector<double>* xs) {
  if (xs->size() < 2) {
    for (double& x : *xs) x = 0.0;
    return;
  }
  const double m = Mean(*xs);
  double var = 0.0;
  for (double x : *xs) var += (x - m) * (x - m);
  var /= static_cast<double>(xs->size());
  const double sd = std::sqrt(var);
  if (sd < 1e-12) {
    for (double& x : *xs) x = 0.0;
    return;
  }
  for (double& x : *xs) x = (x - m) / sd;
}

Result<double> ZNormalizedDistance(std::vector<double> a,
                                   std::vector<double> b) {
  ZNormalize(&a);
  ZNormalize(&b);
  return EuclideanDistance(a, b);
}

Result<double> DtwDistance(const std::vector<double>& a,
                           const std::vector<double>& b, size_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("DTW: empty input");
  }
  // The band must at least cover the length difference or no path exists.
  const size_t min_band = n > m ? n - m : m - n;
  const size_t w = std::max(band, min_band);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Rolling two-row DP over the (n+1) x (m+1) cost matrix.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const size_t jlo = (i > w) ? i - w : 1;
    const size_t jhi = std::min(m, i + w);
    for (size_t j = jlo; j <= jhi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double cost = d * d;
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  if (prev[m] == kInf) {
    return Status::Internal("DTW: band produced no admissible path");
  }
  return std::sqrt(prev[m]);
}

Result<double> DtwDistance(const Series& a, const Series& b, size_t band) {
  return DtwDistance(a.Values(), b.Values(), band);
}

}  // namespace hygraph::ts
