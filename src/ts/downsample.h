#ifndef HYGRAPH_TS_DOWNSAMPLE_H_
#define HYGRAPH_TS_DOWNSAMPLE_H_

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Downsampling operators (Table 2, row Q2 "Downsampling [48]"). All reduce
/// a series to a user-defined granularity while preserving its shape to
/// varying degrees.

/// Bucket-average downsampling: tumbling windows of `bucket` ms, one output
/// sample per non-empty bucket holding the bucket mean, stamped at the
/// bucket start.
Result<Series> DownsampleAverage(const Series& series, Duration bucket);

/// Min-max downsampling: per bucket emits the minimum and maximum samples
/// (at their original timestamps), preserving extremes for plotting and
/// anomaly-preserving summaries.
Result<Series> DownsampleMinMax(const Series& series, Duration bucket);

/// Largest-Triangle-Three-Buckets (Steinarsson): selects `target_points`
/// samples maximizing the area of triangles between adjacent buckets;
/// the standard shape-preserving downsampler. Returns the input unchanged
/// when it is already small enough. Requires target_points >= 2.
Result<Series> DownsampleLttb(const Series& series, size_t target_points);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_DOWNSAMPLE_H_
