#ifndef HYGRAPH_TS_MOTIF_H_
#define HYGRAPH_TS_MOTIF_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Nearest-neighbor profile of all length-m subsequences of a series
/// ("matrix profile lite": exact O(n^2 * m) computation with trivial-match
/// exclusion; no FFT/STOMP optimizations — deterministic and dependency-free).
struct MatrixProfileResult {
  size_t m = 0;                     ///< subsequence length
  std::vector<double> distances;    ///< d(i) = z-norm ED to nearest neighbor
  std::vector<size_t> indices;      ///< index of that nearest neighbor
};

/// Computes the matrix profile with subsequence length m (requires
/// series.size() >= 2*m).
Result<MatrixProfileResult> MatrixProfile(const Series& series, size_t m);

/// A motif: a pair of mutually-similar subsequences (Table 2, row PM
/// "Sequence, Motif [32]").
struct Motif {
  size_t first = 0;    ///< start index of the first occurrence
  size_t second = 0;   ///< start index of its nearest neighbor
  Timestamp first_time = 0;
  Timestamp second_time = 0;
  double distance = 0.0;
};

/// The top_k lowest-distance motif pairs of length m, best first, with
/// trivial-match exclusion around selected occurrences.
Result<std::vector<Motif>> FindMotifs(const Series& series, size_t m,
                                      size_t top_k);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_MOTIF_H_
