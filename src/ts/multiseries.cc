#include "ts/multiseries.h"

#include <algorithm>

namespace hygraph::ts {

MultiSeries::MultiSeries(std::string name, std::vector<std::string> variables)
    : name_(std::move(name)),
      variables_(std::move(variables)),
      columns_(variables_.size()) {}

Result<MultiSeries> MultiSeries::FromColumns(
    std::string name, std::vector<Timestamp> times,
    std::vector<std::string> variables,
    std::vector<std::vector<double>> columns) {
  if (variables.size() != columns.size()) {
    return Status::InvalidArgument(
        "FromColumns: variables and columns differ in count");
  }
  for (const auto& col : columns) {
    if (col.size() != times.size()) {
      return Status::InvalidArgument(
          "FromColumns: column length differs from time axis length");
    }
  }
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) {
      return Status::InvalidArgument(
          "FromColumns: time axis not strictly increasing");
    }
  }
  MultiSeries ms(std::move(name), std::move(variables));
  ms.times_ = std::move(times);
  ms.columns_ = std::move(columns);
  return ms;
}

Result<size_t> MultiSeries::VariableIndex(const std::string& variable) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i] == variable) return i;
  }
  return Status::NotFound("no variable named '" + variable + "'");
}

Status MultiSeries::AppendRow(Timestamp t, const std::vector<double>& row) {
  if (row.size() != variables_.size()) {
    return Status::InvalidArgument("AppendRow: row arity " +
                                   std::to_string(row.size()) +
                                   " != variable count " +
                                   std::to_string(variables_.size()));
  }
  if (!times_.empty() && t <= times_.back()) {
    return Status::InvalidArgument("AppendRow: timestamp not increasing");
  }
  times_.push_back(t);
  for (size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
  return Status::OK();
}

Result<Series> MultiSeries::Variable(const std::string& variable) const {
  auto idx = VariableIndex(variable);
  if (!idx.ok()) return idx.status();
  return VariableByIndex(*idx);
}

Series MultiSeries::VariableByIndex(size_t var_idx) const {
  Series s(name_.empty() ? variables_[var_idx]
                         : name_ + "." + variables_[var_idx]);
  for (size_t i = 0; i < times_.size(); ++i) {
    // Time axis is strictly increasing by construction, so Append succeeds.
    HYGRAPH_IGNORE_RESULT(s.Append(times_[i], columns_[var_idx][i]));
  }
  return s;
}

MultiSeries MultiSeries::Slice(const Interval& interval) const {
  MultiSeries out(name_, variables_);
  auto lo = std::lower_bound(times_.begin(), times_.end(), interval.start);
  auto hi = std::lower_bound(lo, times_.end(), interval.end);
  const size_t b = static_cast<size_t>(lo - times_.begin());
  const size_t e = static_cast<size_t>(hi - times_.begin());
  out.times_.assign(times_.begin() + static_cast<ptrdiff_t>(b),
                    times_.begin() + static_cast<ptrdiff_t>(e));
  for (size_t v = 0; v < columns_.size(); ++v) {
    out.columns_[v].assign(columns_[v].begin() + static_cast<ptrdiff_t>(b),
                           columns_[v].begin() + static_cast<ptrdiff_t>(e));
  }
  return out;
}

size_t MultiSeries::Retain(const Interval& keep) {
  const size_t before = times_.size();
  auto lo = std::lower_bound(times_.begin(), times_.end(), keep.start);
  auto hi = std::lower_bound(lo, times_.end(), keep.end);
  const size_t b = static_cast<size_t>(lo - times_.begin());
  const size_t e = static_cast<size_t>(hi - times_.begin());
  times_.erase(times_.begin() + static_cast<ptrdiff_t>(e), times_.end());
  times_.erase(times_.begin(), times_.begin() + static_cast<ptrdiff_t>(b));
  for (auto& column : columns_) {
    column.erase(column.begin() + static_cast<ptrdiff_t>(e), column.end());
    column.erase(column.begin(), column.begin() + static_cast<ptrdiff_t>(b));
  }
  return before - times_.size();
}

Interval MultiSeries::TimeSpan() const {
  if (times_.empty()) return Interval{0, 0};
  return Interval{times_.front(), times_.back() + 1};
}

}  // namespace hygraph::ts
