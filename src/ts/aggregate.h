#ifndef HYGRAPH_TS_AGGREGATE_H_
#define HYGRAPH_TS_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Aggregation kinds supported by range and window aggregation (and by the
/// hypertable's chunk-level aggregate cache).
enum class AggKind : uint8_t {
  kCount = 0,
  kSum,
  kAvg,
  kMin,
  kMax,
  kStdDev,
  kFirst,
  kLast,
};

const char* AggKindName(AggKind kind);
/// Parses "count"/"sum"/"avg"/"min"/"max"/"stddev"/"first"/"last".
Result<AggKind> ParseAggKind(const std::string& name);

/// Decomposable partial aggregate: sum/min/max/count/sum-of-squares plus
/// first/last sample. Partials merge associatively, which is what lets the
/// hypertable answer range aggregates from cached per-chunk partials.
struct AggState {
  size_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;
  Sample first{};
  Sample last{};

  void Add(const Sample& s);
  void Merge(const AggState& other);
  /// Final value for `kind`; error for kCount==0 on value-kinds.
  Result<double> Finalize(AggKind kind) const;
};

/// Aggregates the samples of `series` inside `interval`.
Result<double> Aggregate(const Series& series, const Interval& interval,
                         AggKind kind);

/// Tumbling-window aggregation: partitions `interval` into windows of
/// `width` ms anchored at interval.start and emits one output sample per
/// non-empty window, timestamped at the window start. This is the engine
/// behind downsampling-by-average and the paper's Q2 hybrid operator.
Result<Series> WindowAggregate(const Series& series, const Interval& interval,
                               Duration width, AggKind kind);

/// Sliding-window aggregation with window `width` and step `step`; windows
/// are [t, t+width) for t = interval.start, start+step, ... Output samples
/// are stamped at the window start.
Result<Series> SlidingAggregate(const Series& series, const Interval& interval,
                                Duration width, Duration step, AggKind kind);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_AGGREGATE_H_
