#ifndef HYGRAPH_TS_FORECAST_H_
#define HYGRAPH_TS_FORECAST_H_

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Forecasting primitives supporting the paper's "predictive tasks"
/// (micromobility demand prediction in the intro's use cases).

/// Exponentially weighted moving average smoothing; alpha in (0, 1].
Result<Series> EwmaSmooth(const Series& series, double alpha);

/// Holt's linear-trend double exponential smoothing, forecasting `horizon`
/// future points spaced `step` ms after the last observation.
/// alpha/beta in (0, 1].
Result<Series> HoltForecast(const Series& series, double alpha, double beta,
                            size_t horizon, Duration step);

/// Seasonal-naive forecast: value at t+h equals the observation one season
/// (`season` samples) earlier. Requires size >= season.
Result<Series> SeasonalNaiveForecast(const Series& series, size_t season,
                                     size_t horizon, Duration step);

/// Mean absolute error between a forecast and the actual series on their
/// aligned timestamps.
Result<double> MeanAbsoluteError(const Series& actual, const Series& forecast);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_FORECAST_H_
