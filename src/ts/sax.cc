#include "ts/sax.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ts/distance.h"

namespace hygraph::ts {

namespace {

// Breakpoints dividing N(0,1) into `alphabet` equiprobable regions,
// computed via the inverse normal CDF (Acklam's rational approximation —
// plenty for quantization).
double InverseNormalCdf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > 1 - plow) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

Result<std::vector<double>> Breakpoints(size_t alphabet) {
  if (alphabet < 2 || alphabet > 16) {
    return Status::InvalidArgument("alphabet must be in [2, 16]");
  }
  std::vector<double> points;
  for (size_t i = 1; i < alphabet; ++i) {
    points.push_back(InverseNormalCdf(static_cast<double>(i) /
                                      static_cast<double>(alphabet)));
  }
  return points;
}

char Quantize(double value, const std::vector<double>& breakpoints) {
  size_t cell = 0;
  while (cell < breakpoints.size() && value >= breakpoints[cell]) ++cell;
  return static_cast<char>('a' + cell);
}

Result<std::string> WordFromValues(std::vector<double> values,
                                   const SaxOptions& options) {
  if (values.size() < options.segments || options.segments == 0) {
    return Status::InvalidArgument(
        "series shorter than the requested segment count");
  }
  auto breakpoints = Breakpoints(options.alphabet);
  if (!breakpoints.ok()) return breakpoints.status();
  ZNormalize(&values);
  auto frames = Paa(values, options.segments);
  if (!frames.ok()) return frames.status();
  std::string word;
  word.reserve(options.segments);
  for (double frame : *frames) word.push_back(Quantize(frame, *breakpoints));
  return word;
}

}  // namespace

Result<std::vector<double>> Paa(const std::vector<double>& values,
                                size_t segments) {
  if (segments == 0) {
    return Status::InvalidArgument("segments must be >= 1");
  }
  if (values.size() < segments) {
    return Status::InvalidArgument("fewer values than segments");
  }
  const size_t n = values.size();
  std::vector<double> frames(segments, 0.0);
  // Fractional frame boundaries: each value contributes to the frames it
  // overlaps, so n need not divide evenly. Positions are measured in frame
  // units (each value spans segments/n of a frame), so the per-frame
  // overlap weights already sum to exactly 1 — the weighted sum IS the
  // frame mean.
  for (size_t i = 0; i < n; ++i) {
    const double lo = static_cast<double>(i) * segments / n;
    const double hi = static_cast<double>(i + 1) * segments / n;
    for (size_t f = static_cast<size_t>(lo);
         f < segments && static_cast<double>(f) < hi; ++f) {
      const double overlap = std::min(hi, static_cast<double>(f + 1)) -
                             std::max(lo, static_cast<double>(f));
      if (overlap > 0) frames[f] += values[i] * overlap;
    }
  }
  return frames;
}

Result<std::string> SaxWord(const Series& series, const SaxOptions& options) {
  return WordFromValues(series.Values(), options);
}

Result<double> SaxMinDist(const std::string& a, const std::string& b,
                          size_t original_length, const SaxOptions& options) {
  if (a.size() != b.size() || a.size() != options.segments) {
    return Status::InvalidArgument(
        "words must both have options.segments symbols");
  }
  if (original_length < options.segments) {
    return Status::InvalidArgument("original_length too small");
  }
  auto breakpoints = Breakpoints(options.alphabet);
  if (!breakpoints.ok()) return breakpoints.status();
  auto cell_dist = [&](char x, char y) {
    int i = x - 'a';
    int j = y - 'a';
    if (std::abs(i - j) <= 1) return 0.0;
    const int hi = std::max(i, j);
    const int lo = std::min(i, j);
    return (*breakpoints)[static_cast<size_t>(hi - 1)] -
           (*breakpoints)[static_cast<size_t>(lo)];
  };
  double acc = 0.0;
  for (size_t s = 0; s < a.size(); ++s) {
    const double d = cell_dist(a[s], b[s]);
    acc += d * d;
  }
  return std::sqrt(static_cast<double>(original_length) /
                   static_cast<double>(options.segments)) *
         std::sqrt(acc);
}

Result<std::vector<std::string>> SlidingSaxWords(const Series& series,
                                                 size_t window, size_t step,
                                                 const SaxOptions& options) {
  if (window < options.segments) {
    return Status::InvalidArgument("window shorter than segment count");
  }
  if (step == 0) return Status::InvalidArgument("step must be >= 1");
  if (series.size() < window) {
    return Status::InvalidArgument("series shorter than window");
  }
  const std::vector<double> values = series.Values();
  std::vector<std::string> words;
  for (size_t off = 0; off + window <= values.size(); off += step) {
    std::vector<double> slice(values.begin() + static_cast<ptrdiff_t>(off),
                              values.begin() +
                                  static_cast<ptrdiff_t>(off + window));
    auto word = WordFromValues(std::move(slice), options);
    if (!word.ok()) return word.status();
    words.push_back(std::move(*word));
  }
  return words;
}

Result<std::vector<SaxPattern>> SaxBagOfPatterns(const Series& series,
                                                 size_t window, size_t step,
                                                 const SaxOptions& options) {
  auto words = SlidingSaxWords(series, window, step, options);
  if (!words.ok()) return words.status();
  std::map<std::string, size_t> counts;
  for (const std::string& word : *words) ++counts[word];
  std::vector<SaxPattern> patterns;
  patterns.reserve(counts.size());
  for (const auto& [word, count] : counts) {
    patterns.push_back(SaxPattern{word, count});
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const SaxPattern& x, const SaxPattern& y) {
              if (x.count != y.count) return x.count > y.count;
              return x.word < y.word;
            });
  return patterns;
}

}  // namespace hygraph::ts
