#ifndef HYGRAPH_TS_ANOMALY_H_
#define HYGRAPH_TS_ANOMALY_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// One detected anomaly.
struct Anomaly {
  size_t index = 0;      ///< sample (or subsequence start) index
  Timestamp t = 0;
  double value = 0.0;    ///< offending value (or discord distance)
  double score = 0.0;    ///< detector-specific severity, larger = worse
};

/// Point anomalies by global z-score: samples with |x - mean| / std >=
/// threshold. The "distance-based outlier detection" of the paper's
/// time-series-only fraud path (Listing 2).
Result<std::vector<Anomaly>> DetectZScore(const Series& series,
                                          double threshold);

/// Point anomalies by the IQR fence: x < Q1 - k*IQR or x > Q3 + k*IQR.
Result<std::vector<Anomaly>> DetectIqr(const Series& series, double k = 1.5);

/// Contextual anomalies by sliding window: a sample is anomalous when it
/// deviates by >= threshold local standard deviations from the mean of the
/// preceding `window` samples. Catches bursts that a global z-score misses
/// on non-stationary series.
Result<std::vector<Anomaly>> DetectSlidingWindow(const Series& series,
                                                 size_t window,
                                                 double threshold);

/// Subsequence anomalies (discords) via the matrix-profile-lite kernel: the
/// top_k subsequences of length m whose nearest non-overlapping neighbor is
/// farthest. `score`/`value` hold the discord distance.
Result<std::vector<Anomaly>> DetectDiscords(const Series& series, size_t m,
                                            size_t top_k);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_ANOMALY_H_
