#ifndef HYGRAPH_TS_CHUNK_CODEC_H_
#define HYGRAPH_TS_CHUNK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Gorilla-style codec for one sealed hypertable chunk (Facebook's in-memory
/// TSDB; the same scheme TimescaleDB uses for compressed columnar chunks).
/// Timestamps and values are encoded as two independent columns:
///
///   chunk  := varint(count)                      -- 0 terminates the layout
///             varint(ts_len)                     -- byte length of ts column
///             ts-column  (byte-aligned varints)
///             value-column (MSB-first bitstream)
///
///   ts-column     := zigzag(t[0])  zigzag(d[1])  zigzag(dod[2]) ...
///                    where d[i] = t[i]-t[i-1] and dod[i] = d[i]-d[i-1];
///                    regular sampling grids encode as one 0x00 byte/sample.
///   value-column  := 64 raw bits of v[0], then per sample the XOR with the
///                    previous value's bit pattern:
///                      '0'                         xor == 0
///                      '10' + reused-window bits   fits previous window
///                      '11' + 6b leading + 6b (sigbits-1) + sigbits
///
/// All arithmetic is on the 64-bit bit patterns (wrap-around uint64 for
/// timestamp deltas), so the round-trip is bit-exact for every double —
/// NaN payloads, ±inf, -0.0 — and every int64 timestamp.
///
/// Decoding is total over arbitrary bytes: any input is either accepted or
/// rejected with StatusCode::kCorruption, with allocations bounded by the
/// input size (a declared count can never exceed the ts-column's byte
/// length). This is the untrusted-bytes frontier fuzz_chunk_codec explores.

/// Encodes `samples` (need not be sorted; order is preserved exactly).
std::string EncodeChunk(const std::vector<Sample>& samples);

/// Streaming decoder: validates the header eagerly, then yields one sample
/// per Next() without materializing the chunk. Holds a view — the encoded
/// bytes must outlive the decoder.
class ChunkDecoder {
 public:
  explicit ChunkDecoder(std::string_view bytes);

  /// Declared sample count (0 if the header was rejected).
  size_t count() const { return count_; }

  /// Writes the next sample into `out`; returns false at the end of the
  /// chunk or on corruption (check status() to tell the two apart).
  bool Next(Sample* out);

  /// OK unless the input was rejected; set eagerly for header corruption
  /// and lazily for corruption discovered mid-stream.
  const Status& status() const { return status_; }

  /// True once all declared samples were produced and the trailing padding
  /// verified; never true on a rejected input.
  bool done() const { return status_.ok() && produced_ == count_; }

 private:
  bool Fail(const std::string& msg);
  bool ReadVarint(uint64_t* out);
  bool ReadBits(size_t n, uint64_t* out);
  uint64_t Peek64() const;
  bool DecodeValueToken();

  std::string_view bytes_;
  Status status_;
  size_t count_ = 0;
  size_t produced_ = 0;

  // Timestamp column cursor (byte-aligned varints).
  size_t ts_pos_ = 0;
  size_t ts_end_ = 0;
  uint64_t prev_t_ = 0;
  uint64_t prev_delta_ = 0;

  // Value column cursor (bit-aligned).
  size_t bit_pos_ = 0;  // absolute bit offset into bytes_
  uint64_t prev_value_bits_ = 0;
  int window_leading_ = -1;  // -1: no reusable window yet
  int window_sigbits_ = 0;
};

/// Decodes a whole chunk; rejects trailing garbage and non-zero padding.
Result<std::vector<Sample>> DecodeChunk(std::string_view bytes);

/// Wide fast-path decoder: bit-exactly the same accept/reject set and
/// output as DecodeChunk, at roughly twice the throughput. Instead of the
/// streaming decoder's per-sample cursor checks it runs two columnar
/// passes — byte-aligned timestamp varints first, then the value bitstream
/// through unchecked 64-bit unaligned loads while at least 16 bytes of
/// input remain (a worst-case token is 78 bits, so every load stays in
/// bounds), falling back to the fully-checked token path for the tail.
/// `out` is cleared first and its capacity reused (the parallel scan path
/// decodes every morsel into a reusable scratch buffer); on failure `out`
/// is left empty. Totality over untrusted bytes is preserved: any input is
/// either accepted or rejected with kCorruption, with allocations bounded
/// by the declared count (itself bounded by the input size).
Status DecodeChunkWide(std::string_view bytes, std::vector<Sample>* out);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_CHUNK_CODEC_H_
