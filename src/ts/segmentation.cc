#include "ts/segmentation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hygraph::ts {

Segment FitSegment(const Series& series, size_t begin, size_t end) {
  Segment seg;
  seg.begin = begin;
  seg.end = end;
  if (begin >= end || end > series.size()) return seg;
  seg.start_time = series.at(begin).t;
  seg.end_time = series.at(end - 1).t;
  const size_t n = end - begin;
  if (n == 1) {
    seg.intercept = series.at(begin).value;
    return seg;
  }
  // Least squares on (t - start_time, value) for numeric stability.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double x = static_cast<double>(series.at(i).t - seg.start_time);
    const double y = series.at(i).value;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom != 0.0) {
    seg.slope = (dn * sxy - sx * sy) / denom;
    seg.intercept = (sy - seg.slope * sx) / dn;
  } else {
    seg.slope = 0.0;
    seg.intercept = sy / dn;
  }
  double err = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const double x = static_cast<double>(series.at(i).t - seg.start_time);
    const double r = series.at(i).value - (seg.intercept + seg.slope * x);
    err += r * r;
  }
  seg.error = err;
  return seg;
}

namespace {

// Finds the split index in (begin, end) minimizing the summed error of the
// two sub-fits; returns begin when no valid split exists.
size_t BestSplit(const Series& series, size_t begin, size_t end,
                 double* best_error) {
  size_t best = begin;
  *best_error = std::numeric_limits<double>::infinity();
  for (size_t split = begin + 1; split < end; ++split) {
    const Segment left = FitSegment(series, begin, split);
    const Segment right = FitSegment(series, split, end);
    const double err = left.error + right.error;
    if (err < *best_error) {
      *best_error = err;
      best = split;
    }
  }
  return best;
}

}  // namespace

Result<std::vector<Segment>> SegmentTopDown(const Series& series,
                                            double max_error,
                                            size_t max_segments) {
  if (max_segments == 0) {
    return Status::InvalidArgument("max_segments must be >= 1");
  }
  std::vector<Segment> segments;
  if (series.empty()) return segments;
  segments.push_back(FitSegment(series, 0, series.size()));
  while (segments.size() < max_segments) {
    // Pick the worst segment that still exceeds the error budget.
    size_t worst = segments.size();
    double worst_error = max_error;
    for (size_t i = 0; i < segments.size(); ++i) {
      if (segments[i].error > worst_error && segments[i].length() >= 2) {
        worst_error = segments[i].error;
        worst = i;
      }
    }
    if (worst == segments.size()) break;  // all within budget
    const Segment target = segments[worst];
    double split_error = 0.0;
    const size_t split =
        BestSplit(series, target.begin, target.end, &split_error);
    if (split == target.begin) break;  // cannot split further
    segments[worst] = FitSegment(series, target.begin, split);
    segments.insert(segments.begin() + static_cast<ptrdiff_t>(worst) + 1,
                    FitSegment(series, split, target.end));
  }
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.begin < b.begin; });
  return segments;
}

Result<std::vector<Segment>> SegmentBottomUp(const Series& series,
                                             double max_error,
                                             size_t initial_width) {
  if (initial_width < 2) {
    return Status::InvalidArgument("initial_width must be >= 2");
  }
  std::vector<Segment> segments;
  if (series.empty()) return segments;
  for (size_t begin = 0; begin < series.size(); begin += initial_width) {
    const size_t end = std::min(begin + initial_width, series.size());
    segments.push_back(FitSegment(series, begin, end));
  }
  while (segments.size() > 1) {
    // Find the cheapest adjacent merge.
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_i = segments.size();
    Segment best_merged;
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      Segment merged =
          FitSegment(series, segments[i].begin, segments[i + 1].end);
      const double cost =
          merged.error - segments[i].error - segments[i + 1].error;
      if (cost < best_cost) {
        best_cost = cost;
        best_i = i;
        best_merged = merged;
      }
    }
    if (best_i == segments.size() || best_merged.error > max_error) break;
    segments[best_i] = best_merged;
    segments.erase(segments.begin() + static_cast<ptrdiff_t>(best_i) + 1);
  }
  return segments;
}

std::vector<Timestamp> ChangePoints(const std::vector<Segment>& segments) {
  std::vector<Timestamp> points;
  for (size_t i = 1; i < segments.size(); ++i) {
    points.push_back(segments[i].start_time);
  }
  return points;
}

Result<std::vector<size_t>> DetectMeanShifts(const Series& series,
                                             double penalty) {
  if (penalty < 0) {
    return Status::InvalidArgument("penalty must be non-negative");
  }
  const size_t n = series.size();
  std::vector<size_t> result;
  if (n < 2) return result;
  // Prefix sums for O(1) L2 segment cost: cost(a,b) = sum((x - mean)^2).
  std::vector<double> pre(n + 1, 0.0);
  std::vector<double> pre2(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    pre[i + 1] = pre[i] + series.at(i).value;
    pre2[i + 1] = pre2[i] + series.at(i).value * series.at(i).value;
  }
  auto cost = [&](size_t a, size_t b) {  // [a, b)
    const double len = static_cast<double>(b - a);
    const double s = pre[b] - pre[a];
    const double s2 = pre2[b] - pre2[a];
    return s2 - s * s / len;
  };
  // Optimal-partitioning DP (exact; PELT pruning elided — sizes here are
  // modest and the exact DP keeps behaviour deterministic and simple).
  std::vector<double> f(n + 1, 0.0);
  std::vector<size_t> prev(n + 1, 0);
  for (size_t b = 1; b <= n; ++b) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_a = 0;
    for (size_t a = 0; a < b; ++a) {
      const double c = f[a] + cost(a, b) + (a > 0 ? penalty : 0.0);
      if (c < best) {
        best = c;
        best_a = a;
      }
    }
    f[b] = best;
    prev[b] = best_a;
  }
  size_t b = n;
  while (b > 0) {
    const size_t a = prev[b];
    if (a == 0) break;
    result.push_back(a);
    b = a;
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace hygraph::ts
