#ifndef HYGRAPH_TS_HYPERTABLE_H_
#define HYGRAPH_TS_HYPERTABLE_H_

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/time.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "ts/aggregate.h"
#include "ts/chunk_codec.h"
#include "ts/cold_tier.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Configuration for HypertableStore.
struct HypertableOptions {
  /// Width of one time partition (chunk). TimescaleDB's default hypertable
  /// chunking is time-based; one day of 5-minute samples is 288 points.
  Duration chunk_duration = kDay;
  /// When true, each closed chunk keeps a decomposable aggregate (AggState)
  /// so range aggregates can skip scanning fully-covered chunks. This is the
  /// mechanism the ablation bench toggles.
  bool enable_chunk_cache = true;
  /// When true (default), only the newest chunk of each series stays hot
  /// (mutable `std::vector<Sample>`); every colder chunk is sealed into
  /// Gorilla-compressed bytes with a zone map (min/max time and value) and
  /// its cached aggregate. Out-of-order writes transparently unseal, merge
  /// and reseal. The compression ablation bench toggles this off.
  bool compress_sealed_chunks = true;
  /// Registry the store's "hypertable.*" work counters live in. When null
  /// (the default) the store creates and owns a private registry. A
  /// containing engine (PolyglotStore) passes its own registry so one
  /// snapshot covers the whole backend.
  obs::MetricsRegistry* metrics = nullptr;
  /// When true (default), multi-chunk reads (ScanVisit / Aggregate /
  /// WindowAggregate / CountMatching / Scan / Materialize) fan their
  /// per-chunk work out over the process-wide worker pool, morsel-driven:
  /// one pinned chunk is one morsel, the caller participates, and partial
  /// results merge in chunk order so the answer is bit-identical to the
  /// serial path. Setting HYGRAPH_THREADS=1 disables the pool process-wide,
  /// which is the EXPERIMENTS.md parallelism kill switch.
  bool parallel_scan = true;
  /// Caps the threads (caller included) one fan-out of this store may use;
  /// 0 means "no cap beyond the pool size". The pool is process-wide and
  /// grow-only, so this per-store cap is what lets the scaling bench
  /// measure 1→N-thread points deterministically on any machine.
  size_t parallel_scan_cap = 0;
  /// Cold tier sealed chunks spill to (null = everything stays in RAM).
  /// Not owned; set post-construction via AttachColdTier (single-threaded
  /// setup, before the store is shared). Lives in the options so Fork()
  /// snapshots keep reading the same tier.
  ColdTier* cold_tier = nullptr;
};

/// Counters describing the work a query did — used by tests and by the
/// scalability bench to show chunk pruning is effective. Assembled on
/// demand from the store's registry-backed "hypertable.*" counters (the
/// registry is the source of truth; this struct is its typed view).
struct HypertableStats {
  size_t chunks_total = 0;
  size_t chunks_scanned = 0;     ///< chunks whose samples were touched
  size_t chunks_from_cache = 0;  ///< chunks answered from their aggregate cache
  size_t samples_scanned = 0;
  /// Sealed chunks Gorilla-decoded on the read path (scans that could not
  /// be answered from zone maps or cached partials).
  size_t chunks_decoded = 0;
  // Compression lifecycle (cumulative since the last ResetStats()).
  size_t chunks_sealed = 0;    ///< seal operations performed
  size_t chunks_unsealed = 0;  ///< unseal operations (out-of-order writes)
  size_t bytes_raw = 0;         ///< raw sample bytes across those seals
  size_t bytes_compressed = 0;  ///< encoded bytes across those seals
  /// Sealed chunks skipped wholesale because their value zone map cannot
  /// intersect a pushed-down value predicate (the Q8 query shape).
  size_t chunks_zonemap_skipped = 0;
  // Morsel-driven parallel read path (cumulative since ResetStats()).
  size_t morsels_dispatched = 0;  ///< per-chunk / per-series morsels fanned out
  size_t morsels_stolen = 0;      ///< morsels executed by pool workers
  // Cold tier (cumulative since ResetStats()).
  size_t cold_chunks_spilled = 0;  ///< sealed chunks written to the tier
  size_t cold_bytes_spilled = 0;   ///< encoded bytes across those spills
  size_t cold_chunks_adopted = 0;  ///< chunks re-attached at recovery
  size_t cold_pins = 0;            ///< scans that pinned cold bytes (hit or
                                   ///< miss — the tier counts those apart)
};

/// Current memory footprint of a HypertableStore's sample data, split by
/// chunk state. The compression acceptance metric is
/// sealed_bytes / sealed_samples.
struct HypertableMemory {
  size_t hot_samples = 0;
  size_t hot_bytes = 0;  ///< vector capacity, i.e. real footprint
  size_t sealed_samples = 0;
  size_t sealed_bytes = 0;  ///< encoded bytes resident in RAM
  size_t cold_samples = 0;  ///< samples whose bytes live only in the tier
  size_t cold_bytes = 0;    ///< their on-disk encoded size (not RAM)
  /// RAM footprint: cold bytes live in the tier's bounded cache, not here.
  size_t total_bytes() const { return hot_bytes + sealed_bytes; }
  double sealed_bytes_per_sample() const {
    return sealed_samples == 0
               ? 0.0
               : static_cast<double>(sealed_bytes) /
                     static_cast<double>(sealed_samples);
  }
};

/// A value predicate pushed down into a scan: keep samples with
/// min_value <= v <= max_value. Sealed chunks whose value zone map lies
/// entirely outside the bounds are skipped without decoding. The default
/// bounds are infinite, which matches every value (including NaN).
struct ScanPredicate {
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();

  bool unbounded() const {
    return min_value == -std::numeric_limits<double>::infinity() &&
           max_value == std::numeric_limits<double>::infinity();
  }
  /// NaN matches only an unbounded side, so bounded predicates never
  /// select NaN samples (SQL-style comparison semantics).
  bool Matches(double v) const {
    if (min_value != -std::numeric_limits<double>::infinity() &&
        !(v >= min_value)) {
      return false;
    }
    if (max_value != std::numeric_limits<double>::infinity() &&
        !(v <= max_value)) {
      return false;
    }
    return true;
  }
};

/// A time-partitioned store for univariate series, modelled on TimescaleDB's
/// hypertable: each series is split into fixed-width time chunks; within a
/// chunk, samples are kept sorted; every chunk carries min/max time bounds
/// and (optionally) a cached decomposable aggregate.
///
/// Storage follows the hot/sealed lifecycle of a real hypertable's
/// compressed columnar chunks: only the newest chunk of a series is a
/// mutable sample vector; colder chunks hold Gorilla-encoded bytes
/// (delta-of-delta timestamps + XOR values, see ts/chunk_codec.h) plus a
/// zone map and their cached aggregate. Reads stream through ScanVisit,
/// which decodes sealed chunks block-wise without materializing them;
/// range aggregates combine cached partials of fully-covered chunks with
/// streamed scans of the boundary chunks — which is why the polyglot
/// architecture wins Table 1's aggregation-heavy queries.
///
/// Concurrency (DESIGN.md §10): the store is safe for any mix of
/// concurrent readers and writers. The series map is guarded by one
/// reader-writer lock (exclusive only in Create); each series carries its
/// own shard lock, so ingest into one series never blocks scans of
/// another. Sealed chunks are immutable heap objects held by shared_ptr:
/// a reader pins the chunks it needs under a brief shared acquisition of
/// the shard lock (PinView), then decodes and streams entirely outside
/// any lock — unseal/merge/reseal swaps in a fresh object while pinned
/// readers keep the old one alive (epoch-by-refcount). Hot-chunk samples
/// overlapping the scan are copied out under the same shared hold.
/// Writers take the shard lock exclusively. Fork() snapshots the whole
/// store in O(series): it pins every series' chunk vector; the next write
/// to a pinned series detaches (copy-on-write).
class HypertableStore {
 public:
  explicit HypertableStore(HypertableOptions options = {});

  HypertableStore(const HypertableStore&) = delete;
  HypertableStore& operator=(const HypertableStore&) = delete;
  HypertableStore(HypertableStore&&) = default;
  HypertableStore& operator=(HypertableStore&&) = default;

  const HypertableOptions& options() const { return options_; }

  /// Registers a new series and returns its id.
  SeriesId Create(std::string name);

  /// True if the id refers to a registered series.
  bool Exists(SeriesId id) const;

  /// Inserts one sample. Out-of-order inserts are accepted (sorted insert
  /// into the owning chunk, unsealing it first when necessary); a duplicate
  /// timestamp replaces the old value.
  Status Insert(SeriesId id, Timestamp t, double value);

  /// Bulk-load an entire in-memory series. Sealing is deferred to the end
  /// of the load so an out-of-order batch does not reseal per sample; the
  /// series' shard lock is held exclusively for the whole load.
  Status InsertSeries(SeriesId id, const Series& series);

  /// Deletes every sample of `id` outside `keep` — the paper's R3 staleness
  /// eviction. Whole chunks outside the interval are dropped O(1) per chunk
  /// (sealed ones without decoding); boundary chunks are unsealed, trimmed,
  /// and resealed. Readers pinned to dropped chunks keep scanning the data
  /// they pinned (snapshot semantics).
  Result<size_t> Retain(SeriesId id, const Interval& keep);

  /// Number of samples stored for `id`.
  Result<size_t> SampleCount(SeriesId id) const;

  /// Streams every sample of `id` inside `interval`, time-ordered, into
  /// `fn(const Sample&)` without materializing the range; sealed chunks are
  /// decoded block-wise. This is the zero-copy read path Scan/Materialize/
  /// Aggregate/WindowAggregate ride on. The shard lock is held shared only
  /// while pinning the overlapping chunks; decoding and visiting run
  /// without any lock.
  template <typename Fn>
  Status ScanVisit(SeriesId id, const Interval& interval, Fn&& fn) const {
    return ScanVisit(id, interval, ScanPredicate{}, std::forward<Fn>(fn));
  }

  /// ScanVisit with a pushed-down value predicate: only matching samples
  /// are visited, and sealed chunks whose value zone map cannot intersect
  /// the bounds are skipped without decoding (stats().chunks_zonemap_skipped).
  ///
  /// With options().parallel_scan and ≥2 overlapping chunks, the per-chunk
  /// decode + filter fans out over the worker pool (one chunk = one
  /// morsel); the matched samples land in per-chunk buffers and `fn` is
  /// replayed over them in chunk order on the calling thread, so callbacks
  /// observe exactly the serial visit order and never run concurrently.
  template <typename Fn>
  Status ScanVisit(SeriesId id, const Interval& interval,
                   const ScanPredicate& predicate, Fn&& fn) const {
    auto view = PinView(id, interval, /*want_aggregates=*/false);
    if (!view.ok()) return view.status();
    m_.chunks_total->Add(view->chunk_count);
    if (ShouldParallelize(*view)) {
      std::vector<std::vector<Sample>> buffers;
      HYGRAPH_RETURN_IF_ERROR(
          ParallelScanChunks(*view, interval, predicate, &buffers));
      for (std::vector<Sample>& buffer : buffers) {
        for (const Sample& s : buffer) fn(s);
      }
      return Status::OK();
    }
    for (const PinnedChunk& chunk : view->chunks) {
      if (chunk.has_zone && !predicate.unbounded() &&
          !(chunk.min_v <= predicate.max_value &&
            chunk.max_v >= predicate.min_value)) {
        m_.chunks_zonemap_skipped->Increment();
        continue;
      }
      m_.chunks_scanned->Increment();
      HYGRAPH_RETURN_IF_ERROR(VisitPinned(chunk, interval, predicate, fn));
    }
    return Status::OK();
  }

  /// Number of samples of `id` in `interval` matching `predicate` — the
  /// pushed-down series-predicate primitive (HGQL's ts_count_between).
  /// Zone-map assisted twice over: non-intersecting sealed chunks are
  /// skipped, and sealed chunks whose whole value range satisfies the
  /// predicate are counted without decoding.
  Result<size_t> CountMatching(SeriesId id, const Interval& interval,
                               const ScanPredicate& predicate) const;

  /// All samples of `id` inside `interval`, time-ordered.
  Result<std::vector<Sample>> Scan(SeriesId id, const Interval& interval) const;

  /// Materializes `id`'s samples inside `interval` as a Series.
  Result<Series> Materialize(SeriesId id, const Interval& interval) const;

  /// Range aggregate using chunk pruning + the per-chunk aggregate cache.
  /// Serial and parallel runs produce bit-identical doubles: both reduce
  /// the same per-chunk AggState partials in chunk order (boundary chunks
  /// fold their clipped samples into a chunk-local partial first).
  Result<double> Aggregate(SeriesId id, const Interval& interval,
                           AggKind kind) const;

  /// Batch form of Aggregate for multi-entity queries: one result slot per
  /// id, in input order (per-series failures — e.g. an unknown id — land
  /// in their slot without failing the batch). With parallel_scan the
  /// batch fans out one morsel per series; each slot is bit-identical to
  /// what Aggregate(ids[i], ...) returns. Returns non-OK only for
  /// batch-wide governance violations (deadline, cancel, budget).
  Status AggregateMany(const std::vector<SeriesId>& ids,
                       const Interval& interval, AggKind kind,
                       std::vector<Result<double>>* out) const;

  /// Native tumbling-window aggregation (TimescaleDB's time_bucket): one
  /// output sample per non-empty window of `width` ms anchored at
  /// interval.start, stamped at the window start. Runs in a single pass
  /// over the overlapping chunks without materializing the range; when a
  /// window exactly covers one chunk, the chunk's cached partial answers
  /// it without touching its samples.
  Result<Series> WindowAggregate(SeriesId id, const Interval& interval,
                                 Duration width, AggKind kind) const;

  /// Name given at Create().
  Result<std::string> Name(SeriesId id) const;

  /// Ids of all registered series.
  std::vector<SeriesId> Ids() const;
  size_t series_count() const;

  /// Current sample-data footprint (hot vectors vs sealed encoded bytes).
  HypertableMemory MemoryUsage() const;

  /// An immutable snapshot of every series as of the call, sharing sealed
  /// chunk storage with this store by refcount (O(series), not O(samples):
  /// only hot vectors detach lazily on the origin's next write). The fork
  /// shares this store's metrics registry, so work done reading it still
  /// attributes to the origin; it must not outlive the origin.
  /// Analysis off inside: the fork is freshly constructed and not yet
  /// shared, so its map and shard locks are not taken (taking them would
  /// also trip the runtime rank checker: same rank as the origin's locks
  /// already held).
  std::shared_ptr<const HypertableStore> Fork() const
      HYGRAPH_NO_THREAD_SAFETY_ANALYSIS;

  /// Work counters accumulated since the last ResetStats(), assembled
  /// from the registry. Returned by value; binding to a const reference
  /// (lifetime extension) keeps old call sites source-compatible but the
  /// struct is a snapshot, not a live view.
  HypertableStats stats() const;
  void ResetStats();

  /// The registry holding this store's "hypertable.*" instruments (the
  /// injected one, or the privately owned default). Never null.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // -- cold tier (DESIGN.md §15) ---------------------------------------------

  /// Injects the cold tier sealed chunks spill to. Single-threaded setup:
  /// call before the store is shared (the pointer is read lock-free by
  /// every reader thereafter). Later Fork() snapshots see the same tier.
  void AttachColdTier(ColdTier* tier) { options_.cold_tier = tier; }

  /// Writes every RAM-resident sealed chunk to the attached tier and drops
  /// its encoded bytes (the zone map + aggregate stay resident, so pruning
  /// and covered aggregates never touch disk). Returns the number of
  /// chunks spilled. Holds each series' shard lock exclusively across that
  /// series' tier writes — acceptable because spilling happens at
  /// checkpoint frequency, not on the ingest path. No-op without a tier
  /// (or with compression off: nothing is ever sealed then).
  Result<size_t> SpillSealed();

  /// Re-attaches one spilled chunk at recovery: inserts a cold chunk with
  /// the given handle + metadata into `id`'s chunk list. Fails with
  /// kCorruption when a chunk with the same start already exists (the
  /// catalog and the snapshot disagree about who owns the range).
  Status AdoptColdChunk(SeriesId id, Timestamp chunk_start, ColdChunkId cold,
                        const ColdChunkMeta& meta);

  /// All samples of `id` that are NOT covered by a cold chunk (hot vectors
  /// plus RAM-resident sealed chunks), time-ordered. This is what a tiered
  /// checkpoint persists in the snapshot — cold chunks are persisted by
  /// the tier's segment files + catalog instead, which is what makes
  /// recovery O(hot data). Call after SpillSealed() for a minimal result.
  Result<std::vector<Sample>> MaterializeResident(SeriesId id) const;

 private:
  /// The immutable sealed form of a chunk. Published via shared_ptr and
  /// never mutated afterwards: readers that pinned it decode without locks
  /// while the owning series may have already unsealed, merged or dropped
  /// it (the pin keeps this object alive — the epoch is the refcount).
  struct SealedChunk {
    std::string encoded;  // chunk_codec bytes
    size_t count = 0;     // samples inside `encoded`
    // Zone map: exact first/last sample time and min/max finite value
    // (+inf/-inf when every value is NaN).
    Timestamp min_t = 0;
    Timestamp max_t = 0;
    double min_v = 0.0;
    double max_v = 0.0;
    bool all_finite = false;  // no NaN/±inf: [min_v, max_v] covers every value
    AggState agg;  // whole-chunk aggregate, computed at seal time
  };

  /// Lazily-filled whole-chunk aggregate of a hot chunk. Readers holding
  /// the shard lock *shared* may race to fill it, so the fill is
  /// double-checked under its own leaf mutex; `fresh` is the publication
  /// flag (release on fill, acquire on read). Per-chunk, so uninstrumented
  /// — but ranked: the fill may run while the shard lock is held.
  struct AggCache {
    Mutex mu{LockRank::kAggCache};
    std::atomic<bool> fresh{false};
    // Written under mu; read lock-free after observing `fresh` with acquire
    // order (readers doing so are NO_THREAD_SAFETY_ANALYSIS escapes).
    AggState agg HYGRAPH_GUARDED_BY(mu);
  };

  /// Chunk lifecycle: hot (mutable samples) -> sealed (immutable Gorilla
  /// bytes in RAM) -> cold (bytes only in the tier; RAM keeps the zone map
  /// + aggregate in cold_meta). Out-of-order writes walk the whole ladder
  /// back down: a cold chunk is pinned, decoded hot, and its tier record
  /// forgotten (the next checkpoint spills the merged result as a fresh
  /// record). Exactly one of {samples, sealed, cold} describes the data.
  struct Chunk {
    Timestamp start = 0;          // covers [start, start + chunk_duration)
    std::vector<Sample> samples;  // hot form; empty while sealed or cold
    std::shared_ptr<const SealedChunk> sealed;  // sealed form (resident)
    ColdChunkId cold = kInvalidColdChunk;       // cold form (spilled)
    std::shared_ptr<const ColdChunkMeta> cold_meta;  // set exactly when cold
    std::unique_ptr<AggCache> cache;  // present exactly while hot

    bool is_cold() const { return cold != kInvalidColdChunk; }
    bool is_sealed() const { return sealed != nullptr || is_cold(); }
    size_t size() const {
      if (sealed != nullptr) return sealed->count;
      if (is_cold()) return cold_meta->count;
      return samples.size();
    }
  };

  struct StoredSeries {
    StoredSeries(std::string series_name, const SyncInstruments& instruments)
        : name(std::move(series_name)),
          mu(LockRank::kSeriesShard, instruments),
          chunks(std::make_shared<std::vector<Chunk>>()),
          pins(std::make_shared<std::atomic<uint64_t>>(0)) {}
    ~StoredSeries() {
      // Release order pairs with the acquire load in MutableChunks: every
      // read this snapshot made of *chunks is ordered before the origin
      // writer sees the pin drop and reuses the buffers in place.
      if (holds_pin) pins->fetch_sub(1, std::memory_order_release);
    }

    const std::string name;  // immutable after Create — readable lock-free
    mutable SharedMutex mu;  // shard lock (rank kSeriesShard)
    // Sorted by start, non-overlapping. Held by shared_ptr so Fork() can
    // pin the whole vector in O(1); a writer finding it pinned
    // (pins > 0) detaches first (MutableChunks).
    std::shared_ptr<std::vector<Chunk>> chunks HYGRAPH_GUARDED_BY(mu);
    // Live Fork() snapshots sharing this `chunks` incarnation. The counter
    // travels with the incarnation: a detach gives the origin a fresh one,
    // so old snapshots keep pinning only the vector they hold. This exists
    // because shared_ptr::use_count() cannot decide "safe to mutate in
    // place": its load is relaxed, so a writer observing use_count()==1
    // after a snapshot died gets no happens-before edge over the dead
    // reader's accesses (the reason unique() was deprecated). Written under
    // mu except in the destructor, where exclusivity is structural.
    std::shared_ptr<std::atomic<uint64_t>> pins;
    bool holds_pin = false;  // fork copies drop one pin on destruction
  };

  /// One chunk as pinned by a reader: a refcounted reference to the
  /// immutable sealed object, a cold handle + metadata (the bytes are
  /// pinned lazily, only if the scan actually decodes — zone-map skips and
  /// covered-aggregate answers never touch the tier), or a copy of the hot
  /// samples overlapping the pin interval. Safe to read with no lock held.
  struct PinnedChunk {
    Timestamp start = 0;
    std::shared_ptr<const SealedChunk> sealed_ref;  // null unless sealed
    ColdChunkId cold_id = kInvalidColdChunk;        // non-zero when cold
    std::shared_ptr<const ColdChunkMeta> cold_meta; // set when cold
    const ColdTier* tier = nullptr;                 // for the lazy pin
    std::vector<Sample> hot;  // hot samples inside the pin interval
    size_t size = 0;          // total samples in the chunk
    Timestamp first_t = 0;    // true first/last sample time of the chunk
    Timestamp last_t = 0;
    // Value zone map, unified across sealed and cold (has_zone false for
    // hot chunks, whose samples are already materialized anyway).
    double min_v = 0.0;
    double max_v = 0.0;
    bool all_finite = false;
    bool has_zone = false;
    AggState agg;             // whole-chunk aggregate (when requested)
    bool agg_valid = false;

    bool sealed() const {
      return sealed_ref != nullptr || cold_id != kInvalidColdChunk;
    }
  };

  /// A consistent view of one series' chunks overlapping an interval,
  /// assembled under a shared hold of the shard lock and consumed with no
  /// lock at all.
  struct SeriesReadView {
    std::string name;
    size_t chunk_count = 0;  // all chunks in the series (for chunks_total)
    std::vector<PinnedChunk> chunks;  // overlapping, time-ordered
    size_t overlap_estimate = 0;      // sum of pinned chunk sizes
  };

  static Status NoSuchSeries(SeriesId id);

  /// Looks the series up under a shared hold of the map lock. The pointer
  /// stays valid for the store's lifetime (series are never destroyed, and
  /// the map stores stable heap nodes).
  StoredSeries* FindSeries(SeriesId id) const;

  /// Pins the chunks of `id` overlapping `interval` (see class comment).
  /// With `want_aggregates`, each pinned chunk also carries its whole-chunk
  /// AggState (sealed: precomputed at seal; hot: via the chunk's AggCache).
  Result<SeriesReadView> PinView(SeriesId id, const Interval& interval,
                                 bool want_aggregates) const;

  /// The series' chunk vector for mutation; requires the shard lock held
  /// exclusively. Detaches (copies) first when a Fork() pinned it.
  /// Analysis off inside: the detach copy reads the origin's AggCache::agg
  /// through the lock-free `fresh` acquire and seeds the fresh copy's
  /// cache before it is shared.
  std::vector<Chunk>& MutableChunks(StoredSeries& s) const
      HYGRAPH_REQUIRES(s.mu) HYGRAPH_NO_THREAD_SAFETY_ANALYSIS;

  Interval ChunkSpan(const Chunk& chunk) const {
    return Interval{chunk.start, chunk.start + options_.chunk_duration};
  }
  Timestamp ChunkStartFor(Timestamp t) const;
  /// Index of the chunk owning `t`, inserting a fresh one if needed.
  size_t ChunkIndexFor(std::vector<Chunk>& chunks, Timestamp t) const;
  /// Sorted insert of one sample into an (unsealed) chunk.
  static void InsertIntoChunk(Chunk& chunk, Timestamp t, double value);
  /// Unseal-if-needed + sorted insert; performs no sealing. Requires the
  /// shard lock held exclusively.
  Status InsertRaw(std::vector<Chunk>& chunks, Timestamp t, double value);

  /// Encodes a hot chunk into a fresh immutable SealedChunk (aggregate +
  /// zone map + Gorilla bytes) and drops the hot buffer.
  void Seal(Chunk& chunk) const;
  /// Decodes a sealed chunk back into its hot form. The old SealedChunk is
  /// released, not mutated — readers pinned to it are unaffected.
  Status Unseal(Chunk& chunk) const;
  /// Seals every chunk except the newest (when compression is on).
  void SealColdChunks(std::vector<Chunk>& chunks) const;

  /// Whole-chunk aggregate of a hot chunk via its AggCache; safe under a
  /// shared hold of the shard lock (double-checked fill). Analysis off:
  /// the fast path reads AggCache::agg lock-free after the `fresh`
  /// acquire-load (the fill itself runs under the cache mutex).
  static const AggState& HotAggregate(const Chunk& chunk)
      HYGRAPH_NO_THREAD_SAFETY_ANALYSIS;

  /// Per-thread reusable decode buffers for the sealed read path: Acquire
  /// pops (or creates) a cleared vector, Release returns it. A stack
  /// rather than a single slot because a visit callback may re-enter the
  /// store on the same thread (nested reads must not clobber the buffer
  /// the outer scan is iterating).
  static std::vector<Sample> AcquireScratch();
  static void ReleaseScratch(std::vector<Sample> scratch);

  /// True when a multi-chunk read should fan out over the worker pool:
  /// parallel_scan is on, at least two chunks overlap, and the process
  /// pool has at least one worker (HYGRAPH_THREADS=1 disables it).
  bool ShouldParallelize(const SeriesReadView& view) const;

  /// The morsel-driven sealed/hot chunk scan: one morsel per pinned chunk,
  /// decoded + clipped + predicate-filtered into buffers[i] (chunk order
  /// preserved; zone-map-skipped chunks leave their buffer empty). Workers
  /// observe deadline/cancel via CheckCrossThread per morsel; the decoded
  /// sample total is charged on the calling thread at the join barrier.
  Status ParallelScanChunks(const SeriesReadView& view,
                            const Interval& interval,
                            const ScanPredicate& predicate,
                            std::vector<std::vector<Sample>>* buffers) const;

  /// Runs `morsel(0..n-1)`, fanned over the worker pool when `parallel`
  /// (first error wins) or in index order inline otherwise. Either way
  /// every morsel is preceded by a CheckCrossThread deadline/cancel probe
  /// against `ctx` (when set), which is the thread-safe subset of the
  /// context — charging stays with the caller.
  Status RunChunkMorsels(size_t n, bool parallel, const QueryContext* ctx,
                         const std::function<Status(size_t)>& morsel) const;

  /// Aggregate's engine, reusable from worker threads: pins the view, runs
  /// one morsel per chunk (cached partial or clipped scan into a
  /// chunk-local AggState), merges the partials in chunk order, and
  /// finalizes. Never touches QueryContext::Current() — deadline/cancel
  /// probes go through `ctx`, and work units accumulate into `*work` for
  /// the caller to charge.
  Result<double> AggregateWithContext(SeriesId id, const Interval& interval,
                                      AggKind kind, const QueryContext* ctx,
                                      uint64_t* work) const;

  /// The shared per-chunk visit primitive every read path (serial or
  /// morsel) rides on: decodes a sealed chunk through the wide columnar
  /// decoder (DecodeChunkWide) into a reused per-thread scratch buffer —
  /// or takes the hot samples as-is — clips to `interval` by binary
  /// search, and evaluates `predicate` over the decoded column in one
  /// branch-light loop, calling `fn` per match. Thread-safe (instruments
  /// are relaxed atomics; the scratch is per-thread) and charge-free:
  /// decoded-sample units accumulate into `*work` for the caller to settle
  /// against its QueryContext — on the owning thread for serial scans, at
  /// the join barrier for parallel ones.
  template <typename Fn>
  Status ForEachChunkSample(const PinnedChunk& chunk, const Interval& interval,
                            const ScanPredicate& predicate, uint64_t* work,
                            Fn&& fn) const {
    if (chunk.sealed()) {
      // Cold chunks pin their bytes here — at decode time, not at PinView
      // time — so chunks answered from zone maps or cached aggregates
      // never touch the tier. Each morsel worker pins independently; the
      // tier's cache makes that concurrency-safe and eviction only drops
      // the cache's own reference (the shared_ptr below stays valid).
      std::shared_ptr<const std::string> cold_bytes;
      const std::string* encoded = nullptr;
      if (chunk.sealed_ref != nullptr) {
        encoded = &chunk.sealed_ref->encoded;
      } else {
        m_.cold_pins->Increment();
        auto pinned = chunk.tier->Pin(chunk.cold_id);
        if (!pinned.ok()) {
          // Propagate unwrapped: the tier's status carries the chunk id
          // and the failure class (kCorruption for CRC/frame damage).
          return pinned.status();
        }
        cold_bytes = std::move(*pinned);
        encoded = cold_bytes.get();
      }
      m_.chunks_decoded->Increment();
      std::vector<Sample> scratch = AcquireScratch();
      Status decode = DecodeChunkWide(*encoded, &scratch);
      if (!decode.ok()) {
        return Status::Internal("sealed chunk failed to decode: " +
                                decode.message());
      }
      auto lo = std::lower_bound(
          scratch.begin(), scratch.end(), interval.start,
          [](const Sample& s, Timestamp t) { return s.t < t; });
      auto hi = std::lower_bound(
          lo, scratch.end(), interval.end,
          [](const Sample& s, Timestamp t) { return s.t < t; });
      m_.samples_scanned->Add(static_cast<size_t>(hi - lo));
      *work += scratch.size();
      for (auto s = lo; s != hi; ++s) {
        if (predicate.Matches(s->value)) fn(*s);
      }
      ReleaseScratch(std::move(scratch));
      return Status::OK();
    }
    // Hot samples were already clipped to the pin interval; `interval` is
    // the same or narrower (WindowAggregate passes the clamped span).
    auto lo = std::lower_bound(
        chunk.hot.begin(), chunk.hot.end(), interval.start,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    auto hi = std::lower_bound(
        lo, chunk.hot.end(), interval.end,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    m_.samples_scanned->Add(static_cast<size_t>(hi - lo));
    *work += static_cast<uint64_t>(hi - lo);
    for (auto sample = lo; sample != hi; ++sample) {
      if (predicate.Matches(sample->value)) fn(*sample);
    }
    return Status::OK();
  }

  /// ForEachChunkSample plus governance settlement for single-threaded
  /// callers: the chunk's work is charged to the calling thread's
  /// QueryContext after the visit, so a scan cut by a deadline, Cancel(),
  /// or the points budget unwinds with the context's status at chunk
  /// granularity instead of running to completion.
  template <typename Fn>
  Status VisitPinned(const PinnedChunk& chunk, const Interval& interval,
                     const ScanPredicate& predicate, Fn&& fn) const {
    uint64_t work = 0;
    HYGRAPH_RETURN_IF_ERROR(ForEachChunkSample(chunk, interval, predicate,
                                               &work, std::forward<Fn>(fn)));
    QueryContext* ctx = QueryContext::Current();
    if (ctx != nullptr && work > 0) return ctx->Charge(work);
    return Status::OK();
  }

  /// Registry-backed work instruments, resolved once at construction and
  /// cached as raw pointers so the hot scan templates above pay only a
  /// relaxed atomic add per increment. All point into `*metrics_`.
  struct Instruments {
    obs::Counter* chunks_total = nullptr;
    obs::Counter* chunks_scanned = nullptr;
    obs::Counter* chunks_from_cache = nullptr;
    obs::Counter* samples_scanned = nullptr;
    obs::Counter* chunks_decoded = nullptr;
    obs::Counter* chunks_sealed = nullptr;
    obs::Counter* chunks_unsealed = nullptr;
    obs::Counter* bytes_raw = nullptr;
    obs::Counter* bytes_compressed = nullptr;
    obs::Counter* chunks_zonemap_skipped = nullptr;
    // Concurrency layer (shared "concurrency.*" namespace with the lock
    // wrappers' SyncInstruments).
    obs::Counter* chunk_pins = nullptr;         ///< sealed chunks pinned by reads
    obs::Counter* snapshot_pins = nullptr;      ///< Fork() calls
    obs::Counter* unseal_conflicts = nullptr;   ///< unseals while readers pinned
    obs::Counter* series_cow_copies = nullptr;  ///< writer detaches after Fork
    // Morsel-driven parallel read path.
    obs::Counter* morsels_dispatched = nullptr;  ///< morsels fanned out
    obs::Counter* morsels_stolen = nullptr;      ///< morsels run by pool workers
    obs::Counter* pool_busy_nanos = nullptr;     ///< worker time on this store
    obs::Counter* pool_threads = nullptr;        ///< pool size, set once
    // Cold tier.
    obs::Counter* cold_chunks_spilled = nullptr;  ///< chunks written to tier
    obs::Counter* cold_bytes_spilled = nullptr;   ///< encoded bytes spilled
    obs::Counter* cold_chunks_adopted = nullptr;  ///< recovery re-attachments
    obs::Counter* cold_pins = nullptr;            ///< lazy pins on scan paths
  };

  HypertableOptions options_;
  // Guards series_ and next_id_; exclusive only in Create(). Heap-held so
  // the store stays movable (single-threaded construction pattern; moving
  // a store with live readers is undefined, like any std container).
  // Rank kSeriesMap.
  std::unique_ptr<SharedMutex> map_mu_;
  // Heap nodes so StoredSeries (non-movable: owns a mutex) has a stable
  // address readers can hold across the map lock release.
  std::unordered_map<SeriesId, std::unique_ptr<StoredSeries>> series_
      HYGRAPH_GUARDED_BY(*map_mu_);
  SeriesId next_id_ HYGRAPH_GUARDED_BY(*map_mu_) = 0;
  // Owned when options.metrics was null; metrics_ and the cached
  // instrument pointers stay valid across moves because the registry is
  // heap-allocated.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments m_;
  SyncInstruments sync_;  // shared by every lock this store creates
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_HYPERTABLE_H_
