#ifndef HYGRAPH_TS_HYPERTABLE_H_
#define HYGRAPH_TS_HYPERTABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "ts/aggregate.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Configuration for HypertableStore.
struct HypertableOptions {
  /// Width of one time partition (chunk). TimescaleDB's default hypertable
  /// chunking is time-based; one day of 5-minute samples is 288 points.
  Duration chunk_duration = kDay;
  /// When true, each closed chunk keeps a decomposable aggregate (AggState)
  /// so range aggregates can skip scanning fully-covered chunks. This is the
  /// mechanism the ablation bench toggles.
  bool enable_chunk_cache = true;
};

/// Counters describing the work a query did — used by tests and by the
/// scalability bench to show chunk pruning is effective.
struct HypertableStats {
  size_t chunks_total = 0;
  size_t chunks_scanned = 0;     ///< chunks whose samples were touched
  size_t chunks_from_cache = 0;  ///< chunks answered from their aggregate cache
  size_t samples_scanned = 0;
};

/// A time-partitioned store for univariate series, modelled on TimescaleDB's
/// hypertable: each series is split into fixed-width time chunks; within a
/// chunk, samples are kept sorted; every chunk carries min/max time bounds
/// and (optionally) a cached decomposable aggregate.
///
/// Range scans prune to overlapping chunks and binary-search within them.
/// Range aggregates combine cached partials of fully-covered chunks with
/// scans of the (at most two) partially-covered boundary chunks — which is
/// why the polyglot architecture wins Table 1's aggregation-heavy queries.
class HypertableStore {
 public:
  explicit HypertableStore(HypertableOptions options = {});

  HypertableStore(const HypertableStore&) = delete;
  HypertableStore& operator=(const HypertableStore&) = delete;
  HypertableStore(HypertableStore&&) = default;
  HypertableStore& operator=(HypertableStore&&) = default;

  const HypertableOptions& options() const { return options_; }

  /// Registers a new series and returns its id.
  SeriesId Create(std::string name);

  /// True if the id refers to a registered series.
  bool Exists(SeriesId id) const { return series_.count(id) > 0; }

  /// Inserts one sample. Out-of-order inserts are accepted (sorted insert
  /// into the owning chunk); a duplicate timestamp replaces the old value.
  Status Insert(SeriesId id, Timestamp t, double value);

  /// Bulk-load an entire in-memory series.
  Status InsertSeries(SeriesId id, const Series& series);

  /// Deletes every sample of `id` outside `keep` — the paper's R3 staleness
  /// eviction. Whole chunks outside the interval are dropped O(1) per chunk.
  Result<size_t> Retain(SeriesId id, const Interval& keep);

  /// Number of samples stored for `id`.
  Result<size_t> SampleCount(SeriesId id) const;

  /// All samples of `id` inside `interval`, time-ordered.
  Result<std::vector<Sample>> Scan(SeriesId id, const Interval& interval) const;

  /// Materializes `id`'s samples inside `interval` as a Series.
  Result<Series> Materialize(SeriesId id, const Interval& interval) const;

  /// Range aggregate using chunk pruning + the per-chunk aggregate cache.
  Result<double> Aggregate(SeriesId id, const Interval& interval,
                           AggKind kind) const;

  /// Native tumbling-window aggregation (TimescaleDB's time_bucket): one
  /// output sample per non-empty window of `width` ms anchored at
  /// interval.start, stamped at the window start. Runs in a single pass
  /// over the overlapping chunks without materializing the range; when a
  /// window exactly covers one chunk, the chunk's cached partial answers
  /// it without touching its samples.
  Result<Series> WindowAggregate(SeriesId id, const Interval& interval,
                                 Duration width, AggKind kind) const;

  /// Name given at Create().
  Result<std::string> Name(SeriesId id) const;

  /// Ids of all registered series.
  std::vector<SeriesId> Ids() const;
  size_t series_count() const { return series_.size(); }

  /// Work counters accumulated since the last ResetStats().
  const HypertableStats& stats() const { return stats_; }
  void ResetStats();

 private:
  struct Chunk {
    Timestamp start = 0;  // covers [start, start + chunk_duration)
    std::vector<Sample> samples;
    // Lazily refreshed by ChunkAggregate(); mutable so a const Aggregate()
    // call can fill the cache.
    mutable AggState agg;
    mutable bool agg_dirty = true;
  };
  struct StoredSeries {
    std::string name;
    std::vector<Chunk> chunks;  // sorted by start, non-overlapping
  };

  Timestamp ChunkStartFor(Timestamp t) const;
  Chunk& ChunkFor(StoredSeries& s, Timestamp t);
  static const AggState& ChunkAggregate(const Chunk& chunk);

  HypertableOptions options_;
  std::unordered_map<SeriesId, StoredSeries> series_;
  SeriesId next_id_ = 0;
  mutable HypertableStats stats_;
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_HYPERTABLE_H_
