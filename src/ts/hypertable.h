#ifndef HYGRAPH_TS_HYPERTABLE_H_
#define HYGRAPH_TS_HYPERTABLE_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "ts/aggregate.h"
#include "ts/chunk_codec.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Configuration for HypertableStore.
struct HypertableOptions {
  /// Width of one time partition (chunk). TimescaleDB's default hypertable
  /// chunking is time-based; one day of 5-minute samples is 288 points.
  Duration chunk_duration = kDay;
  /// When true, each closed chunk keeps a decomposable aggregate (AggState)
  /// so range aggregates can skip scanning fully-covered chunks. This is the
  /// mechanism the ablation bench toggles.
  bool enable_chunk_cache = true;
  /// When true (default), only the newest chunk of each series stays hot
  /// (mutable `std::vector<Sample>`); every colder chunk is sealed into
  /// Gorilla-compressed bytes with a zone map (min/max time and value) and
  /// its cached aggregate. Out-of-order writes transparently unseal, merge
  /// and reseal. The compression ablation bench toggles this off.
  bool compress_sealed_chunks = true;
  /// Registry the store's "hypertable.*" work counters live in. When null
  /// (the default) the store creates and owns a private registry. A
  /// containing engine (PolyglotStore) passes its own registry so one
  /// snapshot covers the whole backend.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters describing the work a query did — used by tests and by the
/// scalability bench to show chunk pruning is effective. Assembled on
/// demand from the store's registry-backed "hypertable.*" counters (the
/// registry is the source of truth; this struct is its typed view).
struct HypertableStats {
  size_t chunks_total = 0;
  size_t chunks_scanned = 0;     ///< chunks whose samples were touched
  size_t chunks_from_cache = 0;  ///< chunks answered from their aggregate cache
  size_t samples_scanned = 0;
  /// Sealed chunks Gorilla-decoded on the read path (scans that could not
  /// be answered from zone maps or cached partials).
  size_t chunks_decoded = 0;
  // Compression lifecycle (cumulative since the last ResetStats()).
  size_t chunks_sealed = 0;    ///< seal operations performed
  size_t chunks_unsealed = 0;  ///< unseal operations (out-of-order writes)
  size_t bytes_raw = 0;         ///< raw sample bytes across those seals
  size_t bytes_compressed = 0;  ///< encoded bytes across those seals
  /// Sealed chunks skipped wholesale because their value zone map cannot
  /// intersect a pushed-down value predicate (the Q8 query shape).
  size_t chunks_zonemap_skipped = 0;
};

/// Current memory footprint of a HypertableStore's sample data, split by
/// chunk state. The compression acceptance metric is
/// sealed_bytes / sealed_samples.
struct HypertableMemory {
  size_t hot_samples = 0;
  size_t hot_bytes = 0;  ///< vector capacity, i.e. real footprint
  size_t sealed_samples = 0;
  size_t sealed_bytes = 0;  ///< encoded bytes
  size_t total_bytes() const { return hot_bytes + sealed_bytes; }
  double sealed_bytes_per_sample() const {
    return sealed_samples == 0
               ? 0.0
               : static_cast<double>(sealed_bytes) /
                     static_cast<double>(sealed_samples);
  }
};

/// A value predicate pushed down into a scan: keep samples with
/// min_value <= v <= max_value. Sealed chunks whose value zone map lies
/// entirely outside the bounds are skipped without decoding. The default
/// bounds are infinite, which matches every value (including NaN).
struct ScanPredicate {
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();

  bool unbounded() const {
    return min_value == -std::numeric_limits<double>::infinity() &&
           max_value == std::numeric_limits<double>::infinity();
  }
  /// NaN matches only an unbounded side, so bounded predicates never
  /// select NaN samples (SQL-style comparison semantics).
  bool Matches(double v) const {
    if (min_value != -std::numeric_limits<double>::infinity() &&
        !(v >= min_value)) {
      return false;
    }
    if (max_value != std::numeric_limits<double>::infinity() &&
        !(v <= max_value)) {
      return false;
    }
    return true;
  }
};

/// A time-partitioned store for univariate series, modelled on TimescaleDB's
/// hypertable: each series is split into fixed-width time chunks; within a
/// chunk, samples are kept sorted; every chunk carries min/max time bounds
/// and (optionally) a cached decomposable aggregate.
///
/// Storage follows the hot/sealed lifecycle of a real hypertable's
/// compressed columnar chunks: only the newest chunk of a series is a
/// mutable sample vector; colder chunks hold Gorilla-encoded bytes
/// (delta-of-delta timestamps + XOR values, see ts/chunk_codec.h) plus a
/// zone map and their cached aggregate. Reads stream through ScanVisit,
/// which decodes sealed chunks block-wise without materializing them;
/// range aggregates combine cached partials of fully-covered chunks with
/// streamed scans of the boundary chunks — which is why the polyglot
/// architecture wins Table 1's aggregation-heavy queries.
class HypertableStore {
 public:
  explicit HypertableStore(HypertableOptions options = {});

  HypertableStore(const HypertableStore&) = delete;
  HypertableStore& operator=(const HypertableStore&) = delete;
  HypertableStore(HypertableStore&&) = default;
  HypertableStore& operator=(HypertableStore&&) = default;

  const HypertableOptions& options() const { return options_; }

  /// Registers a new series and returns its id.
  SeriesId Create(std::string name);

  /// True if the id refers to a registered series.
  bool Exists(SeriesId id) const { return series_.count(id) > 0; }

  /// Inserts one sample. Out-of-order inserts are accepted (sorted insert
  /// into the owning chunk, unsealing it first when necessary); a duplicate
  /// timestamp replaces the old value.
  Status Insert(SeriesId id, Timestamp t, double value);

  /// Bulk-load an entire in-memory series. Sealing is deferred to the end
  /// of the load so an out-of-order batch does not reseal per sample.
  Status InsertSeries(SeriesId id, const Series& series);

  /// Deletes every sample of `id` outside `keep` — the paper's R3 staleness
  /// eviction. Whole chunks outside the interval are dropped O(1) per chunk
  /// (sealed ones without decoding); boundary chunks are unsealed, trimmed,
  /// and resealed.
  Result<size_t> Retain(SeriesId id, const Interval& keep);

  /// Number of samples stored for `id`.
  Result<size_t> SampleCount(SeriesId id) const;

  /// Streams every sample of `id` inside `interval`, time-ordered, into
  /// `fn(const Sample&)` without materializing the range; sealed chunks are
  /// decoded block-wise. This is the zero-copy read path Scan/Materialize/
  /// Aggregate/WindowAggregate ride on.
  template <typename Fn>
  Status ScanVisit(SeriesId id, const Interval& interval, Fn&& fn) const {
    return ScanVisit(id, interval, ScanPredicate{}, std::forward<Fn>(fn));
  }

  /// ScanVisit with a pushed-down value predicate: only matching samples
  /// are visited, and sealed chunks whose value zone map cannot intersect
  /// the bounds are skipped without decoding (stats().chunks_zonemap_skipped).
  template <typename Fn>
  Status ScanVisit(SeriesId id, const Interval& interval,
                   const ScanPredicate& predicate, Fn&& fn) const {
    auto it = series_.find(id);
    if (it == series_.end()) return NoSuchSeries(id);
    m_.chunks_total->Add(it->second.chunks.size());
    for (const Chunk& chunk : it->second.chunks) {
      if (chunk.start >= interval.end) break;  // chunks sorted by start
      if (!ChunkSpan(chunk).Overlaps(interval)) continue;
      if (chunk.sealed()) {
        // Zone maps: exact data bounds beat the nominal chunk span.
        if (chunk.max_t < interval.start || chunk.min_t >= interval.end) {
          continue;
        }
        if (!predicate.unbounded() &&
            !(chunk.min_v <= predicate.max_value &&
              chunk.max_v >= predicate.min_value)) {
          m_.chunks_zonemap_skipped->Increment();
          continue;
        }
      }
      m_.chunks_scanned->Increment();
      HYGRAPH_RETURN_IF_ERROR(VisitChunk(chunk, interval, predicate, fn));
    }
    return Status::OK();
  }

  /// Number of samples of `id` in `interval` matching `predicate` — the
  /// pushed-down series-predicate primitive (HGQL's ts_count_between).
  /// Zone-map assisted twice over: non-intersecting sealed chunks are
  /// skipped, and sealed chunks whose whole value range satisfies the
  /// predicate are counted without decoding.
  Result<size_t> CountMatching(SeriesId id, const Interval& interval,
                               const ScanPredicate& predicate) const;

  /// All samples of `id` inside `interval`, time-ordered.
  Result<std::vector<Sample>> Scan(SeriesId id, const Interval& interval) const;

  /// Materializes `id`'s samples inside `interval` as a Series.
  Result<Series> Materialize(SeriesId id, const Interval& interval) const;

  /// Range aggregate using chunk pruning + the per-chunk aggregate cache.
  Result<double> Aggregate(SeriesId id, const Interval& interval,
                           AggKind kind) const;

  /// Native tumbling-window aggregation (TimescaleDB's time_bucket): one
  /// output sample per non-empty window of `width` ms anchored at
  /// interval.start, stamped at the window start. Runs in a single pass
  /// over the overlapping chunks without materializing the range; when a
  /// window exactly covers one chunk, the chunk's cached partial answers
  /// it without touching its samples.
  Result<Series> WindowAggregate(SeriesId id, const Interval& interval,
                                 Duration width, AggKind kind) const;

  /// Name given at Create().
  Result<std::string> Name(SeriesId id) const;

  /// Ids of all registered series.
  std::vector<SeriesId> Ids() const;
  size_t series_count() const { return series_.size(); }

  /// Current sample-data footprint (hot vectors vs sealed encoded bytes).
  HypertableMemory MemoryUsage() const;

  /// Work counters accumulated since the last ResetStats(), assembled
  /// from the registry. Returned by value; binding to a const reference
  /// (lifetime extension) keeps old call sites source-compatible but the
  /// struct is a snapshot, not a live view.
  HypertableStats stats() const;
  void ResetStats();

  /// The registry holding this store's "hypertable.*" instruments (the
  /// injected one, or the privately owned default). Never null.
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Chunk {
    Timestamp start = 0;  // covers [start, start + chunk_duration)
    std::vector<Sample> samples;  // hot form; empty while sealed
    std::string encoded;          // sealed form (chunk_codec bytes)
    size_t sealed_count = 0;      // samples inside `encoded`
    // Zone map, valid while sealed: exact first/last sample time and
    // min/max finite value (+inf/-inf when every value is NaN).
    Timestamp min_t = 0;
    Timestamp max_t = 0;
    double min_v = 0.0;
    double max_v = 0.0;
    bool all_finite = false;  // no NaN/±inf: [min_v, max_v] covers every value
    // Lazily refreshed by ChunkAggregate(); mutable so a const Aggregate()
    // call can fill the cache. Seal() always leaves it fresh.
    mutable AggState agg;
    mutable bool agg_dirty = true;

    bool sealed() const { return sealed_count > 0; }
    size_t size() const { return sealed() ? sealed_count : samples.size(); }
  };
  struct StoredSeries {
    std::string name;
    std::vector<Chunk> chunks;  // sorted by start, non-overlapping
  };

  static Status NoSuchSeries(SeriesId id);

  Interval ChunkSpan(const Chunk& chunk) const {
    return Interval{chunk.start, chunk.start + options_.chunk_duration};
  }
  Timestamp ChunkStartFor(Timestamp t) const;
  /// Index of the chunk owning `t`, inserting a fresh one if needed.
  size_t ChunkIndexFor(StoredSeries& s, Timestamp t);
  /// Sorted insert of one sample into an (unsealed) chunk.
  static void InsertIntoChunk(Chunk& chunk, Timestamp t, double value);
  /// Unseal-if-needed + sorted insert; performs no sealing.
  Status InsertRaw(StoredSeries& s, Timestamp t, double value);

  /// Encodes a hot chunk: refreshes the aggregate cache, builds the zone
  /// map, swaps the sample vector for the encoded bytes.
  void Seal(Chunk& chunk);
  /// Decodes a sealed chunk back into its hot form (aggregate cache and
  /// zone map are kept; the zone map is simply unused while hot).
  Status Unseal(Chunk& chunk);
  /// Seals every chunk of `s` except the newest (when compression is on).
  void SealColdChunks(StoredSeries& s);

  /// Streams one chunk's samples in `interval` matching `predicate` into
  /// `fn`; decodes sealed chunks without materializing.
  template <typename Fn>
  Status VisitChunk(const Chunk& chunk, const Interval& interval,
                    const ScanPredicate& predicate, Fn&& fn) const {
    if (chunk.sealed()) {
      m_.chunks_decoded->Increment();
      ChunkDecoder decoder(chunk.encoded);
      Sample s;
      size_t visited = 0;
      while (decoder.Next(&s)) {
        if (s.t >= interval.end) break;
        if (s.t < interval.start) continue;
        ++visited;
        if (predicate.Matches(s.value)) fn(s);
      }
      m_.samples_scanned->Add(visited);
      if (!decoder.status().ok()) {
        return Status::Internal("sealed chunk failed to decode: " +
                                decoder.status().message());
      }
      return Status::OK();
    }
    auto lo = std::lower_bound(
        chunk.samples.begin(), chunk.samples.end(), interval.start,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    auto hi = std::lower_bound(
        lo, chunk.samples.end(), interval.end,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    m_.samples_scanned->Add(static_cast<size_t>(hi - lo));
    for (auto sample = lo; sample != hi; ++sample) {
      if (predicate.Matches(sample->value)) fn(*sample);
    }
    return Status::OK();
  }

  /// First/last sample time of a non-empty chunk (zone map when sealed).
  static Timestamp FirstT(const Chunk& chunk) {
    return chunk.sealed() ? chunk.min_t : chunk.samples.front().t;
  }
  static Timestamp LastT(const Chunk& chunk) {
    return chunk.sealed() ? chunk.max_t : chunk.samples.back().t;
  }

  static const AggState& ChunkAggregate(const Chunk& chunk);

  /// Registry-backed work instruments, resolved once at construction and
  /// cached as raw pointers so the hot scan templates above pay only a
  /// relaxed atomic add per increment. All point into `*metrics_`.
  struct Instruments {
    obs::Counter* chunks_total = nullptr;
    obs::Counter* chunks_scanned = nullptr;
    obs::Counter* chunks_from_cache = nullptr;
    obs::Counter* samples_scanned = nullptr;
    obs::Counter* chunks_decoded = nullptr;
    obs::Counter* chunks_sealed = nullptr;
    obs::Counter* chunks_unsealed = nullptr;
    obs::Counter* bytes_raw = nullptr;
    obs::Counter* bytes_compressed = nullptr;
    obs::Counter* chunks_zonemap_skipped = nullptr;
  };

  HypertableOptions options_;
  std::unordered_map<SeriesId, StoredSeries> series_;
  SeriesId next_id_ = 0;
  // Owned when options.metrics was null; metrics_ and the cached
  // instrument pointers stay valid across moves because the registry is
  // heap-allocated.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments m_;
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_HYPERTABLE_H_
