#ifndef HYGRAPH_TS_COLD_TIER_H_
#define HYGRAPH_TS_COLD_TIER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "ts/aggregate.h"

namespace hygraph::ts {

/// Process-unique handle to one chunk spilled to the cold tier. 0 is never
/// a valid handle (a Chunk with cold == kInvalidColdChunk is resident).
using ColdChunkId = uint64_t;
inline constexpr ColdChunkId kInvalidColdChunk = 0;

/// Everything the hypertable keeps in RAM about a spilled chunk: the zone
/// map (exact time bounds + value bounds) and the whole-chunk aggregate,
/// exactly the fields a SealedChunk carries minus the encoded bytes. With
/// this, zone-map pruning, covered-aggregate answers and CountMatching's
/// whole-chunk fast path never touch the disk — only a scan that must
/// decode the samples pins the bytes through ColdTier::Pin.
struct ColdChunkMeta {
  size_t count = 0;          ///< samples inside the encoded payload
  Timestamp min_t = 0;       ///< exact first sample time
  Timestamp max_t = 0;       ///< exact last sample time
  double min_v = 0.0;        ///< value zone map (see SealedChunk)
  double max_v = 0.0;
  bool all_finite = false;   ///< no NaN/±inf: [min_v, max_v] covers all
  size_t encoded_size = 0;   ///< payload bytes on disk (MemoryUsage)
  AggState agg;              ///< whole-chunk aggregate from seal time
};

/// The storage interface the hypertable spills sealed chunks through. The
/// ts layer cannot depend on the storage layer (layering: ts -> sync/obs/
/// common only), so the disk-backed implementation (storage::SegmentStore)
/// is injected via HypertableStore::AttachColdTier — dependency inversion,
/// same shape as Env underneath the durability layer.
///
/// Contract:
///   * Put durably appends an encoded (Gorilla) chunk and returns its
///     handle. Bytes are guaranteed on disk only after the owner's sync
///     point (checkpoint protocol, DESIGN.md §15) — the caller keeps the
///     chunk recoverable from snapshot + WAL until then.
///   * Pin returns the encoded bytes, via the implementation's fixed-budget
///     chunk cache: a hit is RAM-speed, a miss loads from disk and verifies
///     the record's CRC frame. The returned shared_ptr keeps the bytes
///     alive regardless of cache eviction — eviction only drops the
///     cache's own reference, so in-flight parallel scans are never
///     invalidated (refcount-safe, mirroring SealedChunk pinning).
///   * Forget removes the handle from the live set (the next catalog write
///     omits it) but the record stays pinnable for the process lifetime:
///     readers holding a PinnedChunk over an unsealed-or-retained cold
///     chunk keep their snapshot semantics.
///
/// Thread safety: all three methods are safe to call concurrently; Pin is
/// called from parallel scan morsels. Implementations rank their internal
/// lock at LockRank::kColdTier (above the series shard lock, below the env
/// leaf).
class ColdTier {
 public:
  virtual ~ColdTier();

  virtual Result<ColdChunkId> Put(const std::string& series_name,
                                  Timestamp chunk_start,
                                  const ColdChunkMeta& meta,
                                  const std::string& encoded) = 0;

  virtual Result<std::shared_ptr<const std::string>> Pin(
      ColdChunkId id) const = 0;

  virtual void Forget(ColdChunkId id) = 0;
};

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_COLD_TIER_H_
