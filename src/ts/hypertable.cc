#include "ts/hypertable.h"

#include <algorithm>

namespace hygraph::ts {

namespace {

Status NoSuchSeries(SeriesId id) {
  return Status::NotFound("no series with id " + std::to_string(id));
}

}  // namespace

HypertableStore::HypertableStore(HypertableOptions options)
    : options_(options) {
  if (options_.chunk_duration <= 0) options_.chunk_duration = kDay;
}

SeriesId HypertableStore::Create(std::string name) {
  const SeriesId id = next_id_++;
  series_.emplace(id, StoredSeries{std::move(name), {}});
  return id;
}

Timestamp HypertableStore::ChunkStartFor(Timestamp t) const {
  const Duration d = options_.chunk_duration;
  Timestamp q = t / d;
  if (t < 0 && t % d != 0) --q;  // floor division for negative times
  return q * d;
}

HypertableStore::Chunk& HypertableStore::ChunkFor(StoredSeries& s,
                                                  Timestamp t) {
  const Timestamp start = ChunkStartFor(t);
  auto it = std::lower_bound(
      s.chunks.begin(), s.chunks.end(), start,
      [](const Chunk& c, Timestamp st) { return c.start < st; });
  if (it != s.chunks.end() && it->start == start) return *it;
  it = s.chunks.insert(it, Chunk{});
  it->start = start;
  return *it;
}

const AggState& HypertableStore::ChunkAggregate(const Chunk& chunk) {
  if (chunk.agg_dirty) {
    chunk.agg = AggState{};
    for (const Sample& s : chunk.samples) chunk.agg.Add(s);
    chunk.agg_dirty = false;
  }
  return chunk.agg;
}

Status HypertableStore::Insert(SeriesId id, Timestamp t, double value) {
  auto it = series_.find(id);
  if (it == series_.end()) return NoSuchSeries(id);
  Chunk& chunk = ChunkFor(it->second, t);
  auto pos = std::lower_bound(
      chunk.samples.begin(), chunk.samples.end(), t,
      [](const Sample& s, Timestamp ts) { return s.t < ts; });
  if (pos != chunk.samples.end() && pos->t == t) {
    pos->value = value;
  } else {
    chunk.samples.insert(pos, Sample{t, value});
  }
  chunk.agg_dirty = true;
  return Status::OK();
}

Status HypertableStore::InsertSeries(SeriesId id, const Series& series) {
  auto it = series_.find(id);
  if (it == series_.end()) return NoSuchSeries(id);
  for (const Sample& s : series.samples()) {
    HYGRAPH_RETURN_IF_ERROR(Insert(id, s.t, s.value));
  }
  return Status::OK();
}

Result<size_t> HypertableStore::Retain(SeriesId id, const Interval& keep) {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t removed = 0;
  auto& chunks = it->second.chunks;
  std::vector<Chunk> kept;
  kept.reserve(chunks.size());
  for (Chunk& chunk : chunks) {
    const Interval chunk_span{chunk.start,
                              chunk.start + options_.chunk_duration};
    if (!chunk_span.Overlaps(keep)) {
      removed += chunk.samples.size();
      continue;  // drop the whole chunk
    }
    if (keep.ContainsInterval(chunk_span)) {
      kept.push_back(std::move(chunk));
      continue;  // fully inside, untouched
    }
    const size_t before = chunk.samples.size();
    std::erase_if(chunk.samples,
                  [&keep](const Sample& s) { return !keep.Contains(s.t); });
    removed += before - chunk.samples.size();
    chunk.agg_dirty = true;
    if (!chunk.samples.empty()) kept.push_back(std::move(chunk));
  }
  chunks = std::move(kept);
  return removed;
}

Result<size_t> HypertableStore::SampleCount(SeriesId id) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t n = 0;
  for (const Chunk& c : it->second.chunks) n += c.samples.size();
  return n;
}

Result<std::vector<Sample>> HypertableStore::Scan(
    SeriesId id, const Interval& interval) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  std::vector<Sample> out;
  stats_.chunks_total += it->second.chunks.size();
  for (const Chunk& chunk : it->second.chunks) {
    const Interval chunk_span{chunk.start,
                              chunk.start + options_.chunk_duration};
    if (!chunk_span.Overlaps(interval)) continue;
    ++stats_.chunks_scanned;
    auto lo = std::lower_bound(
        chunk.samples.begin(), chunk.samples.end(), interval.start,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    auto hi = std::lower_bound(
        lo, chunk.samples.end(), interval.end,
        [](const Sample& s, Timestamp t) { return s.t < t; });
    stats_.samples_scanned += static_cast<size_t>(hi - lo);
    out.insert(out.end(), lo, hi);
  }
  return out;
}

Result<Series> HypertableStore::Materialize(SeriesId id,
                                            const Interval& interval) const {
  auto samples = Scan(id, interval);
  if (!samples.ok()) return samples.status();
  auto name = Name(id);
  Series s(name.ok() ? *name : "ts#" + std::to_string(id));
  for (const Sample& sample : *samples) {
    HYGRAPH_RETURN_IF_ERROR(s.Append(sample.t, sample.value));
  }
  return s;
}

Result<double> HypertableStore::Aggregate(SeriesId id,
                                          const Interval& interval,
                                          AggKind kind) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  AggState total;
  stats_.chunks_total += it->second.chunks.size();
  for (const Chunk& chunk : it->second.chunks) {
    const Interval chunk_span{chunk.start,
                              chunk.start + options_.chunk_duration};
    if (!chunk_span.Overlaps(interval)) continue;
    if (options_.enable_chunk_cache &&
        interval.ContainsInterval(chunk_span)) {
      total.Merge(ChunkAggregate(chunk));
      ++stats_.chunks_from_cache;
      continue;
    }
    ++stats_.chunks_scanned;
    for (const Sample& s : chunk.samples) {
      if (interval.Contains(s.t)) {
        total.Add(s);
        ++stats_.samples_scanned;
      }
    }
  }
  return total.Finalize(kind);
}

Result<Series> HypertableStore::WindowAggregate(SeriesId id,
                                                const Interval& interval,
                                                Duration width,
                                                AggKind kind) const {
  if (width <= 0) {
    return Status::InvalidArgument("window width must be positive");
  }
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  auto name = Name(id);
  Series out(name.ok() ? *name + "_" + AggKindName(kind)
                       : std::string(AggKindName(kind)));
  // Clamp the sweep to the data actually present.
  Timestamp data_start = kMaxTimestamp;
  Timestamp data_end = kMinTimestamp;
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.samples.empty()) continue;
    data_start = std::min(data_start, chunk.samples.front().t);
    data_end = std::max(data_end, chunk.samples.back().t + 1);
  }
  const Interval span = interval.Intersect(Interval{data_start, data_end});
  if (span.empty()) return out;
  // Grid anchored at interval.start (matching ts::WindowAggregate).
  const Timestamp anchor =
      interval.start == kMinTimestamp ? span.start : interval.start;

  auto bucket_of = [&](Timestamp t) { return (t - anchor) / width; };
  int64_t current_bucket = -1;
  AggState state;
  auto flush = [&]() -> Status {
    if (current_bucket < 0 || state.count == 0) return Status::OK();
    auto value = state.Finalize(kind);
    if (!value.ok()) return value.status();
    return out.Append(anchor + current_bucket * width, *value);
  };

  stats_.chunks_total += it->second.chunks.size();
  for (const Chunk& chunk : it->second.chunks) {
    const Interval chunk_span{chunk.start,
                              chunk.start + options_.chunk_duration};
    if (!chunk_span.Overlaps(span) || chunk.samples.empty()) continue;
    // Fast path: the chunk lies entirely within one bucket that also lies
    // inside the requested interval — its cached partial stands in for all
    // of its samples (classic continuous-aggregate reuse when width is a
    // multiple of the chunk duration and grids align).
    const Timestamp first_t = chunk.samples.front().t;
    const Timestamp last_t = chunk.samples.back().t;
    if (options_.enable_chunk_cache && span.Contains(first_t) &&
        span.Contains(last_t) && bucket_of(first_t) == bucket_of(last_t)) {
      const int64_t bucket = bucket_of(first_t);
      if (bucket != current_bucket) {
        HYGRAPH_RETURN_IF_ERROR(flush());
        current_bucket = bucket;
        state = AggState{};
      }
      state.Merge(ChunkAggregate(chunk));
      ++stats_.chunks_from_cache;
      continue;
    }
    ++stats_.chunks_scanned;
    for (const Sample& s : chunk.samples) {
      if (!span.Contains(s.t)) continue;
      ++stats_.samples_scanned;
      const int64_t bucket = bucket_of(s.t);
      if (bucket != current_bucket) {
        HYGRAPH_RETURN_IF_ERROR(flush());
        current_bucket = bucket;
        state = AggState{};
      }
      state.Add(s);
    }
  }
  HYGRAPH_RETURN_IF_ERROR(flush());
  return out;
}

Result<std::string> HypertableStore::Name(SeriesId id) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  return it->second.name;
}

std::vector<SeriesId> HypertableStore::Ids() const {
  std::vector<SeriesId> ids;
  ids.reserve(series_.size());
  for (const auto& [id, _] : series_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void HypertableStore::ResetStats() { stats_ = HypertableStats{}; }

}  // namespace hygraph::ts
