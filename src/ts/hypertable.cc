#include "ts/hypertable.h"

#include <algorithm>
#include <cmath>
#include <memory>

namespace hygraph::ts {

Status HypertableStore::NoSuchSeries(SeriesId id) {
  return Status::NotFound("no series with id " + std::to_string(id));
}

HypertableStore::HypertableStore(HypertableOptions options)
    : options_(options) {
  if (options_.chunk_duration <= 0) options_.chunk_duration = kDay;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.chunks_total = metrics_->counter("hypertable.chunks_total");
  m_.chunks_scanned = metrics_->counter("hypertable.chunks_scanned");
  m_.chunks_from_cache = metrics_->counter("hypertable.chunks_from_cache");
  m_.samples_scanned = metrics_->counter("hypertable.samples_scanned");
  m_.chunks_decoded = metrics_->counter("hypertable.chunks_decoded");
  m_.chunks_sealed = metrics_->counter("hypertable.chunks_sealed");
  m_.chunks_unsealed = metrics_->counter("hypertable.chunks_unsealed");
  m_.bytes_raw = metrics_->counter("hypertable.bytes_raw");
  m_.bytes_compressed = metrics_->counter("hypertable.bytes_compressed");
  m_.chunks_zonemap_skipped =
      metrics_->counter("hypertable.chunks_zonemap_skipped");
}

SeriesId HypertableStore::Create(std::string name) {
  const SeriesId id = next_id_++;
  series_.emplace(id, StoredSeries{std::move(name), {}});
  return id;
}

Timestamp HypertableStore::ChunkStartFor(Timestamp t) const {
  const Duration d = options_.chunk_duration;
  Timestamp q = t / d;
  if (t < 0 && t % d != 0) --q;  // floor division for negative times
  return q * d;
}

size_t HypertableStore::ChunkIndexFor(StoredSeries& s, Timestamp t) {
  const Timestamp start = ChunkStartFor(t);
  auto it = std::lower_bound(
      s.chunks.begin(), s.chunks.end(), start,
      [](const Chunk& c, Timestamp st) { return c.start < st; });
  if (it == s.chunks.end() || it->start != start) {
    it = s.chunks.insert(it, Chunk{});
    it->start = start;
  }
  return static_cast<size_t>(it - s.chunks.begin());
}

void HypertableStore::InsertIntoChunk(Chunk& chunk, Timestamp t,
                                      double value) {
  auto pos = std::lower_bound(
      chunk.samples.begin(), chunk.samples.end(), t,
      [](const Sample& s, Timestamp ts) { return s.t < ts; });
  if (pos != chunk.samples.end() && pos->t == t) {
    pos->value = value;
  } else {
    chunk.samples.insert(pos, Sample{t, value});
  }
  chunk.agg_dirty = true;
}

void HypertableStore::Seal(Chunk& chunk) {
  if (chunk.sealed() || chunk.samples.empty()) return;
  // One pass refreshes the aggregate cache and builds the zone map, so a
  // sealed chunk always answers covered aggregates without decoding.
  chunk.agg = AggState{};
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();
  bool all_finite = true;
  for (const Sample& s : chunk.samples) {
    chunk.agg.Add(s);
    if (std::isfinite(s.value)) {
      min_v = std::min(min_v, s.value);
      max_v = std::max(max_v, s.value);
    } else {
      all_finite = false;
      if (!std::isnan(s.value)) {  // ±inf participates in value ordering
        min_v = std::min(min_v, s.value);
        max_v = std::max(max_v, s.value);
      }
    }
  }
  chunk.agg_dirty = false;
  chunk.min_t = chunk.samples.front().t;
  chunk.max_t = chunk.samples.back().t;
  chunk.min_v = min_v;
  chunk.max_v = max_v;
  chunk.all_finite = all_finite;
  chunk.encoded = EncodeChunk(chunk.samples);
  chunk.encoded.shrink_to_fit();
  chunk.sealed_count = chunk.samples.size();
  m_.chunks_sealed->Increment();
  m_.bytes_raw->Add(chunk.samples.size() * sizeof(Sample));
  m_.bytes_compressed->Add(chunk.encoded.size());
  chunk.samples = std::vector<Sample>{};  // release the hot buffer
}

Status HypertableStore::Unseal(Chunk& chunk) {
  if (!chunk.sealed()) return Status::OK();
  auto samples = DecodeChunk(chunk.encoded);
  if (!samples.ok()) {
    return Status::Internal("sealed chunk failed to decode: " +
                            samples.status().message());
  }
  chunk.samples = std::move(*samples);
  chunk.encoded = std::string{};
  chunk.sealed_count = 0;
  m_.chunks_unsealed->Increment();
  m_.chunks_decoded->Increment();
  return Status::OK();
}

void HypertableStore::SealColdChunks(StoredSeries& s) {
  if (!options_.compress_sealed_chunks || s.chunks.empty()) return;
  for (size_t i = 0; i + 1 < s.chunks.size(); ++i) {
    Seal(s.chunks[i]);
  }
}

const AggState& HypertableStore::ChunkAggregate(const Chunk& chunk) {
  if (chunk.agg_dirty) {
    chunk.agg = AggState{};
    if (chunk.sealed()) {
      ChunkDecoder decoder(chunk.encoded);
      Sample s;
      while (decoder.Next(&s)) chunk.agg.Add(s);
    } else {
      for (const Sample& s : chunk.samples) chunk.agg.Add(s);
    }
    chunk.agg_dirty = false;
  }
  return chunk.agg;
}

Status HypertableStore::InsertRaw(StoredSeries& s, Timestamp t, double value) {
  Chunk& chunk = s.chunks[ChunkIndexFor(s, t)];
  if (chunk.sealed()) HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
  InsertIntoChunk(chunk, t, value);
  return Status::OK();
}

Status HypertableStore::Insert(SeriesId id, Timestamp t, double value) {
  auto it = series_.find(id);
  if (it == series_.end()) return NoSuchSeries(id);
  StoredSeries& s = it->second;
  const size_t chunks_before = s.chunks.size();
  const size_t idx = ChunkIndexFor(s, t);
  Chunk& chunk = s.chunks[idx];
  if (chunk.sealed()) HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
  InsertIntoChunk(chunk, t, value);
  if (!options_.compress_sealed_chunks) return Status::OK();
  // Keep the invariant "only the newest chunk is hot": an out-of-order
  // write into a cold chunk reseals it immediately, and opening a fresh
  // newest chunk seals whatever was hot before it.
  if (idx + 1 < s.chunks.size()) Seal(s.chunks[idx]);
  if (s.chunks.size() > chunks_before) SealColdChunks(s);
  return Status::OK();
}

Status HypertableStore::InsertSeries(SeriesId id, const Series& series) {
  auto it = series_.find(id);
  if (it == series_.end()) return NoSuchSeries(id);
  for (const Sample& s : series.samples()) {
    HYGRAPH_RETURN_IF_ERROR(InsertRaw(it->second, s.t, s.value));
  }
  SealColdChunks(it->second);
  return Status::OK();
}

Result<size_t> HypertableStore::Retain(SeriesId id, const Interval& keep) {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t removed = 0;
  auto& chunks = it->second.chunks;
  std::vector<Chunk> kept;
  kept.reserve(chunks.size());
  for (Chunk& chunk : chunks) {
    const Interval chunk_span = ChunkSpan(chunk);
    if (!chunk_span.Overlaps(keep)) {
      removed += chunk.size();  // drop the whole chunk, sealed or hot
      continue;
    }
    if (keep.ContainsInterval(chunk_span)) {
      kept.push_back(std::move(chunk));
      continue;  // fully inside, untouched
    }
    if (chunk.sealed()) {
      // The zone map resolves boundary chunks without decoding: all data
      // inside `keep` keeps the chunk intact, all data outside drops it.
      if (chunk.min_t >= keep.start && chunk.max_t < keep.end) {
        kept.push_back(std::move(chunk));
        continue;
      }
      if (chunk.max_t < keep.start || chunk.min_t >= keep.end) {
        removed += chunk.sealed_count;
        continue;
      }
      HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
    }
    const size_t before = chunk.samples.size();
    std::erase_if(chunk.samples,
                  [&keep](const Sample& s) { return !keep.Contains(s.t); });
    removed += before - chunk.samples.size();
    chunk.agg_dirty = true;
    if (!chunk.samples.empty()) kept.push_back(std::move(chunk));
  }
  chunks = std::move(kept);
  SealColdChunks(it->second);
  return removed;
}

Result<size_t> HypertableStore::SampleCount(SeriesId id) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t n = 0;
  for (const Chunk& c : it->second.chunks) n += c.size();
  return n;
}

Result<std::vector<Sample>> HypertableStore::Scan(
    SeriesId id, const Interval& interval) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t estimate = 0;
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.start >= interval.end) break;
    if (ChunkSpan(chunk).Overlaps(interval)) estimate += chunk.size();
  }
  std::vector<Sample> out;
  out.reserve(estimate);
  HYGRAPH_RETURN_IF_ERROR(ScanVisit(
      id, interval, [&out](const Sample& s) { out.push_back(s); }));
  return out;
}

Result<Series> HypertableStore::Materialize(SeriesId id,
                                            const Interval& interval) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  Series out(it->second.name);
  size_t estimate = 0;
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.start >= interval.end) break;
    if (ChunkSpan(chunk).Overlaps(interval)) estimate += chunk.size();
  }
  out.Reserve(estimate);
  Status append = Status::OK();
  HYGRAPH_RETURN_IF_ERROR(ScanVisit(id, interval, [&](const Sample& s) {
    if (append.ok()) append = out.Append(s.t, s.value);
  }));
  HYGRAPH_RETURN_IF_ERROR(append);
  return out;
}

Result<size_t> HypertableStore::CountMatching(
    SeriesId id, const Interval& interval,
    const ScanPredicate& predicate) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  size_t n = 0;
  m_.chunks_total->Add(it->second.chunks.size());
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.start >= interval.end) break;
    if (!ChunkSpan(chunk).Overlaps(interval) || chunk.size() == 0) continue;
    if (chunk.sealed()) {
      if (chunk.max_t < interval.start || chunk.min_t >= interval.end) {
        continue;
      }
      if (!predicate.unbounded() &&
          !(chunk.min_v <= predicate.max_value &&
            chunk.max_v >= predicate.min_value)) {
        m_.chunks_zonemap_skipped->Increment();
        continue;
      }
      // Whole-chunk match: every sample is inside the interval and the
      // zone's value range satisfies the predicate end to end.
      if (interval.Contains(chunk.min_t) && interval.Contains(chunk.max_t) &&
          chunk.all_finite && predicate.Matches(chunk.min_v) &&
          predicate.Matches(chunk.max_v)) {
        n += chunk.sealed_count;
        m_.chunks_from_cache->Increment();
        continue;
      }
    }
    m_.chunks_scanned->Increment();
    HYGRAPH_RETURN_IF_ERROR(
        VisitChunk(chunk, interval, predicate, [&n](const Sample&) { ++n; }));
  }
  return n;
}

Result<double> HypertableStore::Aggregate(SeriesId id,
                                          const Interval& interval,
                                          AggKind kind) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  AggState total;
  m_.chunks_total->Add(it->second.chunks.size());
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.start >= interval.end) break;
    if (!ChunkSpan(chunk).Overlaps(interval) || chunk.size() == 0) continue;
    // Zone-map coverage: the cached partial answers the chunk whenever the
    // interval covers its actual data span, even if the nominal chunk span
    // pokes out of the interval.
    if (options_.enable_chunk_cache && interval.Contains(FirstT(chunk)) &&
        interval.Contains(LastT(chunk))) {
      total.Merge(ChunkAggregate(chunk));
      m_.chunks_from_cache->Increment();
      continue;
    }
    m_.chunks_scanned->Increment();
    HYGRAPH_RETURN_IF_ERROR(VisitChunk(
        chunk, interval, ScanPredicate{},
        [&total](const Sample& s) { total.Add(s); }));
  }
  return total.Finalize(kind);
}

Result<Series> HypertableStore::WindowAggregate(SeriesId id,
                                                const Interval& interval,
                                                Duration width,
                                                AggKind kind) const {
  if (width <= 0) {
    return Status::InvalidArgument("window width must be positive");
  }
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  auto name = Name(id);
  Series out(name.ok() ? *name + "_" + AggKindName(kind)
                       : std::string(AggKindName(kind)));
  // Clamp the sweep to the data actually present (zone maps for sealed
  // chunks; no decoding).
  Timestamp data_start = kMaxTimestamp;
  Timestamp data_end = kMinTimestamp;
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.size() == 0) continue;
    data_start = std::min(data_start, FirstT(chunk));
    data_end = std::max(data_end, LastT(chunk) + 1);
  }
  const Interval span = interval.Intersect(Interval{data_start, data_end});
  if (span.empty()) return out;
  // Grid anchored at interval.start (matching ts::WindowAggregate).
  const Timestamp anchor =
      interval.start == kMinTimestamp ? span.start : interval.start;

  auto bucket_of = [&](Timestamp t) { return (t - anchor) / width; };
  int64_t current_bucket = -1;
  AggState state;
  auto flush = [&]() -> Status {
    if (current_bucket < 0 || state.count == 0) return Status::OK();
    auto value = state.Finalize(kind);
    if (!value.ok()) return value.status();
    return out.Append(anchor + current_bucket * width, *value);
  };

  m_.chunks_total->Add(it->second.chunks.size());
  for (const Chunk& chunk : it->second.chunks) {
    if (chunk.start >= span.end) break;
    if (!ChunkSpan(chunk).Overlaps(span) || chunk.size() == 0) continue;
    // Fast path: the chunk lies entirely within one bucket that also lies
    // inside the requested interval — its cached partial stands in for all
    // of its samples (classic continuous-aggregate reuse when width is a
    // multiple of the chunk duration and grids align).
    const Timestamp first_t = FirstT(chunk);
    const Timestamp last_t = LastT(chunk);
    if (options_.enable_chunk_cache && span.Contains(first_t) &&
        span.Contains(last_t) && bucket_of(first_t) == bucket_of(last_t)) {
      const int64_t bucket = bucket_of(first_t);
      if (bucket != current_bucket) {
        HYGRAPH_RETURN_IF_ERROR(flush());
        current_bucket = bucket;
        state = AggState{};
      }
      state.Merge(ChunkAggregate(chunk));
      m_.chunks_from_cache->Increment();
      continue;
    }
    m_.chunks_scanned->Increment();
    Status window_status = Status::OK();
    HYGRAPH_RETURN_IF_ERROR(
        VisitChunk(chunk, span, ScanPredicate{}, [&](const Sample& s) {
          if (!window_status.ok()) return;
          const int64_t bucket = bucket_of(s.t);
          if (bucket != current_bucket) {
            window_status = flush();
            current_bucket = bucket;
            state = AggState{};
          }
          if (window_status.ok()) state.Add(s);
        }));
    HYGRAPH_RETURN_IF_ERROR(window_status);
  }
  HYGRAPH_RETURN_IF_ERROR(flush());
  return out;
}

Result<std::string> HypertableStore::Name(SeriesId id) const {
  auto it = series_.find(id);
  if (it == series_.end()) return Status(NoSuchSeries(id));
  return it->second.name;
}

std::vector<SeriesId> HypertableStore::Ids() const {
  std::vector<SeriesId> ids;
  ids.reserve(series_.size());
  for (const auto& [id, _] : series_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

HypertableMemory HypertableStore::MemoryUsage() const {
  HypertableMemory m;
  for (const auto& [id, stored] : series_) {
    (void)id;
    for (const Chunk& chunk : stored.chunks) {
      if (chunk.sealed()) {
        m.sealed_samples += chunk.sealed_count;
        m.sealed_bytes += chunk.encoded.size();
      } else {
        m.hot_samples += chunk.samples.size();
        m.hot_bytes += chunk.samples.capacity() * sizeof(Sample);
      }
    }
  }
  return m;
}

HypertableStats HypertableStore::stats() const {
  HypertableStats s;
  s.chunks_total = m_.chunks_total->value();
  s.chunks_scanned = m_.chunks_scanned->value();
  s.chunks_from_cache = m_.chunks_from_cache->value();
  s.samples_scanned = m_.samples_scanned->value();
  s.chunks_decoded = m_.chunks_decoded->value();
  s.chunks_sealed = m_.chunks_sealed->value();
  s.chunks_unsealed = m_.chunks_unsealed->value();
  s.bytes_raw = m_.bytes_raw->value();
  s.bytes_compressed = m_.bytes_compressed->value();
  s.chunks_zonemap_skipped = m_.chunks_zonemap_skipped->value();
  return s;
}

void HypertableStore::ResetStats() {
  // Resets only this store's instruments, not the whole registry, which
  // may be shared with the enclosing backend.
  m_.chunks_total->Reset();
  m_.chunks_scanned->Reset();
  m_.chunks_from_cache->Reset();
  m_.samples_scanned->Reset();
  m_.chunks_decoded->Reset();
  m_.chunks_sealed->Reset();
  m_.chunks_unsealed->Reset();
  m_.bytes_raw->Reset();
  m_.bytes_compressed->Reset();
  m_.chunks_zonemap_skipped->Reset();
}

}  // namespace hygraph::ts
