#include "ts/hypertable.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "common/thread_pool.h"

namespace hygraph::ts {

namespace {
/// Per-thread stack of reusable decode buffers (see AcquireScratch).
thread_local std::vector<std::vector<Sample>> t_scratch_pool;
}  // namespace

std::vector<Sample> HypertableStore::AcquireScratch() {
  if (t_scratch_pool.empty()) return {};
  std::vector<Sample> scratch = std::move(t_scratch_pool.back());
  t_scratch_pool.pop_back();
  return scratch;
}

void HypertableStore::ReleaseScratch(std::vector<Sample> scratch) {
  // Keep the stack small: a deep nest leaves at most a handful of buffers
  // alive, and pathological callers should not pin memory forever.
  if (t_scratch_pool.size() < 8) {
    t_scratch_pool.push_back(std::move(scratch));
  }
}

bool HypertableStore::ShouldParallelize(const SeriesReadView& view) const {
  return options_.parallel_scan && view.chunks.size() >= 2 &&
         ThreadPool::Instance()->worker_count() > 0;
}

Status HypertableStore::RunChunkMorsels(
    size_t n, bool parallel, const QueryContext* ctx,
    const std::function<Status(size_t)>& morsel) const {
  const std::function<Status(size_t)> body = [&](size_t i) -> Status {
    if (ctx != nullptr) HYGRAPH_RETURN_IF_ERROR(ctx->CheckCrossThread());
    return morsel(i);
  };
  if (parallel) {
    ParallelForStats stats;
    stats.morsels_dispatched = m_.morsels_dispatched;
    stats.morsels_stolen = m_.morsels_stolen;
    stats.worker_busy_nanos = m_.pool_busy_nanos;
    return ThreadPool::Instance()->ParallelFor(
        n, options_.parallel_scan_cap, body, stats);
  }
  for (size_t i = 0; i < n; ++i) {
    HYGRAPH_RETURN_IF_ERROR(body(i));
  }
  return Status::OK();
}

Status HypertableStore::ParallelScanChunks(
    const SeriesReadView& view, const Interval& interval,
    const ScanPredicate& predicate,
    std::vector<std::vector<Sample>>* buffers) const {
  QueryContext* ctx = QueryContext::Current();
  const size_t n = view.chunks.size();
  buffers->clear();
  buffers->resize(n);
  std::vector<uint64_t> work(n, 0);
  const Status run =
      RunChunkMorsels(n, /*parallel=*/true, ctx, [&](size_t i) -> Status {
        const PinnedChunk& chunk = view.chunks[i];
        if (chunk.has_zone && !predicate.unbounded() &&
            !(chunk.min_v <= predicate.max_value &&
              chunk.max_v >= predicate.min_value)) {
          m_.chunks_zonemap_skipped->Increment();
          return Status::OK();
        }
        m_.chunks_scanned->Increment();
        std::vector<Sample>& out = (*buffers)[i];
        return ForEachChunkSample(chunk, interval, predicate, &work[i],
                                  [&out](const Sample& s) {
                                    out.push_back(s);
                                  });
      });
  uint64_t total = 0;
  for (uint64_t w : work) total += w;
  if (ctx != nullptr && total > 0) HYGRAPH_RETURN_IF_ERROR(ctx->Charge(total));
  return run;
}

Status HypertableStore::NoSuchSeries(SeriesId id) {
  return Status::NotFound("no series with id " + std::to_string(id));
}

HypertableStore::HypertableStore(HypertableOptions options)
    : options_(options), map_mu_(nullptr) {
  if (options_.chunk_duration <= 0) options_.chunk_duration = kDay;
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.chunks_total = metrics_->counter("hypertable.chunks_total");
  m_.chunks_scanned = metrics_->counter("hypertable.chunks_scanned");
  m_.chunks_from_cache = metrics_->counter("hypertable.chunks_from_cache");
  m_.samples_scanned = metrics_->counter("hypertable.samples_scanned");
  m_.chunks_decoded = metrics_->counter("hypertable.chunks_decoded");
  m_.chunks_sealed = metrics_->counter("hypertable.chunks_sealed");
  m_.chunks_unsealed = metrics_->counter("hypertable.chunks_unsealed");
  m_.bytes_raw = metrics_->counter("hypertable.bytes_raw");
  m_.bytes_compressed = metrics_->counter("hypertable.bytes_compressed");
  m_.chunks_zonemap_skipped =
      metrics_->counter("hypertable.chunks_zonemap_skipped");
  m_.chunk_pins = metrics_->counter("concurrency.chunk_pins");
  m_.snapshot_pins = metrics_->counter("concurrency.snapshot_pins");
  m_.unseal_conflicts = metrics_->counter("concurrency.chunk_unseal_conflicts");
  m_.series_cow_copies = metrics_->counter("concurrency.series_cow_copies");
  m_.morsels_dispatched = metrics_->counter("hypertable.morsels_dispatched");
  m_.morsels_stolen = metrics_->counter("hypertable.morsels_stolen");
  m_.cold_chunks_spilled = metrics_->counter("hypertable.cold_chunks_spilled");
  m_.cold_bytes_spilled = metrics_->counter("hypertable.cold_bytes_spilled");
  m_.cold_chunks_adopted = metrics_->counter("hypertable.cold_chunks_adopted");
  m_.cold_pins = metrics_->counter("hypertable.cold_pins");
  m_.pool_busy_nanos = metrics_->counter("concurrency.pool_busy_nanos");
  m_.pool_threads = metrics_->counter("concurrency.pool_threads");
  // A gauge in counter clothing, set once per registry: the pool's helper
  // count (0 = fan-outs run serially), so one metrics snapshot records the
  // concurrency every scan in this registry ran under.
  if (m_.pool_threads->value() == 0) {
    m_.pool_threads->Add(ThreadPool::Instance()->worker_count());
  }
  sync_ = SyncInstruments::ForRegistry(metrics_);
  map_mu_ = std::make_unique<SharedMutex>(LockRank::kSeriesMap, sync_);
}

SeriesId HypertableStore::Create(std::string name) {
  ExclusiveLock lock(*map_mu_);
  const SeriesId id = next_id_++;
  series_.emplace(id,
                  std::make_unique<StoredSeries>(std::move(name), sync_));
  return id;
}

HypertableStore::StoredSeries* HypertableStore::FindSeries(SeriesId id) const {
  SharedLock lock(*map_mu_);
  auto it = series_.find(id);
  return it == series_.end() ? nullptr : it->second.get();
}

bool HypertableStore::Exists(SeriesId id) const {
  return FindSeries(id) != nullptr;
}

size_t HypertableStore::series_count() const {
  SharedLock lock(*map_mu_);
  return series_.size();
}

Timestamp HypertableStore::ChunkStartFor(Timestamp t) const {
  const Duration d = options_.chunk_duration;
  Timestamp q = t / d;
  if (t < 0 && t % d != 0) --q;  // floor division for negative times
  return q * d;
}

std::vector<HypertableStore::Chunk>& HypertableStore::MutableChunks(
    StoredSeries& s) const {
  if (s.pins->load(std::memory_order_acquire) > 0) {
    // A live Fork() pinned this vector: detach. Sealed chunks share their
    // immutable payload by refcount; only hot vectors actually copy. The
    // old vector (and its caches) stays alive for the snapshot, which may
    // still be filling a cache concurrently — hence the fresh-flag
    // acquire before trusting a copied aggregate. Zero pins means every
    // snapshot of this incarnation is destroyed, and the acquire pairs
    // with the release decrement in ~StoredSeries, ordering all of a dead
    // snapshot's reads before this writer mutates the buffers in place.
    auto fresh = std::make_shared<std::vector<Chunk>>();
    fresh->reserve(s.chunks->size());
    for (const Chunk& chunk : *s.chunks) {
      Chunk copy;
      copy.start = chunk.start;
      copy.samples = chunk.samples;
      copy.sealed = chunk.sealed;
      copy.cold = chunk.cold;
      copy.cold_meta = chunk.cold_meta;
      if (chunk.cache != nullptr) {
        copy.cache = std::make_unique<AggCache>();
        if (chunk.cache->fresh.load(std::memory_order_acquire)) {
          copy.cache->agg = chunk.cache->agg;
          copy.cache->fresh.store(true, std::memory_order_release);
        }
      }
      fresh->push_back(std::move(copy));
    }
    s.chunks = std::move(fresh);
    s.pins = std::make_shared<std::atomic<uint64_t>>(0);
    m_.series_cow_copies->Increment();
  }
  return *s.chunks;
}

size_t HypertableStore::ChunkIndexFor(std::vector<Chunk>& chunks,
                                      Timestamp t) const {
  const Timestamp start = ChunkStartFor(t);
  auto it = std::lower_bound(
      chunks.begin(), chunks.end(), start,
      [](const Chunk& c, Timestamp st) { return c.start < st; });
  if (it == chunks.end() || it->start != start) {
    it = chunks.insert(it, Chunk{});
    it->start = start;
    it->cache = std::make_unique<AggCache>();
  }
  return static_cast<size_t>(it - chunks.begin());
}

void HypertableStore::InsertIntoChunk(Chunk& chunk, Timestamp t,
                                      double value) {
  auto pos = std::lower_bound(
      chunk.samples.begin(), chunk.samples.end(), t,
      [](const Sample& s, Timestamp ts) { return s.t < ts; });
  if (pos != chunk.samples.end() && pos->t == t) {
    pos->value = value;
  } else {
    chunk.samples.insert(pos, Sample{t, value});
  }
  // Relaxed is enough: the writer holds the shard lock exclusively, so no
  // reader can observe the flag until the lock is released (which orders).
  chunk.cache->fresh.store(false, std::memory_order_relaxed);
}

void HypertableStore::Seal(Chunk& chunk) const {
  if (chunk.is_sealed() || chunk.samples.empty()) return;
  // One pass computes the aggregate and builds the zone map, so a sealed
  // chunk always answers covered aggregates without decoding. The sealed
  // form is a fresh immutable object: readers pinned to a previous
  // incarnation keep decoding the bytes they pinned.
  auto sealed = std::make_shared<SealedChunk>();
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();
  bool all_finite = true;
  for (const Sample& s : chunk.samples) {
    sealed->agg.Add(s);
    if (std::isfinite(s.value)) {
      min_v = std::min(min_v, s.value);
      max_v = std::max(max_v, s.value);
    } else {
      all_finite = false;
      if (!std::isnan(s.value)) {  // ±inf participates in value ordering
        min_v = std::min(min_v, s.value);
        max_v = std::max(max_v, s.value);
      }
    }
  }
  sealed->min_t = chunk.samples.front().t;
  sealed->max_t = chunk.samples.back().t;
  sealed->min_v = min_v;
  sealed->max_v = max_v;
  sealed->all_finite = all_finite;
  sealed->encoded = EncodeChunk(chunk.samples);
  sealed->encoded.shrink_to_fit();
  sealed->count = chunk.samples.size();
  m_.chunks_sealed->Increment();
  m_.bytes_raw->Add(chunk.samples.size() * sizeof(Sample));
  m_.bytes_compressed->Add(sealed->encoded.size());
  chunk.sealed = std::move(sealed);
  chunk.samples = std::vector<Sample>{};  // release the hot buffer
  chunk.cache.reset();  // sealed chunks answer from sealed->agg
}

Status HypertableStore::Unseal(Chunk& chunk) const {
  if (!chunk.is_sealed()) return Status::OK();
  AggState sealed_agg;
  std::vector<Sample> samples;
  if (chunk.sealed != nullptr) {
    if (chunk.sealed.use_count() > 1) {
      // Readers are pinned to this sealed object; they keep the old bytes
      // (and see the pre-write state) while this series moves on.
      m_.unseal_conflicts->Increment();
    }
    const Status decode = DecodeChunkWide(chunk.sealed->encoded, &samples);
    if (!decode.ok()) {
      return Status::Internal("sealed chunk failed to decode: " +
                              decode.message());
    }
    sealed_agg = chunk.sealed->agg;
  } else {
    // Cold chunk: pin the bytes back out of the tier, decode, and forget
    // the record — it drops out of the next catalog, but stays pinnable so
    // readers holding it keep their snapshot. The on-disk record also
    // keeps a crash before the next checkpoint consistent: recovery
    // re-adopts it and replays the triggering write from the WAL.
    if (options_.cold_tier == nullptr) {
      return Status::Internal("cold chunk without an attached cold tier");
    }
    m_.cold_pins->Increment();
    auto pinned = options_.cold_tier->Pin(chunk.cold);
    if (!pinned.ok()) {
      // The tier's status already carries the chunk id and failure class
      // (kCorruption for CRC/frame damage) — propagate it unwrapped so
      // callers can tell media corruption from logic errors.
      return pinned.status();
    }
    const Status decode = DecodeChunkWide(**pinned, &samples);
    if (!decode.ok()) {
      return Status::Internal("cold chunk failed to decode: " +
                              decode.message());
    }
    sealed_agg = chunk.cold_meta->agg;
    options_.cold_tier->Forget(chunk.cold);
    chunk.cold = kInvalidColdChunk;
    chunk.cold_meta.reset();
  }
  chunk.samples = std::move(samples);
  chunk.cache = std::make_unique<AggCache>();
  {
    // The sealed aggregate covered exactly these samples; seed the hot
    // cache with it (the caller's insert will invalidate as needed). The
    // cache is brand new, so the fill lock is uncontended by construction.
    MutexLock fill_lock(chunk.cache->mu);
    chunk.cache->agg = sealed_agg;
  }
  chunk.cache->fresh.store(true, std::memory_order_release);
  chunk.sealed = nullptr;
  m_.chunks_unsealed->Increment();
  m_.chunks_decoded->Increment();
  return Status::OK();
}

void HypertableStore::SealColdChunks(std::vector<Chunk>& chunks) const {
  if (!options_.compress_sealed_chunks || chunks.empty()) return;
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    Seal(chunks[i]);
  }
}

const AggState& HypertableStore::HotAggregate(const Chunk& chunk) {
  AggCache& cache = *chunk.cache;
  if (!cache.fresh.load(std::memory_order_acquire)) {
    MutexLock fill_lock(cache.mu);
    if (!cache.fresh.load(std::memory_order_relaxed)) {
      AggState agg;
      for (const Sample& s : chunk.samples) agg.Add(s);
      cache.agg = agg;
      cache.fresh.store(true, std::memory_order_release);
    }
  }
  return cache.agg;
}

Result<HypertableStore::SeriesReadView> HypertableStore::PinView(
    SeriesId id, const Interval& interval, bool want_aggregates) const {
  const StoredSeries* s = FindSeries(id);
  if (s == nullptr) return Status(NoSuchSeries(id));
  SeriesReadView view;
  view.name = s->name;
  SharedLock lock(s->mu);
  const std::vector<Chunk>& chunks = *s->chunks;
  view.chunk_count = chunks.size();
  for (const Chunk& chunk : chunks) {
    if (chunk.start >= interval.end) break;  // chunks sorted by start
    if (!ChunkSpan(chunk).Overlaps(interval) || chunk.size() == 0) continue;
    if (chunk.sealed != nullptr &&
        (chunk.sealed->max_t < interval.start ||
         chunk.sealed->min_t >= interval.end)) {
      continue;  // exact data bounds beat the nominal chunk span
    }
    if (chunk.is_cold() &&
        (chunk.cold_meta->max_t < interval.start ||
         chunk.cold_meta->min_t >= interval.end)) {
      continue;  // cold zone map, same pruning without touching the tier
    }
    PinnedChunk p;
    p.start = chunk.start;
    p.size = chunk.size();
    if (chunk.sealed != nullptr) {
      p.sealed_ref = chunk.sealed;  // refcount pin; decoded outside the lock
      p.first_t = chunk.sealed->min_t;
      p.last_t = chunk.sealed->max_t;
      p.min_v = chunk.sealed->min_v;
      p.max_v = chunk.sealed->max_v;
      p.all_finite = chunk.sealed->all_finite;
      p.has_zone = true;
      if (want_aggregates) {
        p.agg = chunk.sealed->agg;
        p.agg_valid = true;
      }
      m_.chunk_pins->Increment();
    } else if (chunk.is_cold()) {
      // Only the handle + metadata are pinned here; the bytes are pinned
      // lazily by ForEachChunkSample, so zone-map-skipped and
      // aggregate-covered cold chunks never touch the tier.
      p.cold_id = chunk.cold;
      p.cold_meta = chunk.cold_meta;
      p.tier = options_.cold_tier;
      p.first_t = chunk.cold_meta->min_t;
      p.last_t = chunk.cold_meta->max_t;
      p.min_v = chunk.cold_meta->min_v;
      p.max_v = chunk.cold_meta->max_v;
      p.all_finite = chunk.cold_meta->all_finite;
      p.has_zone = true;
      if (want_aggregates) {
        p.agg = chunk.cold_meta->agg;
        p.agg_valid = true;
      }
      m_.chunk_pins->Increment();
    } else {
      p.first_t = chunk.samples.front().t;
      p.last_t = chunk.samples.back().t;
      auto lo = std::lower_bound(
          chunk.samples.begin(), chunk.samples.end(), interval.start,
          [](const Sample& sample, Timestamp t) { return sample.t < t; });
      auto hi = std::lower_bound(
          lo, chunk.samples.end(), interval.end,
          [](const Sample& sample, Timestamp t) { return sample.t < t; });
      p.hot.assign(lo, hi);
      if (want_aggregates) {
        p.agg = HotAggregate(chunk);
        p.agg_valid = true;
      }
    }
    view.overlap_estimate += p.size;
    view.chunks.push_back(std::move(p));
  }
  return view;
}

Status HypertableStore::InsertRaw(std::vector<Chunk>& chunks, Timestamp t,
                                  double value) {
  Chunk& chunk = chunks[ChunkIndexFor(chunks, t)];
  if (chunk.is_sealed()) HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
  InsertIntoChunk(chunk, t, value);
  return Status::OK();
}

Status HypertableStore::Insert(SeriesId id, Timestamp t, double value) {
  StoredSeries* s = FindSeries(id);
  if (s == nullptr) return NoSuchSeries(id);
  ExclusiveLock lock(s->mu);
  std::vector<Chunk>& chunks = MutableChunks(*s);
  const size_t chunks_before = chunks.size();
  const size_t idx = ChunkIndexFor(chunks, t);
  Chunk& chunk = chunks[idx];
  if (chunk.is_sealed()) HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
  InsertIntoChunk(chunk, t, value);
  if (!options_.compress_sealed_chunks) return Status::OK();
  // Keep the invariant "only the newest chunk is hot": an out-of-order
  // write into a cold chunk reseals it immediately, and opening a fresh
  // newest chunk seals whatever was hot before it.
  if (idx + 1 < chunks.size()) Seal(chunks[idx]);
  if (chunks.size() > chunks_before) SealColdChunks(chunks);
  return Status::OK();
}

Status HypertableStore::InsertSeries(SeriesId id, const Series& series) {
  StoredSeries* stored = FindSeries(id);
  if (stored == nullptr) return NoSuchSeries(id);
  ExclusiveLock lock(stored->mu);
  std::vector<Chunk>& chunks = MutableChunks(*stored);
  for (const Sample& s : series.samples()) {
    HYGRAPH_RETURN_IF_ERROR(InsertRaw(chunks, s.t, s.value));
  }
  SealColdChunks(chunks);
  return Status::OK();
}

Result<size_t> HypertableStore::Retain(SeriesId id, const Interval& keep) {
  StoredSeries* stored = FindSeries(id);
  if (stored == nullptr) return Status(NoSuchSeries(id));
  ExclusiveLock lock(stored->mu);
  std::vector<Chunk>& chunks = MutableChunks(*stored);
  size_t removed = 0;
  std::vector<Chunk> kept;
  kept.reserve(chunks.size());
  // A cold chunk dropped wholesale releases its tier record (the next
  // catalog omits it); pinned readers keep the bytes they pinned.
  auto drop_cold_record = [this](Chunk& chunk) {
    if (chunk.is_cold() && options_.cold_tier != nullptr) {
      options_.cold_tier->Forget(chunk.cold);
    }
  };
  for (Chunk& chunk : chunks) {
    const Interval chunk_span = ChunkSpan(chunk);
    if (!chunk_span.Overlaps(keep)) {
      removed += chunk.size();  // drop the whole chunk, sealed or hot
      drop_cold_record(chunk);
      continue;
    }
    if (keep.ContainsInterval(chunk_span)) {
      kept.push_back(std::move(chunk));
      continue;  // fully inside, untouched
    }
    if (chunk.is_sealed()) {
      // The zone map resolves boundary chunks without decoding (cold
      // chunks included — their zone map is resident): all data inside
      // `keep` keeps the chunk intact, all data outside drops it.
      const Timestamp data_min =
          chunk.sealed != nullptr ? chunk.sealed->min_t : chunk.cold_meta->min_t;
      const Timestamp data_max =
          chunk.sealed != nullptr ? chunk.sealed->max_t : chunk.cold_meta->max_t;
      if (data_min >= keep.start && data_max < keep.end) {
        kept.push_back(std::move(chunk));
        continue;
      }
      if (data_max < keep.start || data_min >= keep.end) {
        removed += chunk.size();
        drop_cold_record(chunk);
        continue;
      }
      HYGRAPH_RETURN_IF_ERROR(Unseal(chunk));
    }
    const size_t before = chunk.samples.size();
    std::erase_if(chunk.samples,
                  [&keep](const Sample& s) { return !keep.Contains(s.t); });
    removed += before - chunk.samples.size();
    chunk.cache->fresh.store(false, std::memory_order_relaxed);
    if (!chunk.samples.empty()) kept.push_back(std::move(chunk));
  }
  chunks = std::move(kept);
  SealColdChunks(chunks);
  return removed;
}

Result<size_t> HypertableStore::SpillSealed() {
  if (options_.cold_tier == nullptr) return size_t{0};
  size_t spilled = 0;
  for (SeriesId id : Ids()) {
    StoredSeries* s = FindSeries(id);
    if (s == nullptr) continue;  // raced with nothing today, but stay safe
    ExclusiveLock lock(s->mu);
    std::vector<Chunk>& chunks = MutableChunks(*s);
    for (Chunk& chunk : chunks) {
      if (chunk.sealed == nullptr) continue;  // hot or already cold
      const SealedChunk& sealed = *chunk.sealed;
      auto meta = std::make_shared<ColdChunkMeta>();
      meta->count = sealed.count;
      meta->min_t = sealed.min_t;
      meta->max_t = sealed.max_t;
      meta->min_v = sealed.min_v;
      meta->max_v = sealed.max_v;
      meta->all_finite = sealed.all_finite;
      meta->encoded_size = sealed.encoded.size();
      meta->agg = sealed.agg;
      // Disk write under the exclusive shard lock: acceptable at
      // checkpoint frequency, and it keeps spill atomic against readers
      // (a PinView sees either the sealed ref or the cold handle, never
      // a gap).
      auto put = options_.cold_tier->Put(s->name, chunk.start, *meta,
                                         sealed.encoded);
      if (!put.ok()) return put.status();
      m_.cold_chunks_spilled->Increment();
      m_.cold_bytes_spilled->Add(meta->encoded_size);
      chunk.cold = *put;
      chunk.cold_meta = std::move(meta);
      chunk.sealed.reset();  // the RAM copy of the bytes drops here
      ++spilled;
    }
  }
  return spilled;
}

Status HypertableStore::AdoptColdChunk(SeriesId id, Timestamp chunk_start,
                                       ColdChunkId cold,
                                       const ColdChunkMeta& meta) {
  if (cold == kInvalidColdChunk) {
    return Status::InvalidArgument("adopting an invalid cold chunk handle");
  }
  StoredSeries* s = FindSeries(id);
  if (s == nullptr) return NoSuchSeries(id);
  ExclusiveLock lock(s->mu);
  std::vector<Chunk>& chunks = MutableChunks(*s);
  auto it = std::lower_bound(
      chunks.begin(), chunks.end(), chunk_start,
      [](const Chunk& c, Timestamp st) { return c.start < st; });
  if (it != chunks.end() && it->start == chunk_start) {
    // Recovery adopts the catalog before replaying the WAL, so the slot
    // must be empty; an occupied slot means the catalog and snapshot
    // disagree about who owns this chunk.
    return Status::Corruption("cold chunk overlaps a resident chunk");
  }
  Chunk chunk;
  chunk.start = chunk_start;
  chunk.cold = cold;
  chunk.cold_meta = std::make_shared<ColdChunkMeta>(meta);
  chunks.insert(it, std::move(chunk));
  m_.cold_chunks_adopted->Increment();
  return Status::OK();
}

Result<std::vector<Sample>> HypertableStore::MaterializeResident(
    SeriesId id) const {
  const StoredSeries* s = FindSeries(id);
  if (s == nullptr) return Status(NoSuchSeries(id));
  SharedLock lock(s->mu);
  std::vector<Sample> out;
  for (const Chunk& chunk : *s->chunks) {
    if (chunk.is_cold()) continue;  // durability owned by the cold tier
    if (chunk.sealed != nullptr) {
      std::vector<Sample> scratch;
      const Status decode = DecodeChunkWide(chunk.sealed->encoded, &scratch);
      if (!decode.ok()) {
        return Status::Internal("sealed chunk failed to decode: " +
                                decode.message());
      }
      out.insert(out.end(), scratch.begin(), scratch.end());
    } else {
      out.insert(out.end(), chunk.samples.begin(), chunk.samples.end());
    }
  }
  return out;  // chunk order == time order, so this is sorted
}

Result<size_t> HypertableStore::SampleCount(SeriesId id) const {
  const StoredSeries* s = FindSeries(id);
  if (s == nullptr) return Status(NoSuchSeries(id));
  SharedLock lock(s->mu);
  size_t n = 0;
  for (const Chunk& c : *s->chunks) n += c.size();
  return n;
}

Result<std::vector<Sample>> HypertableStore::Scan(
    SeriesId id, const Interval& interval) const {
  auto view = PinView(id, interval, /*want_aggregates=*/false);
  if (!view.ok()) return view.status();
  m_.chunks_total->Add(view->chunk_count);
  // The result buffer is query-held memory: reserve it against the
  // installed context's governor before allocating (kResourceExhausted
  // instead of OOM). The context releases its reservations when the query
  // ends.
  if (QueryContext* ctx = QueryContext::Current()) {
    HYGRAPH_RETURN_IF_ERROR(
        ctx->ReserveMemory(view->overlap_estimate * sizeof(Sample)));
  }
  std::vector<Sample> out;
  out.reserve(view->overlap_estimate);
  if (ShouldParallelize(*view)) {
    std::vector<std::vector<Sample>> buffers;
    HYGRAPH_RETURN_IF_ERROR(
        ParallelScanChunks(*view, interval, ScanPredicate{}, &buffers));
    for (const std::vector<Sample>& buffer : buffers) {
      out.insert(out.end(), buffer.begin(), buffer.end());
    }
    return out;
  }
  for (const PinnedChunk& chunk : view->chunks) {
    m_.chunks_scanned->Increment();
    HYGRAPH_RETURN_IF_ERROR(
        VisitPinned(chunk, interval, ScanPredicate{},
                    [&out](const Sample& s) { out.push_back(s); }));
  }
  return out;
}

Result<Series> HypertableStore::Materialize(SeriesId id,
                                            const Interval& interval) const {
  auto view = PinView(id, interval, /*want_aggregates=*/false);
  if (!view.ok()) return view.status();
  m_.chunks_total->Add(view->chunk_count);
  // Same accounting as Scan: the materialized series belongs to the query.
  if (QueryContext* ctx = QueryContext::Current()) {
    HYGRAPH_RETURN_IF_ERROR(
        ctx->ReserveMemory(view->overlap_estimate * sizeof(Sample)));
  }
  Series out(view->name);
  out.Reserve(view->overlap_estimate);
  Status append = Status::OK();
  if (ShouldParallelize(*view)) {
    std::vector<std::vector<Sample>> buffers;
    HYGRAPH_RETURN_IF_ERROR(
        ParallelScanChunks(*view, interval, ScanPredicate{}, &buffers));
    for (const std::vector<Sample>& buffer : buffers) {
      for (const Sample& s : buffer) {
        if (append.ok()) append = out.Append(s.t, s.value);
      }
    }
    HYGRAPH_RETURN_IF_ERROR(append);
    return out;
  }
  for (const PinnedChunk& chunk : view->chunks) {
    m_.chunks_scanned->Increment();
    HYGRAPH_RETURN_IF_ERROR(
        VisitPinned(chunk, interval, ScanPredicate{}, [&](const Sample& s) {
          if (append.ok()) append = out.Append(s.t, s.value);
        }));
  }
  HYGRAPH_RETURN_IF_ERROR(append);
  return out;
}

Result<size_t> HypertableStore::CountMatching(
    SeriesId id, const Interval& interval,
    const ScanPredicate& predicate) const {
  auto view = PinView(id, interval, /*want_aggregates=*/false);
  if (!view.ok()) return view.status();
  m_.chunks_total->Add(view->chunk_count);
  QueryContext* ctx = QueryContext::Current();
  const size_t chunks = view->chunks.size();
  std::vector<size_t> counts(chunks, 0);
  std::vector<uint64_t> work(chunks, 0);
  const Status run = RunChunkMorsels(
      chunks, ShouldParallelize(*view), ctx, [&](size_t i) -> Status {
        const PinnedChunk& chunk = view->chunks[i];
        if (chunk.has_zone) {
          if (!predicate.unbounded() &&
              !(chunk.min_v <= predicate.max_value &&
                chunk.max_v >= predicate.min_value)) {
            m_.chunks_zonemap_skipped->Increment();
            return Status::OK();
          }
          // Whole-chunk match: every sample is inside the interval and the
          // zone's value range satisfies the predicate end to end. Works
          // for cold chunks too — the zone map is resident, so this path
          // never pins the bytes.
          if (interval.Contains(chunk.first_t) &&
              interval.Contains(chunk.last_t) && chunk.all_finite &&
              predicate.Matches(chunk.min_v) &&
              predicate.Matches(chunk.max_v)) {
            counts[i] = chunk.size;
            m_.chunks_from_cache->Increment();
            return Status::OK();
          }
        }
        m_.chunks_scanned->Increment();
        size_t chunk_count = 0;
        HYGRAPH_RETURN_IF_ERROR(
            ForEachChunkSample(chunk, interval, predicate, &work[i],
                               [&chunk_count](const Sample&) {
                                 ++chunk_count;
                               }));
        counts[i] = chunk_count;
        return Status::OK();
      });
  uint64_t total_work = 0;
  for (uint64_t w : work) total_work += w;
  if (ctx != nullptr && total_work > 0) {
    HYGRAPH_RETURN_IF_ERROR(ctx->Charge(total_work));
  }
  HYGRAPH_RETURN_IF_ERROR(run);
  size_t n = 0;
  for (size_t c : counts) n += c;
  return n;
}

Result<double> HypertableStore::AggregateWithContext(SeriesId id,
                                                     const Interval& interval,
                                                     AggKind kind,
                                                     const QueryContext* ctx,
                                                     uint64_t* work) const {
  auto view = PinView(id, interval, options_.enable_chunk_cache);
  if (!view.ok()) return view.status();
  m_.chunks_total->Add(view->chunk_count);
  const size_t chunks = view->chunks.size();
  // One AggState partial per chunk, merged in chunk order below. The
  // serial path runs the identical morsels in the identical order, so the
  // parallel answer is bit-identical (floating-point reduction order is
  // canonicalized per chunk, not per schedule).
  std::vector<AggState> partials(chunks);
  std::vector<uint64_t> chunk_work(chunks, 0);
  const Status run = RunChunkMorsels(
      chunks, ShouldParallelize(*view), ctx, [&](size_t i) -> Status {
        const PinnedChunk& chunk = view->chunks[i];
        // Zone-map coverage: the cached partial answers the chunk whenever
        // the interval covers its actual data span, even if the nominal
        // chunk span pokes out of the interval.
        if (chunk.agg_valid && interval.Contains(chunk.first_t) &&
            interval.Contains(chunk.last_t)) {
          partials[i] = chunk.agg;
          m_.chunks_from_cache->Increment();
          return Status::OK();
        }
        m_.chunks_scanned->Increment();
        AggState& partial = partials[i];
        return ForEachChunkSample(chunk, interval, ScanPredicate{},
                                  &chunk_work[i],
                                  [&partial](const Sample& s) {
                                    partial.Add(s);
                                  });
      });
  for (uint64_t w : chunk_work) *work += w;
  HYGRAPH_RETURN_IF_ERROR(run);
  AggState total;
  for (const AggState& partial : partials) total.Merge(partial);
  return total.Finalize(kind);
}

Result<double> HypertableStore::Aggregate(SeriesId id,
                                          const Interval& interval,
                                          AggKind kind) const {
  QueryContext* ctx = QueryContext::Current();
  uint64_t work = 0;
  auto result = AggregateWithContext(id, interval, kind, ctx, &work);
  if (ctx != nullptr && work > 0) HYGRAPH_RETURN_IF_ERROR(ctx->Charge(work));
  return result;
}

Status HypertableStore::AggregateMany(const std::vector<SeriesId>& ids,
                                      const Interval& interval, AggKind kind,
                                      std::vector<Result<double>>* out) const {
  QueryContext* ctx = QueryContext::Current();
  const size_t n = ids.size();
  out->clear();
  std::vector<uint64_t> work(n, 0);
  std::vector<Status> statuses(n, Status::OK());
  std::vector<double> values(n, 0.0);
  const bool parallel = options_.parallel_scan && n >= 2 &&
                        ThreadPool::Instance()->worker_count() > 0;
  const Status run =
      RunChunkMorsels(n, parallel, ctx, [&](size_t i) -> Status {
        auto result =
            AggregateWithContext(ids[i], interval, kind, ctx, &work[i]);
        if (result.ok()) {
          values[i] = *result;
        } else {
          statuses[i] = result.status();
        }
        // Per-series failures (unknown id, corrupt chunk) stay in their
        // slot; only governance violations — checked below and by the
        // wrapper's CheckCrossThread — abort the batch.
        return Status::OK();
      });
  uint64_t total_work = 0;
  for (uint64_t w : work) total_work += w;
  if (ctx != nullptr && total_work > 0) {
    HYGRAPH_RETURN_IF_ERROR(ctx->Charge(total_work));
  }
  HYGRAPH_RETURN_IF_ERROR(run);
  for (const Status& s : statuses) {
    if (s.code() == StatusCode::kCancelled ||
        s.code() == StatusCode::kDeadlineExceeded ||
        s.code() == StatusCode::kResourceExhausted) {
      return s;
    }
  }
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (statuses[i].ok()) {
      out->push_back(values[i]);
    } else {
      out->push_back(statuses[i]);
    }
  }
  return Status::OK();
}

Result<Series> HypertableStore::WindowAggregate(SeriesId id,
                                                const Interval& interval,
                                                Duration width,
                                                AggKind kind) const {
  if (width <= 0) {
    return Status::InvalidArgument("window width must be positive");
  }
  auto view = PinView(id, interval, options_.enable_chunk_cache);
  if (!view.ok()) return view.status();
  Series out(view->name + "_" + AggKindName(kind));
  // Clamp the sweep to the data actually present. Only pinned (interval-
  // overlapping) chunks matter: data outside the interval cannot shift the
  // clamped span, and the grid anchor below falls back to span.start only
  // when the interval is unbounded — in which case every chunk is pinned.
  Timestamp data_start = kMaxTimestamp;
  Timestamp data_end = kMinTimestamp;
  for (const PinnedChunk& chunk : view->chunks) {
    data_start = std::min(data_start, chunk.first_t);
    data_end = std::max(data_end, chunk.last_t + 1);
  }
  const Interval span = interval.Intersect(Interval{data_start, data_end});
  if (span.empty()) return out;
  // Grid anchored at interval.start (matching ts::WindowAggregate).
  const Timestamp anchor =
      interval.start == kMinTimestamp ? span.start : interval.start;

  auto bucket_of = [&](Timestamp t) { return (t - anchor) / width; };

  m_.chunks_total->Add(view->chunk_count);
  QueryContext* ctx = QueryContext::Current();
  const size_t chunks = view->chunks.size();
  // Each chunk reduces to an ordered run of (bucket, partial) pairs; the
  // runs are then stitched in chunk order, merging seam buckets that span
  // a chunk boundary. Serial and parallel schedules build the exact same
  // runs, so the stitched output is bit-identical either way.
  using BucketPartial = std::pair<int64_t, AggState>;
  std::vector<std::vector<BucketPartial>> runs(chunks);
  std::vector<uint64_t> work(chunks, 0);
  const Status run_status = RunChunkMorsels(
      chunks, ShouldParallelize(*view), ctx, [&](size_t i) -> Status {
        const PinnedChunk& chunk = view->chunks[i];
        if (chunk.start >= span.end) return Status::OK();
        // Fast path: the chunk lies entirely within one bucket that also
        // lies inside the requested interval — its cached partial stands in
        // for all of its samples (classic continuous-aggregate reuse when
        // width is a multiple of the chunk duration and grids align).
        if (chunk.agg_valid && span.Contains(chunk.first_t) &&
            span.Contains(chunk.last_t) &&
            bucket_of(chunk.first_t) == bucket_of(chunk.last_t)) {
          runs[i].emplace_back(bucket_of(chunk.first_t), chunk.agg);
          m_.chunks_from_cache->Increment();
          return Status::OK();
        }
        m_.chunks_scanned->Increment();
        std::vector<BucketPartial>& chunk_run = runs[i];
        return ForEachChunkSample(
            chunk, span, ScanPredicate{}, &work[i], [&](const Sample& s) {
              const int64_t bucket = bucket_of(s.t);
              if (chunk_run.empty() || chunk_run.back().first != bucket) {
                chunk_run.emplace_back(bucket, AggState{});
              }
              chunk_run.back().second.Add(s);
            });
      });
  uint64_t total_work = 0;
  for (uint64_t w : work) total_work += w;
  if (ctx != nullptr && total_work > 0) {
    HYGRAPH_RETURN_IF_ERROR(ctx->Charge(total_work));
  }
  HYGRAPH_RETURN_IF_ERROR(run_status);

  bool have_bucket = false;
  int64_t current_bucket = 0;
  AggState state;
  auto flush = [&]() -> Status {
    if (!have_bucket || state.count == 0) return Status::OK();
    auto value = state.Finalize(kind);
    if (!value.ok()) return value.status();
    return out.Append(anchor + current_bucket * width, *value);
  };
  for (const std::vector<BucketPartial>& chunk_run : runs) {
    for (const BucketPartial& partial : chunk_run) {
      if (!have_bucket || partial.first != current_bucket) {
        HYGRAPH_RETURN_IF_ERROR(flush());
        current_bucket = partial.first;
        state = AggState{};
        have_bucket = true;
      }
      state.Merge(partial.second);
    }
  }
  HYGRAPH_RETURN_IF_ERROR(flush());
  return out;
}

Result<std::string> HypertableStore::Name(SeriesId id) const {
  const StoredSeries* s = FindSeries(id);
  if (s == nullptr) return Status(NoSuchSeries(id));
  return s->name;  // immutable after Create; no shard lock needed
}

std::vector<SeriesId> HypertableStore::Ids() const {
  SharedLock lock(*map_mu_);
  std::vector<SeriesId> ids;
  ids.reserve(series_.size());
  for (const auto& [id, _] : series_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

HypertableMemory HypertableStore::MemoryUsage() const {
  SharedLock map_lock(*map_mu_);
  HypertableMemory m;
  for (const auto& [id, stored] : series_) {
    (void)id;
    SharedLock lock(stored->mu);
    for (const Chunk& chunk : *stored->chunks) {
      if (chunk.sealed != nullptr) {
        m.sealed_samples += chunk.sealed->count;
        m.sealed_bytes += chunk.sealed->encoded.size();
      } else if (chunk.is_cold()) {
        // Bytes live in the cold tier, not this store's RAM.
        m.cold_samples += chunk.cold_meta->count;
        m.cold_bytes += chunk.cold_meta->encoded_size;
      } else {
        m.hot_samples += chunk.samples.size();
        m.hot_bytes += chunk.samples.capacity() * sizeof(Sample);
      }
    }
  }
  return m;
}

std::shared_ptr<const HypertableStore> HypertableStore::Fork() const {
  HypertableOptions options = options_;
  options.metrics = metrics_;  // share the registry: work attributes here
  auto fork = std::make_shared<HypertableStore>(std::move(options));
  SharedLock map_lock(*map_mu_);
  fork->next_id_ = next_id_;
  fork->series_.reserve(series_.size());
  for (const auto& [id, stored] : series_) {
    auto copy = std::make_unique<StoredSeries>(stored->name, sync_);
    SharedLock lock(stored->mu);
    copy->chunks = stored->chunks;  // O(1) pin; origin detaches on write
    copy->pins = stored->pins;
    // Relaxed is enough for the increment: the shared hold of stored->mu
    // orders it before any writer's pin check (the exclusive hold).
    copy->pins->fetch_add(1, std::memory_order_relaxed);
    copy->holds_pin = true;
    fork->series_.emplace(id, std::move(copy));
  }
  m_.snapshot_pins->Increment();
  return fork;
}

HypertableStats HypertableStore::stats() const {
  HypertableStats s;
  s.chunks_total = m_.chunks_total->value();
  s.chunks_scanned = m_.chunks_scanned->value();
  s.chunks_from_cache = m_.chunks_from_cache->value();
  s.samples_scanned = m_.samples_scanned->value();
  s.chunks_decoded = m_.chunks_decoded->value();
  s.chunks_sealed = m_.chunks_sealed->value();
  s.chunks_unsealed = m_.chunks_unsealed->value();
  s.bytes_raw = m_.bytes_raw->value();
  s.bytes_compressed = m_.bytes_compressed->value();
  s.chunks_zonemap_skipped = m_.chunks_zonemap_skipped->value();
  s.morsels_dispatched = m_.morsels_dispatched->value();
  s.morsels_stolen = m_.morsels_stolen->value();
  s.cold_chunks_spilled = m_.cold_chunks_spilled->value();
  s.cold_bytes_spilled = m_.cold_bytes_spilled->value();
  s.cold_chunks_adopted = m_.cold_chunks_adopted->value();
  s.cold_pins = m_.cold_pins->value();
  return s;
}

void HypertableStore::ResetStats() {
  // Resets only this store's instruments, not the whole registry, which
  // may be shared with the enclosing backend.
  m_.chunks_total->Reset();
  m_.chunks_scanned->Reset();
  m_.chunks_from_cache->Reset();
  m_.samples_scanned->Reset();
  m_.chunks_decoded->Reset();
  m_.chunks_sealed->Reset();
  m_.chunks_unsealed->Reset();
  m_.bytes_raw->Reset();
  m_.bytes_compressed->Reset();
  m_.chunks_zonemap_skipped->Reset();
  m_.morsels_dispatched->Reset();
  m_.morsels_stolen->Reset();
  m_.cold_chunks_spilled->Reset();
  m_.cold_bytes_spilled->Reset();
  m_.cold_chunks_adopted->Reset();
  m_.cold_pins->Reset();
}

}  // namespace hygraph::ts
