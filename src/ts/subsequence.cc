#include "ts/subsequence.h"

#include <algorithm>
#include <cmath>

#include "ts/distance.h"

namespace hygraph::ts {

Result<std::vector<double>> DistanceProfile(
    const Series& haystack, const std::vector<double>& query) {
  const size_t m = query.size();
  if (m < 2) {
    return Status::InvalidArgument("query must have at least 2 points");
  }
  if (haystack.size() < m) {
    return Status::InvalidArgument("haystack shorter than query");
  }
  std::vector<double> q = query;
  ZNormalize(&q);
  const std::vector<double> values = haystack.Values();
  const size_t n = values.size();

  // Rolling sums give O(1) mean/std per window; the inner product is
  // recomputed per offset (O(n*m) total — the UCR-ED approach without FFT,
  // adequate for the scales this library targets).
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < m; ++i) {
    sum += values[i];
    sum_sq += values[i] * values[i];
  }
  std::vector<double> profile;
  profile.reserve(n - m + 1);
  const double dm = static_cast<double>(m);
  for (size_t off = 0; off + m <= n; ++off) {
    if (off > 0) {
      sum += values[off + m - 1] - values[off - 1];
      sum_sq += values[off + m - 1] * values[off + m - 1] -
                values[off - 1] * values[off - 1];
    }
    const double mean = sum / dm;
    const double var = std::max(0.0, sum_sq / dm - mean * mean);
    const double sd = std::sqrt(var);
    double acc = 0.0;
    if (sd < 1e-12) {
      // Constant window: z-normalized form is all zeros.
      for (size_t i = 0; i < m; ++i) acc += q[i] * q[i];
    } else {
      for (size_t i = 0; i < m; ++i) {
        const double z = (values[off + i] - mean) / sd;
        const double d = z - q[i];
        acc += d * d;
      }
    }
    profile.push_back(std::sqrt(acc));
  }
  return profile;
}

Result<std::vector<SubsequenceMatch>> MatchSubsequence(
    const Series& haystack, const std::vector<double>& query, size_t k) {
  auto profile = DistanceProfile(haystack, query);
  if (!profile.ok()) return profile.status();
  const size_t m = query.size();
  std::vector<char> blocked(profile->size(), 0);
  std::vector<SubsequenceMatch> matches;
  while (matches.size() < k) {
    size_t best = profile->size();
    for (size_t i = 0; i < profile->size(); ++i) {
      if (blocked[i]) continue;
      if (best == profile->size() || (*profile)[i] < (*profile)[best]) {
        best = i;
      }
    }
    if (best == profile->size()) break;
    matches.push_back(SubsequenceMatch{best, haystack.at(best).t,
                                       (*profile)[best]});
    // Exclude overlapping offsets (trivial-match exclusion zone of one
    // query length on either side).
    const size_t lo = best >= m ? best - m + 1 : 0;
    const size_t hi = std::min(profile->size(), best + m);
    for (size_t i = lo; i < hi; ++i) blocked[i] = 1;
  }
  return matches;
}

Result<std::vector<SubsequenceMatch>> MatchSubsequenceThreshold(
    const Series& haystack, const std::vector<double>& query,
    double threshold) {
  auto profile = DistanceProfile(haystack, query);
  if (!profile.ok()) return profile.status();
  std::vector<SubsequenceMatch> matches;
  for (size_t i = 0; i < profile->size(); ++i) {
    if ((*profile)[i] <= threshold) {
      matches.push_back(
          SubsequenceMatch{i, haystack.at(i).t, (*profile)[i]});
    }
  }
  return matches;
}

}  // namespace hygraph::ts
