#ifndef HYGRAPH_TS_FEATURES_H_
#define HYGRAPH_TS_FEATURES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace hygraph::ts {

/// A fixed-length statistical feature vector summarizing a series — the
/// "temporal FAT / trends" features the paper's Table 2 cites for
/// classification (C1) and the temporal half of hybrid embeddings (E).
struct SeriesFeatures {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double iqr = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;      ///< excess kurtosis
  double trend_slope = 0.0;   ///< least-squares slope per day
  double acf1 = 0.0;          ///< lag-1 autocorrelation
  double acf2 = 0.0;          ///< lag-2 autocorrelation
  double crossing_rate = 0.0; ///< fraction of consecutive pairs crossing the mean
  double spikiness = 0.0;     ///< max |z-score| over the series
  double energy = 0.0;        ///< mean squared value

  /// Dense vector form (stable order, kDimension entries).
  static constexpr size_t kDimension = 14;
  std::vector<double> ToVector() const;
  /// Human-readable names aligned with ToVector() order.
  static std::vector<std::string> Names();
};

/// Computes the feature vector; requires at least 4 samples.
Result<SeriesFeatures> ComputeFeatures(const Series& series);

/// Lag-k autocorrelation of a value vector; 0 when degenerate.
double Autocorrelation(const std::vector<double>& values, size_t lag);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_FEATURES_H_
