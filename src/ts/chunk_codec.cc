#include "ts/chunk_codec.h"

#include <bit>
#include <cstring>

namespace hygraph::ts {

namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

// Parses a LEB128 varint from bytes[*pos, end); false on truncation or a
// value that does not fit in 64 bits.
bool ParseVarint(std::string_view bytes, size_t* pos, size_t end,
                 uint64_t* out) {
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= end) return false;
    const uint8_t byte = static_cast<uint8_t>(bytes[(*pos)++]);
    if (shift == 63 && (byte & 0x7f) > 1) return false;  // 65th+ bit set
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
  }
  return false;  // 10 continuation bytes without a terminator
}

// Zigzag maps the wrap-around difference (held in a uint64) to a small
// varint when the signed magnitude is small.
uint64_t ZigZag(uint64_t x) {
  const int64_t n = static_cast<int64_t>(x);
  return (static_cast<uint64_t>(n) << 1) ^ static_cast<uint64_t>(n >> 63);
}

uint64_t UnZigZag(uint64_t z) { return (z >> 1) ^ (0 - (z & 1)); }

// MSB-first bit sink backed by a std::string.
class BitWriter {
 public:
  void WriteBit(uint64_t bit) {
    if (free_bits_ == 0) {
      bytes_.push_back('\0');
      free_bits_ = 8;
    }
    --free_bits_;
    bytes_.back() = static_cast<char>(
        static_cast<uint8_t>(bytes_.back()) |
        static_cast<uint8_t>((bit & 1) << free_bits_));
  }

  // Writes the low `n` bits of `value`, most significant first; n <= 64.
  void WriteBits(uint64_t value, size_t n) {
    for (size_t i = n; i > 0; --i) {
      WriteBit((value >> (i - 1)) & 1);
    }
  }

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
  int free_bits_ = 0;
};

}  // namespace

std::string EncodeChunk(const std::vector<Sample>& samples) {
  std::string out;
  PutVarint(&out, samples.size());
  if (samples.empty()) return out;

  // Timestamp column: delta-of-delta zigzag varints. Differences use
  // wrap-around uint64 arithmetic so extreme timestamps cannot overflow.
  std::string ts_column;
  uint64_t prev_t = 0;
  uint64_t prev_delta = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    const uint64_t t = static_cast<uint64_t>(samples[i].t);
    if (i == 0) {
      PutVarint(&ts_column, ZigZag(t));
    } else {
      const uint64_t delta = t - prev_t;
      PutVarint(&ts_column, i == 1 ? ZigZag(delta)
                                   : ZigZag(delta - prev_delta));
      prev_delta = delta;
    }
    prev_t = t;
  }
  PutVarint(&out, ts_column.size());
  out += ts_column;

  // Value column: Gorilla XOR bitstream over the raw bit patterns.
  BitWriter bits;
  uint64_t prev_bits = std::bit_cast<uint64_t>(samples[0].value);
  bits.WriteBits(prev_bits, 64);
  int window_lead = -1;
  int window_trail = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    const uint64_t value_bits = std::bit_cast<uint64_t>(samples[i].value);
    const uint64_t xor_bits = value_bits ^ prev_bits;
    prev_bits = value_bits;
    if (xor_bits == 0) {
      bits.WriteBit(0);
      continue;
    }
    const int lead = std::countl_zero(xor_bits);
    const int trail = std::countr_zero(xor_bits);
    if (window_lead >= 0 && lead >= window_lead && trail >= window_trail) {
      bits.WriteBits(0b10, 2);
      bits.WriteBits(xor_bits >> window_trail,
                     static_cast<size_t>(64 - window_lead - window_trail));
    } else {
      const int sig = 64 - lead - trail;
      bits.WriteBits(0b11, 2);
      bits.WriteBits(static_cast<uint64_t>(lead), 6);
      bits.WriteBits(static_cast<uint64_t>(sig - 1), 6);
      bits.WriteBits(xor_bits >> trail, static_cast<size_t>(sig));
      window_lead = lead;
      window_trail = trail;
    }
  }
  out += bits.bytes();
  return out;
}

ChunkDecoder::ChunkDecoder(std::string_view bytes) : bytes_(bytes) {
  size_t pos = 0;
  uint64_t count = 0;
  if (!ParseVarint(bytes_, &pos, bytes_.size(), &count)) {
    Fail("truncated sample count");
    return;
  }
  if (count == 0) {
    if (pos != bytes_.size()) Fail("trailing bytes after empty chunk");
    return;
  }
  uint64_t ts_len = 0;
  if (!ParseVarint(bytes_, &pos, bytes_.size(), &ts_len)) {
    Fail("truncated timestamp column length");
    return;
  }
  if (ts_len > bytes_.size() - pos) {
    Fail("timestamp column length exceeds input");
    return;
  }
  // Every sample costs at least one timestamp byte and (beyond the first's
  // raw 64 bits) at least one value bit, so a hostile count can never make
  // the decoder allocate more than the input's own size.
  if (count > ts_len) {
    Fail("sample count exceeds timestamp column capacity");
    return;
  }
  ts_pos_ = pos;
  ts_end_ = pos + static_cast<size_t>(ts_len);
  const size_t value_bits = (bytes_.size() - ts_end_) * 8;
  if (value_bits < 64 + (static_cast<size_t>(count) - 1)) {
    Fail("value column shorter than declared sample count");
    return;
  }
  bit_pos_ = ts_end_ * 8;
  count_ = static_cast<size_t>(count);
}

bool ChunkDecoder::Fail(const std::string& msg) {
  status_ = Status::Corruption("chunk codec: " + msg);
  count_ = 0;
  produced_ = 0;
  return false;
}

bool ChunkDecoder::ReadVarint(uint64_t* out) {
  return ParseVarint(bytes_, &ts_pos_, ts_end_, out);
}

bool ChunkDecoder::ReadBits(size_t n, uint64_t* out) {
  if (n > bytes_.size() * 8 - bit_pos_) return false;
  if (n == 0) {
    *out = 0;
    return true;
  }
  // Decode hot loop: one 64-bit big-endian window covers any read of up to
  // 57 bits (offset <= 7), extracted with two shifts.
  if (n <= 57) {
    const size_t first_byte = bit_pos_ >> 3;
    const size_t offset = bit_pos_ & 7;
    uint64_t window = 0;
    if (bytes_.size() - first_byte >= 8) {
      std::memcpy(&window, bytes_.data() + first_byte, 8);
      window = __builtin_bswap64(window);
    } else {
      for (size_t i = first_byte; i < bytes_.size(); ++i) {
        window |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[i]))
                  << (56 - 8 * (i - first_byte));
      }
    }
    bit_pos_ += n;
    *out = (window << offset) >> (64 - n);
    return true;
  }
  // 58..64 bits: split into two in-window reads.
  uint64_t hi = 0;
  uint64_t lo = 0;
  if (!ReadBits(n - 32, &hi) || !ReadBits(32, &lo)) return false;
  *out = (hi << 32) | lo;
  return true;
}

uint64_t ChunkDecoder::Peek64() const {
  // The next (up to) 64 - (bit_pos_ & 7) bits, left-aligned so the bit at
  // bit_pos_ is the MSB; zero-padded past the end of the input.
  const size_t first_byte = bit_pos_ >> 3;
  uint64_t window = 0;
  if (bytes_.size() - first_byte >= 8) {
    std::memcpy(&window, bytes_.data() + first_byte, 8);
    window = __builtin_bswap64(window);
  } else {
    for (size_t i = first_byte; i < bytes_.size(); ++i) {
      window |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[i]))
                << (56 - 8 * (i - first_byte));
    }
  }
  return window << (bit_pos_ & 7);
}

// One value token per call. A single Peek64 covers the control bits, the
// window header, and (except for payloads pushing past the 64-bit window)
// the payload itself, so the common case costs one unaligned load.
bool ChunkDecoder::DecodeValueToken() {
  const size_t avail = bytes_.size() * 8 - bit_pos_;
  if (avail < 1) return Fail("truncated value column");
  const uint64_t w = Peek64();
  if ((w >> 63) == 0) {  // '0': value identical to the previous one
    ++bit_pos_;
    return true;
  }
  if (avail < 2) return Fail("truncated value column");
  if (((w >> 62) & 1) != 0) {  // '11': explicit window
    if (avail < 14) return Fail("truncated value window header");
    const int lead = static_cast<int>((w >> 56) & 0x3f);
    const int sig = static_cast<int>((w >> 50) & 0x3f) + 1;
    if (lead + sig > 64) return Fail("value window wider than 64 bits");
    if (avail < 14 + static_cast<size_t>(sig)) {
      return Fail("truncated value column");
    }
    uint64_t payload = 0;
    // Peek64 only guarantees 57 valid bits (the sub-byte offset shift
    // zero-fills the rest), so larger payloads take the ReadBits path.
    if (14 + sig <= 57) {
      payload = (w << 14) >> (64 - sig);
      bit_pos_ += 14 + static_cast<size_t>(sig);
    } else {
      bit_pos_ += 14;
      if (!ReadBits(static_cast<size_t>(sig), &payload)) {
        return Fail("truncated value column");
      }
    }
    window_leading_ = lead;
    window_sigbits_ = sig;
    prev_value_bits_ ^= payload << (64 - lead - sig);
    return true;
  }
  // '10': reuse the previous window
  if (window_leading_ < 0) {
    return Fail("window reuse before a window was defined");
  }
  const size_t sig = static_cast<size_t>(window_sigbits_);
  if (avail < 2 + sig) return Fail("truncated value column");
  uint64_t payload = 0;
  if (2 + sig <= 57) {  // same 57-valid-bit bound as above
    payload = (w << 2) >> (64 - sig);
    bit_pos_ += 2 + sig;
  } else {
    bit_pos_ += 2;
    if (!ReadBits(sig, &payload)) return Fail("truncated value column");
  }
  prev_value_bits_ ^= payload << (64 - window_leading_ - window_sigbits_);
  return true;
}

bool ChunkDecoder::Next(Sample* out) {
  if (!status_.ok() || produced_ >= count_) return false;

  uint64_t z = 0;
  if (!ReadVarint(&z)) return Fail("truncated timestamp column");
  if (produced_ == 0) {
    prev_t_ = UnZigZag(z);
  } else if (produced_ == 1) {
    prev_delta_ = UnZigZag(z);
    prev_t_ += prev_delta_;
  } else {
    prev_delta_ += UnZigZag(z);
    prev_t_ += prev_delta_;
  }

  if (produced_ == 0) {
    if (!ReadBits(64, &prev_value_bits_)) {
      return Fail("truncated value column");
    }
  } else if (!DecodeValueToken()) {
    return false;  // Fail() already set the status
  }

  ++produced_;
  if (produced_ == count_) {
    // The columns must end exactly where the samples do: no leftover
    // timestamp bytes, no full padding byte, and only zero padding bits.
    if (ts_pos_ != ts_end_) return Fail("trailing timestamp bytes");
    const size_t total_bits = bytes_.size() * 8;
    if (total_bits - bit_pos_ >= 8) return Fail("trailing value bytes");
    uint64_t padding = 0;
    const size_t pad_bits = total_bits - bit_pos_;
    if (pad_bits > 0 && (!ReadBits(pad_bits, &padding) || padding != 0)) {
      return Fail("non-zero padding bits");
    }
  }
  out->t = static_cast<Timestamp>(prev_t_);
  out->value = std::bit_cast<double>(prev_value_bits_);
  return true;
}

Result<std::vector<Sample>> DecodeChunk(std::string_view bytes) {
  ChunkDecoder decoder(bytes);
  std::vector<Sample> samples;
  samples.reserve(decoder.count());
  Sample s;
  while (decoder.Next(&s)) samples.push_back(s);
  if (!decoder.status().ok()) return decoder.status();
  return samples;
}

namespace {

Status WideFail(std::vector<Sample>* out, const char* msg) {
  out->clear();
  return Status::Corruption(std::string("chunk codec: ") + msg);
}

}  // namespace

Status DecodeChunkWide(std::string_view bytes, std::vector<Sample>* out) {
  out->clear();
  size_t pos = 0;
  uint64_t count = 0;
  if (!ParseVarint(bytes, &pos, bytes.size(), &count)) {
    return WideFail(out, "truncated sample count");
  }
  if (count == 0) {
    if (pos != bytes.size()) {
      return WideFail(out, "trailing bytes after empty chunk");
    }
    return Status::OK();
  }
  uint64_t ts_len = 0;
  if (!ParseVarint(bytes, &pos, bytes.size(), &ts_len)) {
    return WideFail(out, "truncated timestamp column length");
  }
  if (ts_len > bytes.size() - pos) {
    return WideFail(out, "timestamp column length exceeds input");
  }
  // Same allocation bound as ChunkDecoder: one timestamp byte and (beyond
  // the first sample's raw 64 bits) one value bit per declared sample.
  if (count > ts_len) {
    return WideFail(out, "sample count exceeds timestamp column capacity");
  }
  const size_t ts_end = pos + static_cast<size_t>(ts_len);
  const size_t total_bits = bytes.size() * 8;
  if (total_bits - ts_end * 8 < 64 + (static_cast<size_t>(count) - 1)) {
    return WideFail(out, "value column shorter than declared sample count");
  }
  out->resize(static_cast<size_t>(count));
  Sample* samples = out->data();

  // Pass 1 — timestamp column: contiguous byte-aligned varints, decoded in
  // one tight loop (the 1-byte delta-of-delta of a regular grid is the
  // branch-predicted fast case).
  {
    size_t ts_pos = pos;
    uint64_t prev_t = 0;
    uint64_t prev_delta = 0;
    for (size_t i = 0; i < count; ++i) {
      uint64_t z;
      if (ts_pos < ts_end &&
          static_cast<uint8_t>(bytes[ts_pos]) < 0x80) {
        z = static_cast<uint8_t>(bytes[ts_pos++]);
      } else if (!ParseVarint(bytes, &ts_pos, ts_end, &z)) {
        return WideFail(out, "truncated timestamp column");
      }
      if (i == 0) {
        prev_t = UnZigZag(z);
      } else if (i == 1) {
        prev_delta = UnZigZag(z);
        prev_t += prev_delta;
      } else {
        prev_delta += UnZigZag(z);
        prev_t += prev_delta;
      }
      samples[i].t = static_cast<Timestamp>(prev_t);
    }
    if (ts_pos != ts_end) return WideFail(out, "trailing timestamp bytes");
  }

  // Pass 2 — value column: Gorilla XOR bitstream. While ≥18 bytes of input
  // remain past the cursor's byte, a worst-case token ('11' + 6b + 6b +
  // 64b payload = 78 bits) fits entirely inside two unaligned 64-bit loads
  // (the wide-payload load starts ≤2 bytes past the cursor's byte and
  // spans 16 more), so the hot loop runs with no per-token bounds checks;
  // the tail — and any input corrupt enough to escape the guard — falls
  // back to the fully-checked path below, which mirrors
  // ChunkDecoder::DecodeValueToken token for token.
  const char* data = bytes.data();
  const size_t size = bytes.size();
  // The next ≥57 bits at `bit`, MSB-first, left-aligned, with zeros
  // shifted in at the bottom. Caller guarantees (bit >> 3) + 8 <= size.
  auto load64 = [data](size_t bit) {
    uint64_t w;
    std::memcpy(&w, data + (bit >> 3), 8);
    return __builtin_bswap64(w) << (bit & 7);
  };
  // The n (<= 64) bits at `bit` via a two-load 128-bit window; used for
  // payloads too wide for load64's 57 guaranteed bits. Caller guarantees
  // (bit >> 3) + 16 <= size.
  auto load_bits = [data](size_t bit, int n) {
    const size_t byte = bit >> 3;
    const int off = static_cast<int>(bit & 7);
    uint64_t hi;
    uint64_t lo;
    std::memcpy(&hi, data + byte, 8);
    std::memcpy(&lo, data + byte + 8, 8);
    hi = __builtin_bswap64(hi);
    lo = __builtin_bswap64(lo);
    const uint64_t window = off == 0 ? hi : (hi << off) | (lo >> (64 - off));
    return window >> (64 - n);
  };
  // Zero-padded peek for the checked tail: like load64 but never reads
  // past the buffer, mirroring ChunkDecoder::Peek64.
  auto peek = [data, size](size_t bit) {
    const size_t first_byte = bit >> 3;
    uint64_t w = 0;
    if (size - first_byte >= 8) {
      std::memcpy(&w, data + first_byte, 8);
      w = __builtin_bswap64(w);
    } else {
      for (size_t b = first_byte; b < size; ++b) {
        w |= static_cast<uint64_t>(static_cast<uint8_t>(data[b]))
             << (56 - 8 * (b - first_byte));
      }
    }
    return w << (bit & 7);
  };
  // ChunkDecoder::ReadBits equivalent for the tail: n <= 64, availability
  // already verified by the caller.
  auto read_checked = [&peek](size_t bit, size_t n) -> uint64_t {
    if (n <= 57) return peek(bit) >> (64 - n);
    const uint64_t hi = peek(bit) >> (64 - (n - 32));
    const uint64_t lo = peek(bit + (n - 32)) >> 32;
    return (hi << 32) | lo;
  };

  // The value column starts byte-aligned at ts_end; the header check above
  // guarantees its first 64 bits (sample 0's raw bit pattern) exist.
  size_t bit_pos = ts_end * 8;
  uint64_t first_word;
  std::memcpy(&first_word, data + ts_end, 8);
  uint64_t prev_bits = __builtin_bswap64(first_word);
  bit_pos += 64;
  samples[0].value = std::bit_cast<double>(prev_bits);
  int window_lead = -1;
  int window_sig = 0;

  size_t i = 1;
  while (i < count && (bit_pos >> 3) + 18 <= size) {
    const uint64_t w = load64(bit_pos);
    if ((w >> 63) == 0) {  // '0': repeat previous value
      ++bit_pos;
    } else if (((w >> 62) & 1) != 0) {  // '11': explicit window
      const int lead = static_cast<int>((w >> 56) & 0x3f);
      const int sig = static_cast<int>((w >> 50) & 0x3f) + 1;
      if (lead + sig > 64) {
        return WideFail(out, "value window wider than 64 bits");
      }
      const uint64_t payload = 14 + sig <= 57
                                   ? (w << 14) >> (64 - sig)
                                   : load_bits(bit_pos + 14, sig);
      bit_pos += 14 + static_cast<size_t>(sig);
      window_lead = lead;
      window_sig = sig;
      prev_bits ^= payload << (64 - lead - sig);
    } else {  // '10': reuse the previous window
      if (window_lead < 0) {
        return WideFail(out, "window reuse before a window was defined");
      }
      const uint64_t payload = 2 + window_sig <= 57
                                   ? (w << 2) >> (64 - window_sig)
                                   : load_bits(bit_pos + 2, window_sig);
      bit_pos += 2 + static_cast<size_t>(window_sig);
      prev_bits ^= payload << (64 - window_lead - window_sig);
    }
    samples[i++].value = std::bit_cast<double>(prev_bits);
  }

  // Checked tail: the same grammar with ChunkDecoder::DecodeValueToken's
  // explicit availability checks against the true end of input.
  while (i < count) {
    const size_t avail = total_bits - bit_pos;
    if (avail < 1) return WideFail(out, "truncated value column");
    const uint64_t w = peek(bit_pos);
    if ((w >> 63) == 0) {
      ++bit_pos;
    } else {
      if (avail < 2) return WideFail(out, "truncated value column");
      if (((w >> 62) & 1) != 0) {
        if (avail < 14) return WideFail(out, "truncated value window header");
        const int lead = static_cast<int>((w >> 56) & 0x3f);
        const int sig = static_cast<int>((w >> 50) & 0x3f) + 1;
        if (lead + sig > 64) {
          return WideFail(out, "value window wider than 64 bits");
        }
        if (avail < 14 + static_cast<size_t>(sig)) {
          return WideFail(out, "truncated value column");
        }
        const uint64_t payload =
            read_checked(bit_pos + 14, static_cast<size_t>(sig));
        bit_pos += 14 + static_cast<size_t>(sig);
        window_lead = lead;
        window_sig = sig;
        prev_bits ^= payload << (64 - lead - sig);
      } else {
        if (window_lead < 0) {
          return WideFail(out, "window reuse before a window was defined");
        }
        if (avail < 2 + static_cast<size_t>(window_sig)) {
          return WideFail(out, "truncated value column");
        }
        const uint64_t payload =
            read_checked(bit_pos + 2, static_cast<size_t>(window_sig));
        bit_pos += 2 + static_cast<size_t>(window_sig);
        prev_bits ^= payload << (64 - window_lead - window_sig);
      }
    }
    samples[i++].value = std::bit_cast<double>(prev_bits);
  }

  // The value column must end exactly where the samples do (mirrors
  // ChunkDecoder::Next's final-sample verification).
  if (total_bits - bit_pos >= 8) return WideFail(out, "trailing value bytes");
  const size_t pad_bits = total_bits - bit_pos;
  if (pad_bits > 0 && (peek(bit_pos) >> (64 - pad_bits)) != 0) {
    return WideFail(out, "non-zero padding bits");
  }
  return Status::OK();
}

}  // namespace hygraph::ts
