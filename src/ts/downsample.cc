#include "ts/downsample.h"

#include <algorithm>
#include <cmath>

#include "ts/aggregate.h"

namespace hygraph::ts {

Result<Series> DownsampleAverage(const Series& series, Duration bucket) {
  return WindowAggregate(series, series.TimeSpan(), bucket, AggKind::kAvg);
}

Result<Series> DownsampleMinMax(const Series& series, Duration bucket) {
  if (bucket <= 0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  Series out(series.name() + "_minmax");
  if (series.empty()) return out;
  const Interval span = series.TimeSpan();
  size_t i = 0;
  for (Timestamp w = span.start; w < span.end; w += bucket) {
    const Timestamp wend = w + bucket;
    size_t min_i = i;
    size_t max_i = i;
    bool any = false;
    while (i < series.size() && series.at(i).t < wend) {
      if (!any || series.at(i).value < series.at(min_i).value) min_i = i;
      if (!any || series.at(i).value > series.at(max_i).value) max_i = i;
      any = true;
      ++i;
    }
    if (!any) continue;
    const size_t a = std::min(min_i, max_i);
    const size_t b = std::max(min_i, max_i);
    HYGRAPH_IGNORE_RESULT(out.Append(series.at(a).t, series.at(a).value));
    if (b != a) HYGRAPH_IGNORE_RESULT(out.Append(series.at(b).t, series.at(b).value));
  }
  return out;
}

Result<Series> DownsampleLttb(const Series& series, size_t target_points) {
  if (target_points < 2) {
    return Status::InvalidArgument("LTTB requires target_points >= 2");
  }
  if (series.size() <= target_points) return series;
  Series out(series.name() + "_lttb");
  const size_t n = series.size();
  const double bucket_size =
      static_cast<double>(n - 2) / static_cast<double>(target_points - 2);
  // Always keep the first point.
  HYGRAPH_IGNORE_RESULT(out.Append(series.front().t, series.front().value));
  size_t prev_selected = 0;
  for (size_t b = 0; b < target_points - 2; ++b) {
    // Current bucket [lo, hi).
    const size_t lo =
        1 + static_cast<size_t>(std::floor(static_cast<double>(b) * bucket_size));
    const size_t hi = std::min<size_t>(
        1 + static_cast<size_t>(
                std::floor(static_cast<double>(b + 1) * bucket_size)),
        n - 1);
    // Average of the *next* bucket is the third triangle vertex.
    const size_t nlo = hi;
    const size_t nhi = std::min<size_t>(
        1 + static_cast<size_t>(
                std::floor(static_cast<double>(b + 2) * bucket_size)),
        n - 1);
    double avg_t = 0.0;
    double avg_v = 0.0;
    const size_t ncount = (nhi > nlo) ? (nhi - nlo) : 1;
    for (size_t i = nlo; i < std::max(nhi, nlo + 1) && i < n; ++i) {
      avg_t += static_cast<double>(series.at(i).t);
      avg_v += series.at(i).value;
    }
    avg_t /= static_cast<double>(ncount);
    avg_v /= static_cast<double>(ncount);

    const double pt = static_cast<double>(series.at(prev_selected).t);
    const double pv = series.at(prev_selected).value;
    double best_area = -1.0;
    size_t best_i = lo;
    for (size_t i = lo; i < std::max(hi, lo + 1) && i < n - 1; ++i) {
      const double area = std::abs(
          (pt - avg_t) * (series.at(i).value - pv) -
          (pt - static_cast<double>(series.at(i).t)) * (avg_v - pv));
      if (area > best_area) {
        best_area = area;
        best_i = i;
      }
    }
    HYGRAPH_IGNORE_RESULT(out.Append(series.at(best_i).t, series.at(best_i).value));
    prev_selected = best_i;
  }
  // Always keep the last point.
  HYGRAPH_IGNORE_RESULT(out.Append(series.back().t, series.back().value));
  return out;
}

}  // namespace hygraph::ts
