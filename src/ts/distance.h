#ifndef HYGRAPH_TS_DISTANCE_H_
#define HYGRAPH_TS_DISTANCE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Distance functions over value sequences — the primitives behind
/// subsequence matching (Table 2 rows Q1/E) and hybrid clustering (C2).

/// Euclidean distance between equal-length vectors.
Result<double> EuclideanDistance(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Z-normalizes a vector in place (mean 0, stddev 1). A constant vector
/// becomes all zeros.
void ZNormalize(std::vector<double>* xs);

/// Euclidean distance after z-normalizing both inputs (UCR convention).
Result<double> ZNormalizedDistance(std::vector<double> a,
                                   std::vector<double> b);

/// Dynamic time warping with a Sakoe–Chiba band of half-width `band`
/// (band >= max(|a|,|b|) degenerates to full DTW; band 0 forces the
/// diagonal). Returns the square root of the accumulated squared cost.
Result<double> DtwDistance(const std::vector<double>& a,
                           const std::vector<double>& b, size_t band);

/// DTW over the values of two series (timestamps ignored — DTW exists to
/// absorb temporal misalignment).
Result<double> DtwDistance(const Series& a, const Series& b, size_t band);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_DISTANCE_H_
