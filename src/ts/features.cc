#include "ts/features.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "ts/segmentation.h"

namespace hygraph::ts {

std::vector<double> SeriesFeatures::ToVector() const {
  return {mean,     stddev, min,  max,  median,        iqr,       skewness,
          kurtosis, trend_slope, acf1, acf2, crossing_rate, spikiness, energy};
}

std::vector<std::string> SeriesFeatures::Names() {
  return {"mean",     "stddev",      "min",           "max",
          "median",   "iqr",         "skewness",      "kurtosis",
          "trend_slope", "acf1",     "acf2",          "crossing_rate",
          "spikiness",   "energy"};
}

double Autocorrelation(const std::vector<double>& values, size_t lag) {
  const size_t n = values.size();
  if (n <= lag + 1) return 0.0;
  const double m = Mean(values);
  double denom = 0.0;
  for (double v : values) denom += (v - m) * (v - m);
  if (denom < 1e-12) return 0.0;
  double num = 0.0;
  for (size_t i = 0; i + lag < n; ++i) {
    num += (values[i] - m) * (values[i + lag] - m);
  }
  return num / denom;
}

Result<SeriesFeatures> ComputeFeatures(const Series& series) {
  if (series.size() < 4) {
    return Status::InvalidArgument(
        "ComputeFeatures requires at least 4 samples");
  }
  const std::vector<double> values = series.Values();
  const size_t n = values.size();
  SeriesFeatures f;
  f.mean = Mean(values);
  f.stddev = StdDev(values);
  f.min = *std::min_element(values.begin(), values.end());
  f.max = *std::max_element(values.begin(), values.end());
  f.median = Median(values);
  f.iqr = Quantile(values, 0.75) - Quantile(values, 0.25);

  // Central moments for skewness / kurtosis.
  double m2 = 0.0;
  double m3 = 0.0;
  double m4 = 0.0;
  for (double v : values) {
    const double d = v - f.mean;
    m2 += d * d;
    m3 += d * d * d;
    m4 += d * d * d * d;
  }
  const double dn = static_cast<double>(n);
  m2 /= dn;
  m3 /= dn;
  m4 /= dn;
  if (m2 > 1e-12) {
    f.skewness = m3 / std::pow(m2, 1.5);
    f.kurtosis = m4 / (m2 * m2) - 3.0;
  }

  // Trend: least-squares slope scaled to value-units per day.
  const Segment fit = FitSegment(series, 0, series.size());
  f.trend_slope = fit.slope * static_cast<double>(kDay);

  f.acf1 = Autocorrelation(values, 1);
  f.acf2 = Autocorrelation(values, 2);

  size_t crossings = 0;
  for (size_t i = 1; i < n; ++i) {
    if ((values[i - 1] - f.mean) * (values[i] - f.mean) < 0) ++crossings;
  }
  f.crossing_rate = static_cast<double>(crossings) / static_cast<double>(n - 1);

  if (f.stddev > 1e-12) {
    double worst = 0.0;
    for (double v : values) {
      worst = std::max(worst, std::abs(v - f.mean) / f.stddev);
    }
    f.spikiness = worst;
  }
  double energy = 0.0;
  for (double v : values) energy += v * v;
  f.energy = energy / dn;
  return f;
}

}  // namespace hygraph::ts
