#ifndef HYGRAPH_TS_SEGMENTATION_H_
#define HYGRAPH_TS_SEGMENTATION_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// One piecewise-linear segment fitted to samples [begin, end) of a series.
struct Segment {
  size_t begin = 0;  ///< first sample index (inclusive)
  size_t end = 0;    ///< one past the last sample index
  Timestamp start_time = 0;
  Timestamp end_time = 0;  ///< timestamp of the last sample in the segment
  double slope = 0.0;      ///< least-squares slope (value units per ms)
  double intercept = 0.0;  ///< value at start_time under the fit
  double error = 0.0;      ///< sum of squared residuals of the fit

  size_t length() const { return end - begin; }
};

/// Least-squares line fit over samples [begin, end); exposed for tests.
Segment FitSegment(const Series& series, size_t begin, size_t end);

/// Top-down piecewise-linear segmentation (Table 2, row Q4 "Segmentation"):
/// recursively splits at the point minimizing total residual error until
/// every segment's error is <= max_error or max_segments is reached.
Result<std::vector<Segment>> SegmentTopDown(const Series& series,
                                            double max_error,
                                            size_t max_segments);

/// Bottom-up segmentation: starts from fine segments of `initial_width`
/// samples and greedily merges the cheapest adjacent pair while the merged
/// error stays <= max_error.
Result<std::vector<Segment>> SegmentBottomUp(const Series& series,
                                             double max_error,
                                             size_t initial_width);

/// Changepoint timestamps implied by a segmentation: the boundary between
/// consecutive segments. These drive the paper's Q4 hybrid operator
/// ("graph snapshots at significant time intervals identified through time
/// series segmentation").
std::vector<Timestamp> ChangePoints(const std::vector<Segment>& segments);

/// PELT-style mean-shift changepoint detection with an L2 cost and linear
/// penalty: returns sample indices where the mean shifts.
Result<std::vector<size_t>> DetectMeanShifts(const Series& series,
                                             double penalty);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_SEGMENTATION_H_
