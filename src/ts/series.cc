#include "ts/series.h"

#include <algorithm>

namespace hygraph::ts {

Result<Series> Series::FromVectors(std::string name,
                                   std::vector<Timestamp> times,
                                   std::vector<double> values) {
  if (times.size() != values.size()) {
    return Status::InvalidArgument(
        "FromVectors: times and values differ in length");
  }
  Series s(std::move(name));
  s.samples_.reserve(times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    HYGRAPH_RETURN_IF_ERROR(s.Append(times[i], values[i]));
  }
  return s;
}

Status Series::Append(Timestamp t, double value) {
  if (!samples_.empty() && t <= samples_.back().t) {
    return Status::InvalidArgument(
        "Append: timestamp " + FormatTimestamp(t) +
        " not after last sample " + FormatTimestamp(samples_.back().t));
  }
  samples_.push_back(Sample{t, value});
  return Status::OK();
}

void Series::Insert(Timestamp t, double value) {
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, Timestamp ts) { return s.t < ts; });
  if (it != samples_.end() && it->t == t) {
    it->value = value;
    return;
  }
  samples_.insert(it, Sample{t, value});
}

size_t Series::Retain(const Interval& keep) {
  const size_t before = samples_.size();
  auto [lo, hi] = RangeIndices(keep);
  samples_.erase(samples_.begin() + static_cast<ptrdiff_t>(hi),
                 samples_.end());
  samples_.erase(samples_.begin(),
                 samples_.begin() + static_cast<ptrdiff_t>(lo));
  return before - samples_.size();
}

Interval Series::TimeSpan() const {
  if (samples_.empty()) return Interval{0, 0};
  return Interval{samples_.front().t, samples_.back().t + 1};
}

std::pair<size_t, size_t> Series::RangeIndices(
    const Interval& interval) const {
  auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), interval.start,
      [](const Sample& s, Timestamp t) { return s.t < t; });
  auto hi = std::lower_bound(
      lo, samples_.end(), interval.end,
      [](const Sample& s, Timestamp t) { return s.t < t; });
  return {static_cast<size_t>(lo - samples_.begin()),
          static_cast<size_t>(hi - samples_.begin())};
}

Series Series::Slice(const Interval& interval) const {
  Series out(name_);
  auto [lo, hi] = RangeIndices(interval);
  out.samples_.assign(samples_.begin() + static_cast<ptrdiff_t>(lo),
                      samples_.begin() + static_cast<ptrdiff_t>(hi));
  return out;
}

Result<double> Series::ValueAt(Timestamp t) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](Timestamp ts, const Sample& s) { return ts < s.t; });
  if (it == samples_.begin()) {
    return Status::NotFound("no sample at or before " + FormatTimestamp(t));
  }
  return std::prev(it)->value;
}

std::vector<double> Series::Values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.value);
  return out;
}

std::vector<Timestamp> Series::Timestamps() const {
  std::vector<Timestamp> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.t);
  return out;
}

}  // namespace hygraph::ts
