#include "ts/correlate.h"

#include <algorithm>

#include "common/stats.h"

namespace hygraph::ts {

void AlignOnTimestamps(const Series& a, const Series& b,
                       std::vector<double>* va, std::vector<double>* vb) {
  va->clear();
  vb->clear();
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const Timestamp ta = a.at(i).t;
    const Timestamp tb = b.at(j).t;
    if (ta == tb) {
      va->push_back(a.at(i).value);
      vb->push_back(b.at(j).value);
      ++i;
      ++j;
    } else if (ta < tb) {
      ++i;
    } else {
      ++j;
    }
  }
}

Result<double> Correlation(const Series& a, const Series& b,
                           size_t min_overlap) {
  std::vector<double> va;
  std::vector<double> vb;
  AlignOnTimestamps(a, b, &va, &vb);
  if (va.size() < std::max<size_t>(min_overlap, 2)) {
    return Status::FailedPrecondition(
        "correlation: only " + std::to_string(va.size()) +
        " aligned samples (need " + std::to_string(min_overlap) + ")");
  }
  return PearsonCorrelation(va, vb);
}

Result<double> CrossCorrelation(const Series& a, const Series& b,
                                Duration lag_ms, size_t min_overlap) {
  // Shift b's time axis by -lag so that b(t + lag) aligns with a(t).
  Series shifted(b.name());
  for (const Sample& s : b.samples()) {
    HYGRAPH_IGNORE_RESULT(shifted.Append(s.t - lag_ms, s.value));
  }
  return Correlation(a, shifted, min_overlap);
}

Result<BestLag> FindBestLag(const Series& a, const Series& b,
                            Duration max_lag_ms, Duration step_ms) {
  if (step_ms <= 0 || max_lag_ms < 0) {
    return Status::InvalidArgument("FindBestLag: bad lag parameters");
  }
  BestLag best;
  bool found = false;
  for (Duration lag = -max_lag_ms; lag <= max_lag_ms; lag += step_ms) {
    auto c = CrossCorrelation(a, b, lag);
    if (!c.ok()) continue;
    if (!found || *c > best.correlation) {
      best.lag_ms = lag;
      best.correlation = *c;
      found = true;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "FindBestLag: no lag had sufficient overlap");
  }
  return best;
}

Result<Series> SlidingCorrelation(const Series& a, const Series& b,
                                  Duration width, Duration step,
                                  size_t min_overlap) {
  if (width <= 0 || step <= 0) {
    return Status::InvalidArgument("window width/step must be positive");
  }
  const Interval overlap = a.TimeSpan().Intersect(b.TimeSpan());
  Series out(a.name() + "~" + b.name());
  if (overlap.empty()) return out;
  for (Timestamp w = overlap.start; w < overlap.end; w += step) {
    const Interval window{w, w + width};
    auto c = Correlation(a.Slice(window), b.Slice(window), min_overlap);
    if (c.ok()) HYGRAPH_IGNORE_RESULT(out.Append(w, *c));
  }
  return out;
}

std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<Series>& series, size_t min_overlap) {
  const size_t n = series.size();
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    m[i][i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      auto c = Correlation(series[i], series[j], min_overlap);
      const double v = c.ok() ? *c : 0.0;
      m[i][j] = v;
      m[j][i] = v;
    }
  }
  return m;
}

}  // namespace hygraph::ts
