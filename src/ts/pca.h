#ifndef HYGRAPH_TS_PCA_H_
#define HYGRAPH_TS_PCA_H_

#include <vector>

#include "common/status.h"
#include "ts/multiseries.h"

namespace hygraph::ts {

/// Principal component analysis of a multivariate series (observations =
/// rows, variables = columns), computed by Jacobi eigendecomposition of the
/// covariance matrix. Small variable counts (k <= ~64) are the target.
struct PcaResult {
  /// Eigenvalues in decreasing order (variance explained per component).
  std::vector<double> eigenvalues;
  /// Row i = i-th principal axis (unit vector over the variables).
  std::vector<std::vector<double>> components;
};

/// Runs PCA on the variables of `ms`; requires >= 2 rows and >= 1 variable.
Result<PcaResult> ComputePca(const MultiSeries& ms);

/// Yang–Shahabi PCA similarity between two multivariate series: the sum of
/// squared cosines between the first `k` principal axes of each, weighted by
/// explained variance and normalized to [0, 1]. 1 means the series span the
/// same dominant subspace.
Result<double> PcaSimilarity(const MultiSeries& a, const MultiSeries& b,
                             size_t k);

/// Symmetric Jacobi eigendecomposition (exposed for reuse and tests):
/// fills eigenvalues (decreasing) and matching unit eigenvectors (rows).
Status JacobiEigen(std::vector<std::vector<double>> matrix,
                   std::vector<double>* eigenvalues,
                   std::vector<std::vector<double>>* eigenvectors);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_PCA_H_
