#ifndef HYGRAPH_TS_SAX_H_
#define HYGRAPH_TS_SAX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Symbolic Aggregate approXimation (Lin & Keogh): z-normalize, reduce to
/// `segments` PAA frames, quantize each frame against N(0,1) breakpoints
/// into an alphabet of size `alphabet` (2..16). The classic symbolic
/// representation behind fast pattern mining on series — supports the
/// paper's "sequence / motif" row of Table 2 at scale.
struct SaxOptions {
  size_t segments = 8;
  size_t alphabet = 4;  ///< 2..16, symbols 'a', 'b', ...
};

/// Piecewise Aggregate Approximation of a value vector to `segments`
/// frame means. Requires values.size() >= segments >= 1.
Result<std::vector<double>> Paa(const std::vector<double>& values,
                                size_t segments);

/// SAX word of a whole series ("accbba..."); error when the series is
/// shorter than the segment count or the alphabet is out of range.
Result<std::string> SaxWord(const Series& series, const SaxOptions& options);

/// MINDIST lower bound between two SAX words of equal length under the
/// same options (0 when words differ by at most one breakpoint cell
/// everywhere). `original_length` is the length of the series the words
/// were extracted from.
Result<double> SaxMinDist(const std::string& a, const std::string& b,
                          size_t original_length, const SaxOptions& options);

/// Sliding-window SAX: the word of every length-`window` subsequence,
/// stepped by `step` samples. The input to bag-of-patterns style mining.
Result<std::vector<std::string>> SlidingSaxWords(const Series& series,
                                                 size_t window, size_t step,
                                                 const SaxOptions& options);

/// Frequency of each distinct sliding SAX word, most frequent first
/// (bag-of-patterns). Ties break lexicographically.
struct SaxPattern {
  std::string word;
  size_t count = 0;
};
Result<std::vector<SaxPattern>> SaxBagOfPatterns(const Series& series,
                                                 size_t window, size_t step,
                                                 const SaxOptions& options);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_SAX_H_
