#ifndef HYGRAPH_TS_CORRELATE_H_
#define HYGRAPH_TS_CORRELATE_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ts/series.h"

namespace hygraph::ts {

/// Correlation operators (Table 2, row Q3 "Correlation [55]"). Series are
/// aligned on their common timestamps (inner join on the time axis) before
/// computing; series sampled on different grids can first be resampled with
/// DownsampleAverage.

/// Pearson correlation over the aligned common timestamps of a and b.
/// Fails when fewer than `min_overlap` timestamps align.
Result<double> Correlation(const Series& a, const Series& b,
                           size_t min_overlap = 2);

/// Cross-correlation at an integer lag: correlates a(t) with b(t + lag_ms)
/// on the aligned grid.
Result<double> CrossCorrelation(const Series& a, const Series& b,
                                Duration lag_ms, size_t min_overlap = 2);

/// The lag in [-max_lag_ms, +max_lag_ms] (stepped by step_ms) maximizing
/// cross-correlation, together with that correlation.
struct BestLag {
  Duration lag_ms = 0;
  double correlation = 0.0;
};
Result<BestLag> FindBestLag(const Series& a, const Series& b,
                            Duration max_lag_ms, Duration step_ms);

/// Sliding-window correlation: for each window of `width` ms stepped by
/// `step` ms over the overlap of a and b, one output sample at the window
/// start holding the in-window Pearson correlation. Windows with fewer than
/// min_overlap aligned points are skipped — this is the "time-varying
/// transactional similarity" the paper stores on TS edges.
Result<Series> SlidingCorrelation(const Series& a, const Series& b,
                                  Duration width, Duration step,
                                  size_t min_overlap = 4);

/// Pairwise correlation matrix for a set of series (row-major n x n).
/// Pairs with insufficient overlap get correlation 0.
std::vector<std::vector<double>> CorrelationMatrix(
    const std::vector<Series>& series, size_t min_overlap = 2);

/// Aligns two series on their shared timestamps; exposed for reuse by DTW
/// preprocessing and tests.
void AlignOnTimestamps(const Series& a, const Series& b,
                       std::vector<double>* va, std::vector<double>* vb);

}  // namespace hygraph::ts

#endif  // HYGRAPH_TS_CORRELATE_H_
