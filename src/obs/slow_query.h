#ifndef HYGRAPH_OBS_SLOW_QUERY_H_
#define HYGRAPH_OBS_SLOW_QUERY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/mutex.h"

namespace hygraph::obs {

struct SlowQueryEntry {
  std::string query;    ///< HGQL text as submitted
  std::string backend;  ///< backend name ("all-in-graph", "polyglot", ...)
  uint64_t nanos = 0;   ///< measured wall time
};

/// Ring buffer of queries that exceeded a latency threshold. Disabled by
/// default (threshold 0): the executor checks `enabled()` — one relaxed
/// atomic load — and when false performs no clock reads and takes no
/// locks, keeping the default path free of observation overhead.
class SlowQueryLog {
 public:
  /// 0 disables the log (the default). Setting a threshold does not clear
  /// previously captured entries.
  void set_threshold_nanos(uint64_t nanos) {
    threshold_nanos_.store(nanos, std::memory_order_relaxed);
  }
  uint64_t threshold_nanos() const {
    return threshold_nanos_.load(std::memory_order_relaxed);
  }
  bool enabled() const { return threshold_nanos() != 0; }

  /// Records the query if the log is enabled and `nanos` meets the
  /// threshold. Keeps at most `capacity()` most-recent entries.
  void MaybeRecord(const std::string& query, const std::string& backend,
                   uint64_t nanos);

  std::vector<SlowQueryEntry> Entries() const;
  void Clear();
  size_t capacity() const { return kCapacity; }

  /// Process-wide log consulted by query::Execute.
  static SlowQueryLog& Global();

 private:
  static constexpr size_t kCapacity = 128;

  std::atomic<uint64_t> threshold_nanos_{0};
  // Unranked by design: obs sits beneath the lock hierarchy (see
  // obs/mutex.h). NOLINT(hygraph-unranked-lock)
  mutable Mutex mu_;
  std::deque<SlowQueryEntry> entries_ HYGRAPH_GUARDED_BY(mu_);
};

}  // namespace hygraph::obs

#endif  // HYGRAPH_OBS_SLOW_QUERY_H_
