#ifndef HYGRAPH_OBS_MUTEX_H_
#define HYGRAPH_OBS_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace hygraph::obs {

/// Capability-annotated plain mutex for the obs layer.
///
/// obs sits BENEATH the instrumented sync layer (common/sync.h): the
/// metrics-registry mutex cannot be instrumented by the registry it guards,
/// and obs code must not include common/sync.h (the layering check in
/// scripts/hygraph_lint.py enforces this). This wrapper adds only the Clang
/// capability annotations — no instrumentation, and deliberately no
/// LockRank: obs locks are leaves that guard pure bookkeeping and are never
/// held while acquiring a ranked hygraph lock.
class HYGRAPH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HYGRAPH_ACQUIRE() { mu_.lock(); }
  bool try_lock() HYGRAPH_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() HYGRAPH_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard equivalent the capability analysis understands.
class HYGRAPH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HYGRAPH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() HYGRAPH_RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace hygraph::obs

#endif  // HYGRAPH_OBS_MUTEX_H_
