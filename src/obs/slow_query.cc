#include "obs/slow_query.h"

namespace hygraph::obs {

void SlowQueryLog::MaybeRecord(const std::string& query,
                               const std::string& backend, uint64_t nanos) {
  const uint64_t threshold = threshold_nanos();
  if (threshold == 0 || nanos < threshold) return;
  MutexLock lock(mu_);
  if (entries_.size() >= kCapacity) entries_.pop_front();
  entries_.push_back(SlowQueryEntry{query, backend, nanos});
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  MutexLock lock(mu_);
  return {entries_.begin(), entries_.end()};
}

void SlowQueryLog::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // NOLINT(hygraph-naked-new)
  return *log;
}

}  // namespace hygraph::obs
