#ifndef HYGRAPH_OBS_METRICS_H_
#define HYGRAPH_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "obs/mutex.h"

namespace hygraph::obs {

/// Runtime metrics for the engine: named counters, gauges, and log-linear
/// latency histograms collected in a MetricsRegistry.
///
/// Naming scheme (see DESIGN.md §9): lower-case dotted paths,
/// "<subsystem>.<what>[_<unit>]" — e.g. "hypertable.chunks_scanned",
/// "wal.bytes_appended", "durable.checkpoint_nanos". Durations are always
/// nanoseconds and end in "_nanos"; byte counts end in "_bytes" or start
/// with "bytes_".
///
/// Cost model: a Counter::Add is one relaxed atomic add — lock-free, and
/// on the single-core reference machine effectively a plain increment
/// (bench_obs measures ~1-2 ns). Registration (counter()/gauge()/
/// histogram()) takes a mutex and allocates; instruments are therefore
/// looked up once at construction time and held as raw pointers, never
/// resolved on the hot path. The registry owns every instrument; pointers
/// stay valid for the registry's lifetime.

/// A monotonically increasing event count. Reset() exists for the
/// work-counter use case (per-query deltas in tests and benches), which a
/// strict Prometheus counter would not allow.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// A point-in-time measurement (bytes resident, recovery record counts).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Bucket geometry shared by Histogram and HistogramSnapshot: log-linear,
/// four linear sub-buckets per power of two (HdrHistogram-style). Values
/// 0..3 are exact; above that, relative bucket width is at most 25%, which
/// bounds the quantile estimation error. 252 buckets cover all of uint64.
inline constexpr int kHistogramSubBucketBits = 2;
inline constexpr size_t kHistogramSubBuckets = 1u << kHistogramSubBucketBits;
// Exponents kHistogramSubBucketBits..63 inclusive each contribute one run of
// sub-buckets (64 - kHistogramSubBucketBits runs), after the exact 0..3 range.
inline constexpr size_t kHistogramBuckets =
    kHistogramSubBuckets + (64 - kHistogramSubBucketBits) * kHistogramSubBuckets;

/// Index of the bucket holding `v`; monotone in v.
size_t HistogramBucketIndex(uint64_t v);
/// Smallest value mapping to bucket `index` (its inclusive lower bound).
uint64_t HistogramBucketLowerBound(size_t index);
/// Largest value mapping to bucket `index` (its inclusive upper bound).
uint64_t HistogramBucketUpperBound(size_t index);

/// An immutable copy of a histogram's state. Merge is commutative and
/// associative (bucket-wise addition, min/max combination), so partial
/// snapshots from independent registries can be combined in any order.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< smallest recorded value; 0 when count == 0
  uint64_t max = 0;  ///< largest recorded value; 0 when count == 0
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Estimated q-quantile (q clamped to [0,1]) by linear interpolation
  /// inside the owning bucket, clamped to the exact [min, max] envelope.
  /// 0 when empty; the single recorded value when count == 1.
  uint64_t Quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  void Merge(const HistogramSnapshot& other);
};

/// A log-linear latency/size histogram. Record is a handful of relaxed
/// atomic operations — safe to call from any thread, cheap enough for
/// per-operation instrumentation.
class Histogram {
 public:
  void Record(uint64_t v);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// A point-in-time copy of a whole registry. Merge folds another snapshot
/// in: counters and histograms add; a gauge present in both keeps the
/// other snapshot's value (last-writer-wins, which keeps Merge
/// associative).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& other);

  /// Prometheus text exposition format. Metric names are prefixed with
  /// "hygraph_" and non-alphanumeric characters become '_'; histogram
  /// buckets export cumulatively with inclusive `le` upper bounds.
  std::string ToPrometheusText() const;
  /// Compact JSON: {"counters": {...}, "gauges": {...}, "histograms":
  /// {"name": {"count","sum","min","max","mean","p50","p90","p99"}}}.
  std::string ToJson() const;
};

/// Owns named instruments. Lookups (registration) are mutex-guarded;
/// the instruments themselves are lock-free. Instances are independent —
/// each storage backend carries its own registry so tests can assert on
/// per-store counts — and Global() serves code without a natural owner
/// (WAL default, core::Serialize).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned pointer lives as long as the registry.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every counter and histogram (gauges keep their last value).
  void Reset();

  /// Process-wide registry for instrumentation without a natural owner.
  static MetricsRegistry& Global();

 private:
  // Unranked by design: obs sits beneath the lock hierarchy (see
  // obs/mutex.h). NOLINT(hygraph-unranked-lock)
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      HYGRAPH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      HYGRAPH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HYGRAPH_GUARDED_BY(mu_);
};

}  // namespace hygraph::obs

#endif  // HYGRAPH_OBS_METRICS_H_
