#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace hygraph::obs {

uint64_t TraceNode::self_nanos() const {
  uint64_t children_total = 0;
  for (const TraceNode& c : children) children_total += c.total_nanos;
  return children_total >= total_nanos ? 0 : total_nanos - children_total;
}

const TraceNode* TraceNode::FindChild(const std::string& child_name) const {
  for (const TraceNode& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

uint64_t TraceNode::SumSelfNanos() const {
  uint64_t total = self_nanos();
  for (const TraceNode& c : children) total += c.SumSelfNanos();
  return total;
}

std::string TraceNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += name;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ": count=%" PRIu64 " total_ns=%" PRIu64 " self_ns=%" PRIu64,
                count, total_nanos, self_nanos());
  out += buf;
  for (const auto& [k, v] : counters) {
    std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, k.c_str(), v);
    out += buf;
  }
  out.push_back('\n');
  for (const TraceNode& c : children) out += c.ToString(indent + 1);
  return out;
}

TraceNode* Tracer::NodeAt(const std::vector<size_t>& path) {
  TraceNode* node = &root_;
  for (size_t idx : path) node = &node->children[idx];
  return node;
}

Tracer::SpanId Tracer::Begin(const std::string& name) {
  std::vector<size_t> path =
      stack_.empty() ? std::vector<size_t>{} : stack_.back().path;
  TraceNode* parent = NodeAt(path);
  size_t child_idx = parent->children.size();
  for (size_t i = 0; i < parent->children.size(); ++i) {
    if (parent->children[i].name == name) {
      child_idx = i;
      break;
    }
  }
  if (child_idx == parent->children.size()) {
    TraceNode child;
    child.name = name;
    parent->children.push_back(std::move(child));
  }
  path.push_back(child_idx);
  Frame frame;
  frame.path = std::move(path);
  frame.start_nanos = clock_->NowNanos();
  stack_.push_back(std::move(frame));
  return stack_.size() - 1;
}

void Tracer::End(SpanId id) {
  // Out-of-order End indicates a bug in instrumentation; ignore rather
  // than corrupt the tree (ScopedSpan guarantees LIFO order).
  if (stack_.empty() || id != stack_.size() - 1) return;
  const uint64_t elapsed = clock_->NowNanos() - stack_.back().start_nanos;
  TraceNode* node = NodeAt(stack_.back().path);
  node->count += 1;
  node->total_nanos += elapsed;
  if (stack_.size() == 1) root_.total_nanos += elapsed;
  stack_.pop_back();
}

void Tracer::MergeChildSpan(const std::string& name, uint64_t count,
                            uint64_t nanos) {
  TraceNode* parent = stack_.empty() ? &root_ : NodeAt(stack_.back().path);
  for (TraceNode& child : parent->children) {
    if (child.name == name) {
      child.count += count;
      child.total_nanos += nanos;
      return;
    }
  }
  TraceNode child;
  child.name = name;
  child.count = count;
  child.total_nanos = nanos;
  parent->children.push_back(std::move(child));
}

void Tracer::AddCounter(const std::string& name, uint64_t delta) {
  TraceNode* node =
      stack_.empty() ? &root_ : NodeAt(stack_.back().path);
  node->counters[name] += delta;
}

}  // namespace hygraph::obs
