#include "obs/clock.h"

#include <chrono>

namespace hygraph::obs {

Clock::~Clock() = default;

uint64_t SystemClock::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SystemClock* SystemClock::Instance() {
  static SystemClock clock;
  return &clock;
}

}  // namespace hygraph::obs
