#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace hygraph::obs {

size_t HistogramBucketIndex(uint64_t v) {
  if (v < kHistogramSubBuckets) return static_cast<size_t>(v);
  // Exponent of the highest set bit; >= kHistogramSubBucketBits here.
  const int e = 63 - std::countl_zero(v);
  const uint64_t sub =
      (v >> (e - kHistogramSubBucketBits)) - kHistogramSubBuckets;
  return kHistogramSubBuckets +
         static_cast<size_t>(e - kHistogramSubBucketBits) *
             kHistogramSubBuckets +
         static_cast<size_t>(sub);
}

uint64_t HistogramBucketLowerBound(size_t index) {
  if (index < kHistogramSubBuckets) return index;
  const size_t b = index - kHistogramSubBuckets;
  const int e = static_cast<int>(b / kHistogramSubBuckets) +
                kHistogramSubBucketBits;
  const uint64_t sub = b % kHistogramSubBuckets;
  return (kHistogramSubBuckets + sub) << (e - kHistogramSubBucketBits);
}

uint64_t HistogramBucketUpperBound(size_t index) {
  if (index + 1 >= kHistogramBuckets) return UINT64_MAX;
  return HistogramBucketLowerBound(index + 1) - 1;
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, count] of the requested quantile (nearest-rank, then
  // interpolated within the owning bucket).
  const double target = q * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const uint64_t lo = HistogramBucketLowerBound(i);
      const uint64_t hi = HistogramBucketUpperBound(i);
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      const double width = static_cast<double>(hi - lo);
      uint64_t est = lo + static_cast<uint64_t>(width * frac);
      // The true extrema are tracked exactly; never report outside them.
      est = std::clamp(est, min, max);
      return est;
    }
    seen += in_bucket;
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (size_t i = 0; i < kHistogramBuckets; ++i) buckets[i] += other.buckets[i];
}

void Histogram::Record(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  buckets_[HistogramBucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) histograms[name].Merge(h);
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "hygraph_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  char buf[160];
  for (const auto& [name, v] : counters) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " counter\n";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", p.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + FormatDouble(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = PrometheusName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      std::snprintf(buf, sizeof(buf),
                    "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", p.c_str(),
                    HistogramBucketUpperBound(i), cumulative);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  p.c_str(), h.count);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %" PRIu64 "\n", p.c_str(), h.sum);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_count %" PRIu64 "\n", p.c_str(),
                  h.count);
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[96];
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, v);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    out += FormatDouble(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64,
                  h.count, h.sum, h.min, h.max);
    out += buf;
    out += ",\"mean\":" + FormatDouble(h.mean());
    std::snprintf(buf, sizeof(buf),
                  ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64 ",\"p99\":%" PRIu64
                  "}",
                  h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99));
    out += buf;
  }
  out += "}}";
  return out;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->Snapshot();
  return s;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // NOLINT(hygraph-naked-new)
  return *registry;
}

}  // namespace hygraph::obs
