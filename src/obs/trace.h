#ifndef HYGRAPH_OBS_TRACE_H_
#define HYGRAPH_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace hygraph::obs {

/// One aggregated operator in a trace tree. Repeated spans with the same
/// name under the same parent merge into a single node (EXPLAIN
/// ANALYZE-style "loops" aggregation): `count` is how many times the span
/// ran, `total_nanos` the summed wall time across runs. Plain value type —
/// copyable, no pointers — so a finished trace can be returned, stored,
/// and compared in tests.
struct TraceNode {
  std::string name;
  uint64_t count = 0;
  uint64_t total_nanos = 0;
  /// Work attributed to this span (rows, points scanned, cache hits, ...).
  std::map<std::string, uint64_t> counters;
  std::vector<TraceNode> children;

  /// Time spent in this span itself, excluding child spans.
  uint64_t self_nanos() const;
  /// Child with `child_name`, or nullptr. Linear scan; trees are small.
  const TraceNode* FindChild(const std::string& child_name) const;
  /// Sum of self_nanos over this node and all descendants (== total_nanos
  /// when children's time telescopes, i.e. children never outlive parent).
  uint64_t SumSelfNanos() const;

  /// Indented one-line-per-node rendering:
  ///   match: count=1 total_ns=500 self_ns=200 rows=10
  std::string ToString(int indent = 0) const;
};

/// Builds a TraceNode tree from nested Begin/End calls. Spans must nest
/// strictly (End only the most recent unfinished span) — enforced by the
/// RAII ScopedSpan wrapper, which is the only intended way to use this.
///
/// Not thread-safe: one Tracer per operation, used from one thread. The
/// null Tracer is the disabled state — ScopedSpan(nullptr, ...) performs
/// no clock reads and no allocation, so instrumented code pays nothing
/// when tracing is off.
class Tracer {
 public:
  using SpanId = size_t;

  explicit Tracer(const Clock* clock = SystemClock::Instance())
      : clock_(clock) {
    root_.name = "root";
    root_.count = 1;
  }

  SpanId Begin(const std::string& name);
  void End(SpanId id);
  /// Adds `delta` to a counter on the innermost open span (the root when
  /// no span is open).
  void AddCounter(const std::string& name, uint64_t delta);
  /// Merges a pre-aggregated child span under the innermost open span,
  /// using the same same-name merge rule as Begin/End. This is how time
  /// measured off-thread enters the tree: worker threads cannot Begin/End
  /// on this (single-threaded) tracer, so the owner sums their busy time
  /// and folds it in after the join. The child's nanos may exceed the
  /// parent's wall time — workers run concurrently; self_nanos clamps.
  void MergeChildSpan(const std::string& name, uint64_t count,
                      uint64_t nanos);

  /// The synthetic root whose children are the top-level spans. Valid
  /// once all spans have ended; its total_nanos is the sum of top-level
  /// span times.
  const TraceNode& root() const { return root_; }
  size_t open_spans() const { return stack_.size(); }
  const Clock* clock() const { return clock_; }

 private:
  struct Frame {
    std::vector<size_t> path;  // child indices from root_ to the node
    uint64_t start_nanos = 0;
  };

  TraceNode* NodeAt(const std::vector<size_t>& path);

  const Clock* clock_;
  TraceNode root_;
  std::vector<Frame> stack_;
};

/// RAII span handle. Null tracer → every member is a no-op, which is the
/// "disabled" fast path the overhead budget is measured against.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const std::string& name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->Begin(name);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->End(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddCounter(const std::string& name, uint64_t delta) {
    if (tracer_ != nullptr && delta != 0) tracer_->AddCounter(name, delta);
  }
  /// Folds off-thread work in as a merged child of this span (no-op when
  /// disabled or when there is nothing to record).
  void MergeChild(const std::string& name, uint64_t count, uint64_t nanos) {
    if (tracer_ != nullptr && count != 0) {
      tracer_->MergeChildSpan(name, count, nanos);
    }
  }
  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  Tracer::SpanId id_ = 0;
};

}  // namespace hygraph::obs

#endif  // HYGRAPH_OBS_TRACE_H_
