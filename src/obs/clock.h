#ifndef HYGRAPH_OBS_CLOCK_H_
#define HYGRAPH_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace hygraph::obs {

/// Monotonic time source for every latency measurement in HyGraph. All
/// timing — trace spans, PROFILE operator trees, slow-query detection,
/// bench harness stopwatches — goes through this interface so tests can
/// inject a deterministic clock (scripts/hygraph_lint.py forbids raw
/// std::chrono::steady_clock::now() outside src/obs/).
class Clock {
 public:
  virtual ~Clock();

  /// Nanoseconds on a monotonic axis. Only differences are meaningful.
  virtual uint64_t NowNanos() const = 0;
};

/// The real monotonic clock (std::chrono::steady_clock).
class SystemClock final : public Clock {
 public:
  uint64_t NowNanos() const override;

  /// Process-wide instance; never null.
  static SystemClock* Instance();
};

/// A hand-cranked clock for deterministic tests: time only moves when the
/// test advances it, or by a fixed `auto_advance` per reading (so code
/// under test that brackets work with two NowNanos() calls sees a stable,
/// reproducible duration). The counter is atomic so a ManualClock injected
/// into concurrent code under test keeps time monotone instead of racing
/// on the mutable member (auto_advance must be configured before sharing).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t start_nanos = 0) : now_(start_nanos) {}

  uint64_t NowNanos() const override {
    return now_.fetch_add(auto_advance_, std::memory_order_relaxed) +
           auto_advance_;
  }

  void Advance(uint64_t nanos) {
    now_.fetch_add(nanos, std::memory_order_relaxed);
  }
  /// Every NowNanos() call moves time forward by `nanos` before reading.
  void set_auto_advance(uint64_t nanos) { auto_advance_ = nanos; }

 private:
  mutable std::atomic<uint64_t> now_;
  uint64_t auto_advance_ = 0;
};

}  // namespace hygraph::obs

#endif  // HYGRAPH_OBS_CLOCK_H_
