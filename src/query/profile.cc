#include "query/profile.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "query/parser.h"

namespace hygraph::query {

std::string ProfiledQuery::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "PROFILE wall_ns=%" PRIu64 " rows=%zu\n", wall_nanos,
                result.rows.size());
  std::string out = buf;
  if (!cut.ok()) out += "CUT " + cut.ToString() + "\n";
  return out + trace.ToString();
}

QueryResult ProfiledQuery::ToResult() const {
  QueryResult out;
  out.columns.push_back("operator");
  const std::string rendered = ToString();
  size_t start = 0;
  while (start < rendered.size()) {
    size_t end = rendered.find('\n', start);
    if (end == std::string::npos) end = rendered.size();
    out.rows.push_back({Value(rendered.substr(start, end - start))});
    start = end + 1;
  }
  return out;
}

Result<ProfiledQuery> Profile(const QueryBackend& backend,
                              const std::string& query_text,
                              const PlannerOptions& options,
                              const obs::Clock* clock) {
  if (clock == nullptr) clock = obs::SystemClock::Instance();
  obs::Tracer tracer(clock);
  const uint64_t start = clock->NowNanos();
  ProfiledQuery profiled;
  {
    obs::ScopedSpan query_span(&tracer, "query");
    Result<Plan> plan = [&]() -> Result<Plan> {
      obs::ScopedSpan compile_span(&tracer, "compile");
      auto ast = Parse(query_text);
      if (!ast.ok()) return ast.status();
      return CompileQuery(*ast, options);
    }();
    if (!plan.ok()) return plan.status();
    auto result = RunPlan(backend, *plan, &tracer);
    if (!result.ok()) {
      // A governance cut still yields a profile: the spans that ran up to
      // the interruption are the answer to "where did the deadline land".
      if (!result.status().IsInterruption()) return result.status();
      profiled.cut = result.status();
    } else {
      profiled.result = std::move(*result);
    }
  }
  profiled.wall_nanos = clock->NowNanos() - start;
  // root() has a single child: the "query" span wrapping compile + execute.
  profiled.trace = tracer.root().children.front();
  return profiled;
}

Result<ProfiledQuery> ProfilePlan(const QueryBackend& backend,
                                  const Plan& plan, const obs::Clock* clock) {
  if (clock == nullptr) clock = obs::SystemClock::Instance();
  obs::Tracer tracer(clock);
  const uint64_t start = clock->NowNanos();
  auto result = RunPlan(backend, plan, &tracer);
  const uint64_t wall = clock->NowNanos() - start;
  ProfiledQuery profiled;
  if (!result.ok()) {
    if (!result.status().IsInterruption()) return result.status();
    profiled.cut = result.status();
  } else {
    profiled.result = std::move(*result);
  }
  profiled.wall_nanos = wall;
  // root() has a single child: the "execute" span from RunPlan.
  profiled.trace = tracer.root().children.front();
  return profiled;
}

Result<QueryResult> Explain(const QueryBackend& backend,
                            const std::string& query_text,
                            const PlannerOptions& options) {
  auto ast = Parse(query_text);
  if (!ast.ok()) return ast.status();
  auto plan = CompileQuery(*ast, options);
  if (!plan.ok()) return plan.status();
  return ExplainPlan(backend, *plan);
}

Result<QueryResult> ExplainPlan(const QueryBackend& backend,
                                const Plan& plan) {
  QueryResult out;
  out.columns.push_back("plan");
  out.rows.push_back({Value("backend: " + backend.name())});
  out.rows.push_back({Value(plan.ToString())});
  return out;
}

}  // namespace hygraph::query
