#include "query/functions.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"
#include "graph/pattern.h"
#include "ts/aggregate.h"
#include "ts/anomaly.h"
#include "ts/correlate.h"
#include "ts/sax.h"
#include "ts/segmentation.h"

namespace hygraph::query {

namespace {

// Range aggregates: ts_<agg>(x.key, t1, t2). Shared by EvalCall and the
// executor's prefetch detection (CollectAggregateCallSites).
constexpr struct {
  const char* fn;
  ts::AggKind kind;
} kAggFns[] = {
    {"ts_avg", ts::AggKind::kAvg},       {"ts_sum", ts::AggKind::kSum},
    {"ts_min", ts::AggKind::kMin},       {"ts_max", ts::AggKind::kMax},
    {"ts_count", ts::AggKind::kCount},   {"ts_stddev", ts::AggKind::kStdDev},
    {"ts_first", ts::AggKind::kFirst},   {"ts_last", ts::AggKind::kLast},
};

const ts::AggKind* AggKindForName(const std::string& lowered) {
  for (const auto& fn : kAggFns) {
    if (lowered == fn.fn) return &fn.kind;
  }
  return nullptr;
}

Status ArityError(const std::string& name, size_t expected, size_t got) {
  return Status::InvalidArgument(name + " expects " +
                                 std::to_string(expected) + " arguments, got " +
                                 std::to_string(got));
}

// Numeric binary arithmetic; null propagates.
Result<Value> Arith(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value();
  auto da = a.ToDouble();
  if (!da.ok()) return da.status();
  auto db = b.ToDouble();
  if (!db.ok()) return db.status();
  double out = 0.0;
  switch (op) {
    case BinaryOp::kAdd:
      out = *da + *db;
      break;
    case BinaryOp::kSub:
      out = *da - *db;
      break;
    case BinaryOp::kMul:
      out = *da * *db;
      break;
    case BinaryOp::kDiv:
      if (*db == 0.0) {
        return Status::InvalidArgument("division by zero");
      }
      out = *da / *db;
      break;
    default:
      return Status::Internal("Arith called with non-arithmetic op");
  }
  // Keep integer arithmetic integral when both inputs were ints and the
  // result is exact.
  if (a.is_int() && b.is_int() && op != BinaryOp::kDiv) {
    return Value(static_cast<int64_t>(out));
  }
  return Value(out);
}

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_bool()) return v.AsBool();
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDouble() != 0.0;
  if (v.is_string()) return !v.AsString().empty();
  return false;
}

}  // namespace

Result<Value> Evaluator::Eval(
    const Expr& expr, const Bindings& bindings,
    const std::map<std::string, Value>* aliases) const {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kVariable: {
      if (aliases != nullptr) {
        auto it = aliases->find(expr.var);
        if (it != aliases->end()) return it->second;
      }
      auto bound = bindings.find(expr.var);
      if (bound != bindings.end()) {
        return Value(static_cast<int64_t>(bound->second.id));
      }
      return Status::InvalidArgument("unbound variable '" + expr.var + "'");
    }
    case Expr::Kind::kPropertyRef: {
      auto bound = bindings.find(expr.var);
      if (bound == bindings.end()) {
        return Status::InvalidArgument("unbound variable '" + expr.var + "'");
      }
      const auto& topo = backend_->topology();
      Result<Value> value =
          bound->second.is_edge
              ? topo.GetEdgeProperty(bound->second.id, expr.key)
              : topo.GetVertexProperty(bound->second.id, expr.key);
      if (!value.ok()) return Value();  // missing property -> null
      return *value;
    }
    case Expr::Kind::kUnary: {
      auto operand = Eval(*expr.lhs, bindings, aliases);
      if (!operand.ok()) return operand;
      if (expr.unary_op == UnaryOp::kNot) {
        return Value(!Truthy(*operand));
      }
      if (operand->is_null()) return Value();
      if (operand->is_int()) return Value(-operand->AsInt());
      auto d = operand->ToDouble();
      if (!d.ok()) return d.status();
      return Value(-*d);
    }
    case Expr::Kind::kBinary: {
      if (expr.binary_op == BinaryOp::kAnd) {
        auto lhs = Eval(*expr.lhs, bindings, aliases);
        if (!lhs.ok()) return lhs;
        if (!Truthy(*lhs)) return Value(false);
        auto rhs = Eval(*expr.rhs, bindings, aliases);
        if (!rhs.ok()) return rhs;
        return Value(Truthy(*rhs));
      }
      if (expr.binary_op == BinaryOp::kOr) {
        auto lhs = Eval(*expr.lhs, bindings, aliases);
        if (!lhs.ok()) return lhs;
        if (Truthy(*lhs)) return Value(true);
        auto rhs = Eval(*expr.rhs, bindings, aliases);
        if (!rhs.ok()) return rhs;
        return Value(Truthy(*rhs));
      }
      auto lhs = Eval(*expr.lhs, bindings, aliases);
      if (!lhs.ok()) return lhs;
      auto rhs = Eval(*expr.rhs, bindings, aliases);
      if (!rhs.ok()) return rhs;
      switch (expr.binary_op) {
        case BinaryOp::kEq:
          return Value(*lhs == *rhs);
        case BinaryOp::kNe:
          return Value(!(*lhs == *rhs));
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          if (lhs->is_null() || rhs->is_null()) return Value(false);
          const int c = lhs->Compare(*rhs);
          switch (expr.binary_op) {
            case BinaryOp::kLt:
              return Value(c < 0);
            case BinaryOp::kLe:
              return Value(c <= 0);
            case BinaryOp::kGt:
              return Value(c > 0);
            default:
              return Value(c >= 0);
          }
        }
        default:
          return Arith(expr.binary_op, *lhs, *rhs);
      }
    }
    case Expr::Kind::kCall:
      return EvalCall(expr, bindings, aliases);
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> Evaluator::EvalPredicate(const Expr& expr,
                                      const Bindings& bindings) const {
  auto value = Eval(expr, bindings);
  if (!value.ok()) return value.status();
  return Truthy(*value);
}

Result<ts::Series> Evaluator::SeriesRangeArg(const Expr& prop_ref,
                                             const Bindings& bindings,
                                             const Interval& interval) const {
  if (prop_ref.kind != Expr::Kind::kPropertyRef) {
    return Status::InvalidArgument(
        "ts_* functions take a property reference (var.key) as the series "
        "argument");
  }
  auto bound = bindings.find(prop_ref.var);
  if (bound == bindings.end()) {
    return Status::InvalidArgument("unbound variable '" + prop_ref.var + "'");
  }
  const RangeKey cache_key{bound->second.is_edge, bound->second.id,
                           prop_ref.key, interval.start, interval.end};
  auto hit = range_cache_.find(cache_key);
  if (hit != range_cache_.end()) {
    ++memo_stats_.hits;
    return hit->second;
  }
  ++memo_stats_.misses;
  auto series =
      bound->second.is_edge
          ? backend_->EdgeSeriesRange(bound->second.id, prop_ref.key, interval)
          : backend_->VertexSeriesRange(bound->second.id, prop_ref.key,
                                        interval);
  if (!series.ok()) return series;
  constexpr size_t kRangeCacheCap = 64;
  if (range_cache_.size() >= kRangeCacheCap) range_cache_.clear();
  range_cache_.emplace(cache_key, *series);
  return series;
}

Result<double> Evaluator::SeriesAggregateArg(const Expr& prop_ref,
                                             const Bindings& bindings,
                                             const Interval& interval,
                                             ts::AggKind kind) const {
  if (prop_ref.kind != Expr::Kind::kPropertyRef) {
    return Status::InvalidArgument(
        "ts_* functions take a property reference (var.key) as the series "
        "argument");
  }
  auto bound = bindings.find(prop_ref.var);
  if (bound == bindings.end()) {
    return Status::InvalidArgument("unbound variable '" + prop_ref.var + "'");
  }
  const AggKey cache_key{bound->second.is_edge, bound->second.id,
                         prop_ref.key,          interval.start,
                         interval.end,          static_cast<int>(kind)};
  auto hit = agg_cache_.find(cache_key);
  if (hit != agg_cache_.end()) {
    ++memo_stats_.hits;
    return hit->second;
  }
  ++memo_stats_.misses;
  auto result =
      bound->second.is_edge
          ? backend_->EdgeSeriesAggregate(bound->second.id, prop_ref.key,
                                          interval, kind)
          : backend_->VertexSeriesAggregate(bound->second.id, prop_ref.key,
                                            interval, kind);
  // A prefetched batch holds one entry per matched entity, so the cap is
  // sized for multi-entity scans rather than the range memo's 64.
  constexpr size_t kAggCacheCap = 4096;
  if (agg_cache_.size() >= kAggCacheCap) agg_cache_.clear();
  agg_cache_.emplace(cache_key, result);
  return result;
}

void Evaluator::PrefetchAggregates(const std::vector<Binding>& entities,
                                   const std::string& key,
                                   const Interval& interval,
                                   ts::AggKind kind) const {
  std::vector<uint64_t> vertices;
  std::vector<uint64_t> edges;
  for (const Binding& b : entities) {
    const AggKey cache_key{b.is_edge,     b.id,         key,
                           interval.start, interval.end, static_cast<int>(kind)};
    if (agg_cache_.find(cache_key) != agg_cache_.end()) continue;
    (b.is_edge ? edges : vertices).push_back(b.id);
  }
  auto seed = [&](bool is_edge, std::vector<uint64_t>* ids) {
    std::sort(ids->begin(), ids->end());
    ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
    if (ids->empty()) return;
    auto results = is_edge
                       ? backend_->EdgeSeriesAggregateBatch(*ids, key,
                                                            interval, kind)
                       : backend_->VertexSeriesAggregateBatch(*ids, key,
                                                              interval, kind);
    for (size_t i = 0; i < ids->size() && i < results.size(); ++i) {
      agg_cache_.emplace(AggKey{is_edge, (*ids)[i], key, interval.start,
                                interval.end, static_cast<int>(kind)},
                         std::move(results[i]));
    }
  };
  seed(false, &vertices);
  seed(true, &edges);
}

void CollectAggregateCallSites(const Expr& expr,
                               std::vector<AggregateCallSite>* out) {
  if (expr.lhs) CollectAggregateCallSites(*expr.lhs, out);
  if (expr.rhs) CollectAggregateCallSites(*expr.rhs, out);
  for (const ExprPtr& arg : expr.args) {
    if (arg) CollectAggregateCallSites(*arg, out);
  }
  if (expr.kind != Expr::Kind::kCall || expr.args.size() != 3) return;
  const ts::AggKind* kind = AggKindForName(ToLower(expr.call_name));
  if (kind == nullptr) return;
  const Expr& series = *expr.args[0];
  const Expr& t1 = *expr.args[1];
  const Expr& t2 = *expr.args[2];
  if (series.kind != Expr::Kind::kPropertyRef) return;
  if (t1.kind != Expr::Kind::kLiteral || t2.kind != Expr::Kind::kLiteral) {
    return;  // row-dependent bounds cannot be hoisted across rows
  }
  auto lo = t1.literal.ToDouble();
  auto hi = t2.literal.ToDouble();
  if (!lo.ok() || !hi.ok()) return;
  out->push_back(AggregateCallSite{
      series.var, series.key,
      Interval{static_cast<Timestamp>(*lo), static_cast<Timestamp>(*hi)},
      *kind});
}

Result<Value> Evaluator::EvalCall(
    const Expr& expr, const Bindings& bindings,
    const std::map<std::string, Value>* aliases) const {
  const std::string name = ToLower(expr.call_name);

  auto interval_from_args = [&](size_t t1_idx) -> Result<Interval> {
    auto t1 = Eval(*expr.args[t1_idx], bindings, aliases);
    if (!t1.ok()) return t1.status();
    auto t2 = Eval(*expr.args[t1_idx + 1], bindings, aliases);
    if (!t2.ok()) return t2.status();
    auto d1 = t1->ToDouble();
    if (!d1.ok()) return d1.status();
    auto d2 = t2->ToDouble();
    if (!d2.ok()) return d2.status();
    return Interval{static_cast<Timestamp>(*d1), static_cast<Timestamp>(*d2)};
  };

  if (const ts::AggKind* agg_kind = AggKindForName(name)) {
    if (expr.args.size() != 3) return Status(ArityError(name, 3, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto result =
        SeriesAggregateArg(*expr.args[0], bindings, *interval, *agg_kind);
    if (!result.ok()) {
      // Aggregate over an empty/missing range is null, not an error, so
      // WHERE predicates degrade gracefully.
      if (result.status().code() == StatusCode::kNotFound) return Value();
      return result.status();
    }
    return Value(*result);
  }

  if (name == "ts_corr") {
    if (expr.args.size() != 4) return Status(ArityError(name, 4, expr.args.size()));
    auto interval = interval_from_args(2);
    if (!interval.ok()) return interval.status();
    auto a = SeriesRangeArg(*expr.args[0], bindings, *interval);
    if (!a.ok()) return a.status();
    auto b = SeriesRangeArg(*expr.args[1], bindings, *interval);
    if (!b.ok()) return b.status();
    auto corr = ts::Correlation(*a, *b);
    if (!corr.ok()) return Value();  // insufficient overlap -> null
    return Value(*corr);
  }

  if (name == "ts_count_between") {
    // ts_count_between(x.key, t1, t2, lo, hi): pushed down whole so the
    // hypertable can skip or count compressed chunks from zone maps.
    if (expr.args.size() != 5) return Status(ArityError(name, 5, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto lo = Eval(*expr.args[3], bindings, aliases);
    if (!lo.ok()) return lo;
    auto hi = Eval(*expr.args[4], bindings, aliases);
    if (!hi.ok()) return hi;
    auto lod = lo->ToDouble();
    if (!lod.ok()) return lod.status();
    auto hid = hi->ToDouble();
    if (!hid.ok()) return hid.status();
    const Expr& prop_ref = *expr.args[0];
    if (prop_ref.kind != Expr::Kind::kPropertyRef) {
      return Status::InvalidArgument(
          "ts_count_between takes a property reference (var.key) as the "
          "series argument");
    }
    auto bound = bindings.find(prop_ref.var);
    if (bound == bindings.end()) {
      return Status::InvalidArgument("unbound variable '" + prop_ref.var +
                                     "'");
    }
    auto n = bound->second.is_edge
                 ? backend_->EdgeSeriesCountInRange(
                       bound->second.id, prop_ref.key, *interval, *lod, *hid)
                 : backend_->VertexSeriesCountInRange(
                       bound->second.id, prop_ref.key, *interval, *lod, *hid);
    if (!n.ok()) {
      // Missing series counts like an empty one, matching ts_count.
      if (n.status().code() == StatusCode::kNotFound) return Value(int64_t{0});
      return n.status();
    }
    return Value(static_cast<int64_t>(*n));
  }

  if (name == "ts_window_agg") {
    if (expr.args.size() != 6) return Status(ArityError(name, 6, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto width = Eval(*expr.args[3], bindings, aliases);
    if (!width.ok()) return width;
    auto wd = width->ToDouble();
    if (!wd.ok()) return wd.status();
    auto inner = Eval(*expr.args[4], bindings, aliases);
    if (!inner.ok()) return inner;
    auto outer = Eval(*expr.args[5], bindings, aliases);
    if (!outer.ok()) return outer;
    if (!inner->is_string() || !outer->is_string()) {
      return Status::InvalidArgument(
          "ts_window_agg: inner/outer aggregate names must be strings");
    }
    auto inner_kind = ts::ParseAggKind(inner->AsString());
    if (!inner_kind.ok()) return inner_kind.status();
    auto outer_kind = ts::ParseAggKind(outer->AsString());
    if (!outer_kind.ok()) return outer_kind.status();
    // Windowing goes through the backend so engines with native
    // time_bucket support (the hypertable) skip materialization.
    const Expr& prop_ref = *expr.args[0];
    if (prop_ref.kind != Expr::Kind::kPropertyRef) {
      return Status::InvalidArgument(
          "ts_window_agg takes a property reference (var.key) as the "
          "series argument");
    }
    auto bound = bindings.find(prop_ref.var);
    if (bound == bindings.end()) {
      return Status::InvalidArgument("unbound variable '" + prop_ref.var +
                                     "'");
    }
    auto windowed =
        bound->second.is_edge
            ? backend_->EdgeSeriesWindowAggregate(
                  bound->second.id, prop_ref.key, *interval,
                  static_cast<Duration>(*wd), *inner_kind)
            : backend_->VertexSeriesWindowAggregate(
                  bound->second.id, prop_ref.key, *interval,
                  static_cast<Duration>(*wd), *inner_kind);
    if (!windowed.ok()) return windowed.status();
    auto reduced = ts::Aggregate(*windowed, Interval::All(), *outer_kind);
    if (!reduced.ok()) return Value();
    return Value(*reduced);
  }

  if (name == "ts_slope") {
    // Least-squares trend slope in value-units per day over the range.
    if (expr.args.size() != 3) return Status(ArityError(name, 3, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto series = SeriesRangeArg(*expr.args[0], bindings, *interval);
    if (!series.ok()) return series.status();
    if (series->size() < 2) return Value();
    const ts::Segment fit = ts::FitSegment(*series, 0, series->size());
    return Value(fit.slope * static_cast<double>(kDay));
  }

  if (name == "ts_anomaly_count") {
    // Number of sliding-window anomalies (24-sample trailing window) whose
    // local z-score reaches the given threshold.
    if (expr.args.size() != 4) return Status(ArityError(name, 4, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto threshold = Eval(*expr.args[3], bindings, aliases);
    if (!threshold.ok()) return threshold;
    auto td = threshold->ToDouble();
    if (!td.ok()) return td.status();
    auto series = SeriesRangeArg(*expr.args[0], bindings, *interval);
    if (!series.ok()) return series.status();
    auto anomalies = ts::DetectSlidingWindow(*series, 24, *td);
    if (!anomalies.ok()) return Value(int64_t{0});
    return Value(static_cast<int64_t>(anomalies->size()));
  }

  if (name == "ts_sax") {
    // SAX word of the range: ts_sax(x.key, t1, t2, segments, alphabet).
    if (expr.args.size() != 5) return Status(ArityError(name, 5, expr.args.size()));
    auto interval = interval_from_args(1);
    if (!interval.ok()) return interval.status();
    auto segments = Eval(*expr.args[3], bindings, aliases);
    if (!segments.ok()) return segments;
    auto alphabet = Eval(*expr.args[4], bindings, aliases);
    if (!alphabet.ok()) return alphabet;
    auto sd = segments->ToDouble();
    auto ad = alphabet->ToDouble();
    if (!sd.ok()) return sd.status();
    if (!ad.ok()) return ad.status();
    auto series = SeriesRangeArg(*expr.args[0], bindings, *interval);
    if (!series.ok()) return series.status();
    ts::SaxOptions options;
    options.segments = static_cast<size_t>(*sd);
    options.alphabet = static_cast<size_t>(*ad);
    auto word = ts::SaxWord(*series, options);
    if (!word.ok()) return Value();  // too short -> null
    return Value(*word);
  }

  if (name == "degree" || name == "in_degree" || name == "out_degree") {
    if (expr.args.size() != 1) return Status(ArityError(name, 1, expr.args.size()));
    const Expr& arg = *expr.args[0];
    if (arg.kind != Expr::Kind::kVariable) {
      return Status::InvalidArgument(name + " expects a vertex variable");
    }
    auto bound = bindings.find(arg.var);
    if (bound == bindings.end() || bound->second.is_edge) {
      return Status::InvalidArgument(name + " expects a bound vertex variable");
    }
    const auto& topo = backend_->topology();
    size_t d = 0;
    if (name == "degree") {
      d = topo.Degree(bound->second.id);
    } else if (name == "in_degree") {
      d = topo.InDegree(bound->second.id);
    } else {
      d = topo.OutDegree(bound->second.id);
    }
    return Value(static_cast<int64_t>(d));
  }

  if (name == "id") {
    if (expr.args.size() != 1) return Status(ArityError(name, 1, expr.args.size()));
    const Expr& arg = *expr.args[0];
    if (arg.kind != Expr::Kind::kVariable) {
      return Status::InvalidArgument("id expects a variable");
    }
    auto bound = bindings.find(arg.var);
    if (bound == bindings.end()) {
      return Status::InvalidArgument("unbound variable '" + arg.var + "'");
    }
    return Value(static_cast<int64_t>(bound->second.id));
  }

  if (name == "abs") {
    if (expr.args.size() != 1) return Status(ArityError(name, 1, expr.args.size()));
    auto v = Eval(*expr.args[0], bindings, aliases);
    if (!v.ok()) return v;
    if (v->is_null()) return Value();
    if (v->is_int()) return Value(std::abs(v->AsInt()));
    auto d = v->ToDouble();
    if (!d.ok()) return d.status();
    return Value(std::abs(*d));
  }

  if (name == "coalesce") {
    if (expr.args.size() != 2) return Status(ArityError(name, 2, expr.args.size()));
    auto a = Eval(*expr.args[0], bindings, aliases);
    if (!a.ok()) return a;
    if (!a->is_null()) return a;
    return Eval(*expr.args[1], bindings, aliases);
  }

  return Status::InvalidArgument("unknown function '" + expr.call_name + "'");
}

}  // namespace hygraph::query
