#ifndef HYGRAPH_QUERY_LEXER_H_
#define HYGRAPH_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace hygraph::query {

/// Token kinds of HGQL. Keywords are case-insensitive; identifiers keep
/// their case.
enum class TokenKind : uint8_t {
  kEnd,
  kIdent,       // station_name, s, ts_avg
  kKeyword,     // MATCH WHERE RETURN ORDER BY LIMIT AS AND OR NOT ASC DESC
                // TRUE FALSE NULL
  kInt,         // 42
  kDouble,      // 3.5
  kString,      // 'text' or "text"
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kColon,       // :
  kComma,       // ,
  kDot,         // .
  kEq,          // =
  kNe,          // <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kArrowRight,  // ->
  kArrowLeft,   // <-
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      ///< raw text (uppercased for keywords)
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;   ///< byte offset for error messages
};

/// Tokenizes an HGQL query. Fails on unterminated strings or unexpected
/// characters, reporting the byte offset.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_LEXER_H_
