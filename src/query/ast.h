#ifndef HYGRAPH_QUERY_AST_H_
#define HYGRAPH_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace hygraph::query {

/// HGQL — the small declarative query language of this library. One query:
///
///   MATCH (s:Station {district: 3})-[t:TRIP]->(d:Station)
///   WHERE ts_avg(s.bikes, 0, 86400000) > 5 AND d.capacity >= 20
///   RETURN s.name AS src, d.name AS dst, ts_avg(d.bikes, 0, 86400000) AS a
///   ORDER BY a DESC
///   LIMIT 10
///
/// The AST below mirrors that shape. Expressions are a small tree of
/// literals, property references, comparisons, boolean connectives,
/// arithmetic, and function calls (the ts_* family plus scalar helpers).

// ---- expressions -----------------------------------------------------------

enum class BinaryOp : uint8_t {
  kAnd,
  kOr,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpName(BinaryOp op);

enum class UnaryOp : uint8_t { kNot, kNeg };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kLiteral,      ///< constant Value
    kPropertyRef,  ///< var.key
    kVariable,     ///< bare variable (used by ORDER BY aliases)
    kBinary,
    kUnary,
    kCall,
  };

  Kind kind = Kind::kLiteral;

  // kLiteral
  Value literal;
  // kPropertyRef
  std::string var;
  std::string key;
  // kVariable: reuses `var`
  // kBinary / kUnary
  BinaryOp binary_op = BinaryOp::kAnd;
  UnaryOp unary_op = UnaryOp::kNot;
  ExprPtr lhs;
  ExprPtr rhs;  // null for unary
  // kCall
  std::string call_name;
  std::vector<ExprPtr> args;

  static ExprPtr Literal(Value v);
  static ExprPtr PropertyRef(std::string var, std::string key);
  static ExprPtr Variable(std::string var);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args);

  /// Deep copy.
  ExprPtr Clone() const;
  /// Round-trippable rendering for diagnostics.
  std::string ToString() const;
};

// ---- MATCH patterns ----------------------------------------------------------

/// A node element of a path pattern: (var:Label {key: literal, ...}).
struct NodeAst {
  std::string var;    ///< may be empty (anonymous)
  std::string label;  ///< may be empty
  std::vector<std::pair<std::string, Value>> properties;
};

/// An edge element: -[var:LABEL]-> / <-[...]- / -[...]-.
struct EdgeAst {
  std::string var;
  std::string label;
  std::vector<std::pair<std::string, Value>> properties;
  enum class Dir : uint8_t { kRight, kLeft, kUndirected } dir = Dir::kRight;
};

/// One path: node (edge node)*.
struct PathAst {
  std::vector<NodeAst> nodes;
  std::vector<EdgeAst> edges;  ///< edges.size() == nodes.size() - 1
};

// ---- query ------------------------------------------------------------------

struct ReturnItem {
  ExprPtr expr;
  std::string alias;  ///< defaults to expr->ToString() when empty
};

struct OrderItem {
  ExprPtr expr;  ///< usually a kVariable referencing a RETURN alias
  bool descending = false;
};

/// How the query should run: normally, or through the EXPLAIN / PROFILE
/// observability surface (a leading keyword before MATCH). EXPLAIN
/// compiles and renders the plan without executing; PROFILE executes with
/// trace spans and returns the per-operator tree.
enum class QueryMode : uint8_t { kNormal, kExplain, kProfile };

struct QueryAst {
  QueryMode mode = QueryMode::kNormal;
  std::vector<PathAst> paths;  ///< comma-separated MATCH patterns
  ExprPtr where;               ///< null when absent
  bool distinct = false;       ///< RETURN DISTINCT
  std::vector<ReturnItem> returns;
  std::vector<OrderItem> order_by;
  size_t limit = 0;        ///< 0 = no limit
  uint64_t timeout_ms = 0;  ///< query deadline in ms; 0 = none. Set by a
                            ///< "SET TIMEOUT <ms>" prefix or a trailing
                            ///< "TIMEOUT <ms>" clause (the clause wins).
};

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_AST_H_
