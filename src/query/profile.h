#ifndef HYGRAPH_QUERY_PROFILE_H_
#define HYGRAPH_QUERY_PROFILE_H_

#include <string>

#include "obs/clock.h"
#include "obs/trace.h"
#include "query/executor.h"

namespace hygraph::query {

/// The result of running a query under PROFILE: the normal rows plus the
/// aggregated per-operator trace tree and end-to-end wall time. Because
/// every operator's children telescope into its total, the summed self
/// times of the tree equal the root total by construction, and the root
/// total is bracketed by the same two clock reads as `wall_nanos` minus
/// plan compilation — the ISSUE's "timings reconcile with wall time"
/// property is structural, not sampled.
struct ProfiledQuery {
  QueryResult result;     ///< the rows the query would normally return
  obs::TraceNode trace;   ///< the "execute" operator (or "query" when
                          ///< compiled from text, with compile + execute
                          ///< children)
  uint64_t wall_nanos = 0;
  /// Governance interruption that cut the query short (kDeadlineExceeded /
  /// kCancelled / kResourceExhausted), or OK for a run to completion. A cut
  /// profile keeps its operator tree — the spans that ran up to the cut —
  /// with `result` empty and a `cut:<reason>` counter on the execute span,
  /// so PROFILE shows *where* the deadline landed instead of erroring out.
  Status cut = Status::OK();

  [[nodiscard]] bool was_cut() const { return !cut.ok(); }

  /// Header line (wall time, row count) + indented operator tree.
  std::string ToString() const;
  /// The PROFILE query surface: one column "operator", one row per line
  /// of ToString() (what `Execute` returns for a PROFILE query).
  QueryResult ToResult() const;
};

/// Parses, compiles, and runs `query_text` under trace spans. A leading
/// EXPLAIN/PROFILE keyword in the text is ignored — calling Profile *is*
/// the opt-in. `clock` defaults to the real SystemClock; tests inject a
/// ManualClock with auto-advance for deterministic trees.
Result<ProfiledQuery> Profile(const QueryBackend& backend,
                              const std::string& query_text,
                              const PlannerOptions& options = {},
                              const obs::Clock* clock = nullptr);

/// Runs an already-compiled plan under trace spans (plan.mode ignored).
Result<ProfiledQuery> ProfilePlan(const QueryBackend& backend,
                                  const Plan& plan,
                                  const obs::Clock* clock = nullptr);

/// Compiles `query_text` and renders the plan without executing it.
Result<QueryResult> Explain(const QueryBackend& backend,
                            const std::string& query_text,
                            const PlannerOptions& options = {});

/// The EXPLAIN rendering of an already-compiled plan: column "plan",
/// one row for the backend name and one for Plan::ToString().
Result<QueryResult> ExplainPlan(const QueryBackend& backend,
                                const Plan& plan);

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_PROFILE_H_
