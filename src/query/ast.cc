#include "query/ast.h"

namespace hygraph::query {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::PropertyRef(std::string var, std::string key) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kPropertyRef;
  e->var = std::move(var);
  e->key = std::move(key);
  return e;
}

ExprPtr Expr::Variable(std::string var) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVariable;
  e->var = std::move(var);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::Call(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCall;
  e->call_name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->var = var;
  e->key = key;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  e->call_name = call_name;
  for (const ExprPtr& arg : args) e->args.push_back(arg->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.is_string() ? "'" + literal.ToString() + "'"
                                 : literal.ToString();
    case Kind::kPropertyRef:
      return var + "." + key;
    case Kind::kVariable:
      return var;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + BinaryOpName(binary_op) + " " +
             rhs->ToString() + ")";
    case Kind::kUnary:
      return unary_op == UnaryOp::kNot ? "NOT " + lhs->ToString()
                                       : "-" + lhs->ToString();
    case Kind::kCall: {
      std::string out = call_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace hygraph::query
