#include "query/parser.h"

#include <utility>

#include "query/lexer.h"

namespace hygraph::query {

namespace {

/// Hard ceiling on recursive-descent nesting. Without it, inputs like a
/// megabyte of '(' or of 'NOT ' recurse once per token and overflow the
/// stack (found by fuzz_hgql_parse); 200 levels is far beyond any
/// legitimate query while keeping worst-case stack use small.
constexpr int kMaxParseDepth = 200;

/// Largest accepted TIMEOUT, in milliseconds (24 hours). Anything beyond
/// this is a typo or an attack, not a deadline — and capping here keeps
/// the ms→ns conversion downstream comfortably inside uint64.
constexpr int64_t kMaxTimeoutMs = 86'400'000;

/// Recursive-descent parser over the token stream. Expression precedence
/// (loosest to tightest): OR, AND, NOT, comparison, additive,
/// multiplicative, unary minus, primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> ParseQuery() {
    QueryAst query;
    // Session-style prefix: "SET TIMEOUT <ms> MATCH ...". Comes before
    // EXPLAIN/PROFILE so the governed statement can still be profiled.
    if (AcceptKeyword("SET")) {
      HYGRAPH_RETURN_IF_ERROR(ExpectKeyword("TIMEOUT"));
      auto ms = ParseTimeoutMillis();
      if (!ms.ok()) return ms.status();
      query.timeout_ms = *ms;
    }
    if (AcceptKeyword("EXPLAIN")) {
      query.mode = QueryMode::kExplain;
    } else if (AcceptKeyword("PROFILE")) {
      query.mode = QueryMode::kProfile;
    }
    HYGRAPH_RETURN_IF_ERROR(ExpectKeyword("MATCH"));
    while (true) {
      auto path = ParsePath();
      if (!path.ok()) return path.status();
      query.paths.push_back(std::move(*path));
      if (!AcceptKind(TokenKind::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      query.where = std::move(*where);
    }
    HYGRAPH_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
    query.distinct = AcceptKeyword("DISTINCT");
    while (true) {
      auto item = ParseExpr();
      if (!item.ok()) return item.status();
      ReturnItem ri;
      ri.expr = std::move(*item);
      if (AcceptKeyword("AS")) {
        auto alias = ExpectIdent();
        if (!alias.ok()) return alias.status();
        ri.alias = *alias;
      } else {
        ri.alias = ri.expr->ToString();
      }
      query.returns.push_back(std::move(ri));
      if (!AcceptKind(TokenKind::kComma)) break;
    }
    if (AcceptKeyword("ORDER")) {
      HYGRAPH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        OrderItem oi;
        oi.expr = std::move(*expr);
        if (AcceptKeyword("DESC")) {
          oi.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        query.order_by.push_back(std::move(oi));
        if (!AcceptKind(TokenKind::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInt) {
        return Fail("LIMIT expects an integer");
      }
      query.limit = static_cast<size_t>(Peek().int_value);
      Advance();
    }
    // Per-statement clause; overrides a SET TIMEOUT prefix when both given.
    if (AcceptKeyword("TIMEOUT")) {
      auto ms = ParseTimeoutMillis();
      if (!ms.ok()) return ms.status();
      query.timeout_ms = *ms;
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Fail("unexpected trailing input '" + Peek().text + "'");
    }
    return query;
  }

  Result<ExprPtr> ParseExprOnly() {
    auto expr = ParseExpr();
    if (!expr.ok()) return expr.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Status(Fail("unexpected trailing input '" + Peek().text + "'"));
    }
    return std::move(*expr);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool AcceptKind(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (Peek().kind != TokenKind::kKeyword || Peek().text != kw) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Fail("expected keyword " + kw + ", found '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectKind(TokenKind kind, const char* what) {
    if (!AcceptKind(kind)) {
      return Fail(std::string("expected ") + what + ", found '" +
                  Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status(Fail("expected identifier, found '" + Peek().text + "'"));
    }
    std::string out = Peek().text;
    Advance();
    return out;
  }
  Status Fail(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (offset " +
                                   std::to_string(Peek().position) + ")");
  }

  /// One TIMEOUT operand: a positive integer of milliseconds, capped at
  /// kMaxTimeoutMs. The lexer already rejects literals that overflow
  /// int64, so int_value is trustworthy here.
  Result<uint64_t> ParseTimeoutMillis() {
    if (Peek().kind != TokenKind::kInt) {
      return Status(
          Fail("TIMEOUT expects a positive integer of milliseconds"));
    }
    const int64_t ms = Peek().int_value;
    if (ms <= 0) {
      return Status(Fail("TIMEOUT must be a positive number of ms"));
    }
    if (ms > kMaxTimeoutMs) {
      return Status(Fail("TIMEOUT exceeds the maximum of " +
                         std::to_string(kMaxTimeoutMs) + " ms"));
    }
    Advance();
    return static_cast<uint64_t>(ms);
  }

  /// Counts live recursive productions; every self-recursive entry point
  /// (expressions, unary chains, literals) takes one before descending.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser* parser) : parser_(parser) { ++parser_->depth_; }
    ~DepthGuard() { --parser_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser* parser_;
  };

  Status CheckDepth() const {
    if (depth_ < kMaxParseDepth) return Status::OK();
    return Fail("query nesting exceeds the maximum depth of " +
                std::to_string(kMaxParseDepth));
  }

  // ---- patterns -------------------------------------------------------------

  Result<Value> ParseLiteralValue() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        Value v(t.int_value);
        Advance();
        return v;
      }
      case TokenKind::kDouble: {
        Value v(t.double_value);
        Advance();
        return v;
      }
      case TokenKind::kString: {
        Value v(t.text);
        Advance();
        return v;
      }
      case TokenKind::kMinus: {
        HYGRAPH_RETURN_IF_ERROR(CheckDepth());
        DepthGuard depth(this);
        Advance();
        auto inner = ParseLiteralValue();
        if (!inner.ok()) return inner.status();
        if (inner->is_int()) return Value(-inner->AsInt());
        if (inner->is_double()) return Value(-inner->AsDouble());
        return Status(Fail("cannot negate non-numeric literal"));
      }
      case TokenKind::kKeyword:
        if (t.text == "TRUE") {
          Advance();
          return Value(true);
        }
        if (t.text == "FALSE") {
          Advance();
          return Value(false);
        }
        if (t.text == "NULL") {
          Advance();
          return Value();
        }
        [[fallthrough]];
      default:
        return Status(Fail("expected literal, found '" + t.text + "'"));
    }
  }

  Result<std::vector<std::pair<std::string, Value>>> ParsePropertyMap() {
    std::vector<std::pair<std::string, Value>> props;
    if (!AcceptKind(TokenKind::kLBrace)) return props;
    while (true) {
      auto key = ExpectIdent();
      if (!key.ok()) return key.status();
      HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kColon, "':'"));
      auto value = ParseLiteralValue();
      if (!value.ok()) return value.status();
      props.emplace_back(*key, std::move(*value));
      if (!AcceptKind(TokenKind::kComma)) break;
    }
    HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBrace, "'}'"));
    return props;
  }

  Result<NodeAst> ParseNode() {
    HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen, "'('"));
    NodeAst node;
    if (Peek().kind == TokenKind::kIdent) {
      node.var = Peek().text;
      Advance();
    }
    if (AcceptKind(TokenKind::kColon)) {
      auto label = ExpectIdent();
      if (!label.ok()) return label.status();
      node.label = *label;
    }
    auto props = ParsePropertyMap();
    if (!props.ok()) return props.status();
    node.properties = std::move(*props);
    HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "')'"));
    return node;
  }

  // Parses the edge part between two nodes; entry token is '-' or '<-'.
  Result<EdgeAst> ParseEdge() {
    EdgeAst edge;
    bool left_arrow = false;
    if (AcceptKind(TokenKind::kArrowLeft)) {
      left_arrow = true;
    } else {
      HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kMinus, "'-'"));
    }
    if (AcceptKind(TokenKind::kLBracket)) {
      if (Peek().kind == TokenKind::kIdent) {
        edge.var = Peek().text;
        Advance();
      }
      if (AcceptKind(TokenKind::kColon)) {
        auto label = ExpectIdent();
        if (!label.ok()) return label.status();
        edge.label = *label;
      }
      auto props = ParsePropertyMap();
      if (!props.ok()) return props.status();
      edge.properties = std::move(*props);
      HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBracket, "']'"));
    }
    if (left_arrow) {
      edge.dir = EdgeAst::Dir::kLeft;
      HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kMinus, "'-'"));
    } else if (AcceptKind(TokenKind::kArrowRight)) {
      edge.dir = EdgeAst::Dir::kRight;
    } else if (AcceptKind(TokenKind::kMinus)) {
      edge.dir = EdgeAst::Dir::kUndirected;
    } else {
      return Status(Fail("expected '->' or '-' after edge"));
    }
    return edge;
  }

  Result<PathAst> ParsePath() {
    PathAst path;
    auto first = ParseNode();
    if (!first.ok()) return first.status();
    path.nodes.push_back(std::move(*first));
    while (Peek().kind == TokenKind::kMinus ||
           Peek().kind == TokenKind::kArrowLeft) {
      auto edge = ParseEdge();
      if (!edge.ok()) return edge.status();
      auto node = ParseNode();
      if (!node.ok()) return node.status();
      path.edges.push_back(std::move(*edge));
      path.nodes.push_back(std::move(*node));
    }
    return path;
  }

  // ---- expressions ------------------------------------------------------------

  Result<ExprPtr> ParseExpr() {
    HYGRAPH_RETURN_IF_ERROR(CheckDepth());
    DepthGuard depth(this);
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(BinaryOp::kOr, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    while (AcceptKeyword("AND")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(*lhs), std::move(*rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      HYGRAPH_RETURN_IF_ERROR(CheckDepth());
      DepthGuard depth(this);
      auto operand = ParseNot();
      if (!operand.ok()) return operand;
      return Expr::Unary(UnaryOp::kNot, std::move(*operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    BinaryOp op;
    bool negate_rhs = false;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      case TokenKind::kArrowLeft:
        // "x < -1" lexes as ArrowLeft; reinterpret as '<' + unary minus.
        op = BinaryOp::kLt;
        negate_rhs = true;
        break;
      default:
        return lhs;
    }
    Advance();
    auto rhs = ParseAdditive();
    if (!rhs.ok()) return rhs;
    ExprPtr right = std::move(*rhs);
    if (negate_rhs) right = Expr::Unary(UnaryOp::kNeg, std::move(right));
    return Expr::Binary(op, std::move(*lhs), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(*lhs), std::move(*rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return lhs;
      }
      Advance();
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      lhs = Expr::Binary(op, std::move(*lhs), std::move(*rhs));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptKind(TokenKind::kMinus)) {
      HYGRAPH_RETURN_IF_ERROR(CheckDepth());
      DepthGuard depth(this);
      auto operand = ParseUnary();
      if (!operand.ok()) return operand;
      return Expr::Unary(UnaryOp::kNeg, std::move(*operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        Advance();
        return Expr::Literal(Value(t.int_value));
      }
      case TokenKind::kDouble: {
        Advance();
        return Expr::Literal(Value(t.double_value));
      }
      case TokenKind::kString: {
        Advance();
        return Expr::Literal(Value(t.text));
      }
      case TokenKind::kKeyword:
        if (t.text == "TRUE") {
          Advance();
          return Expr::Literal(Value(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return Expr::Literal(Value(false));
        }
        if (t.text == "NULL") {
          Advance();
          return Expr::Literal(Value());
        }
        return Status(Fail("unexpected keyword '" + t.text + "'"));
      case TokenKind::kLParen: {
        Advance();
        auto inner = ParseExpr();
        if (!inner.ok()) return inner;
        HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "')'"));
        return inner;
      }
      case TokenKind::kIdent: {
        const std::string name = t.text;
        Advance();
        if (AcceptKind(TokenKind::kLParen)) {
          // Function call.
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            while (true) {
              auto arg = ParseExpr();
              if (!arg.ok()) return arg;
              args.push_back(std::move(*arg));
              if (!AcceptKind(TokenKind::kComma)) break;
            }
          }
          HYGRAPH_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen, "')'"));
          return Expr::Call(name, std::move(args));
        }
        if (AcceptKind(TokenKind::kDot)) {
          auto key = ExpectIdent();
          if (!key.ok()) return key.status();
          return Expr::PropertyRef(name, *key);
        }
        return Expr::Variable(name);
      }
      default:
        return Status(Fail("unexpected token '" + t.text + "'"));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<QueryAst> Parse(const std::string& text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseQuery();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseExprOnly();
}

}  // namespace hygraph::query
