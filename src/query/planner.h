#ifndef HYGRAPH_QUERY_PLANNER_H_
#define HYGRAPH_QUERY_PLANNER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/pattern.h"
#include "query/ast.h"

namespace hygraph::query {

/// A logical plan compiled from a QueryAst:
///
///   * the structural pattern handed to the subgraph matcher (node labels,
///     inline property maps, and pushed-down WHERE conjuncts become pattern
///     predicates);
///   * the residual WHERE expression (everything that could not be pushed
///     down, e.g. ts_* calls and multi-variable comparisons);
///   * projection / ordering / limit.
struct Plan {
  QueryMode mode = QueryMode::kNormal;  ///< EXPLAIN / PROFILE prefix
  graph::Pattern pattern;
  /// Edge variable → index into pattern.edges (only named edges).
  std::map<std::string, size_t> edge_vars;
  ExprPtr residual_where;  ///< null when everything was pushed down
  bool distinct = false;   ///< de-duplicate projected rows
  std::vector<ReturnItem> returns;
  std::vector<OrderItem> order_by;
  size_t limit = 0;
  uint64_t timeout_ms = 0;  ///< query deadline in ms; 0 = none

  /// Diagnostic rendering (pattern variables, pushed predicates, residual).
  std::string ToString() const;
};

/// Compiles an AST into a Plan. Performs predicate pushdown: top-level AND
/// conjuncts of the form `var.key <cmp> literal` move into the matching
/// vertex/edge pattern so the matcher prunes candidates early (this is the
/// Q8-style optimization the ablation bench toggles).
struct PlannerOptions {
  bool enable_pushdown = true;
};
Result<Plan> CompileQuery(const QueryAst& ast,
                          const PlannerOptions& options = {});

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_PLANNER_H_
