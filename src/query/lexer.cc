#include "query/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace hygraph::query {

namespace {

bool IsKeyword(const std::string& upper) {
  static const std::unordered_set<std::string>* kKeywords =
      // NOLINTNEXTLINE(hygraph-naked-new): leaked singleton
      new std::unordered_set<std::string>{
          "MATCH", "WHERE", "RETURN",   "ORDER",    "BY",      "LIMIT",
          "AS",    "AND",   "OR",       "NOT",      "ASC",     "DESC",
          "TRUE",  "FALSE", "NULL",     "DISTINCT", "EXPLAIN", "PROFILE",
          "SET",   "TIMEOUT"};
  return kKeywords->count(upper) > 0;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](TokenKind kind, std::string tok_text, size_t pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(tok_text);
    t.position = pos;
    tokens.push_back(std::move(t));
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      std::string word = text.substr(i, j - i);
      std::string upper = word;
      for (char& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      if (IsKeyword(upper)) {
        push(TokenKind::kKeyword, upper, start);
      } else {
        push(TokenKind::kIdent, std::move(word), start);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool has_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       (text[j] == '.' && !has_dot && j + 1 < n &&
                        std::isdigit(static_cast<unsigned char>(text[j + 1]))))) {
        if (text[j] == '.') has_dot = true;
        ++j;
      }
      const std::string num = text.substr(i, j - i);
      Token t;
      t.position = start;
      t.text = num;
      if (has_dot) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInt;
        errno = 0;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          // strtoll saturates to LLONG_MAX on overflow; surfacing that as a
          // parse error beats silently evaluating a different number.
          return Status::InvalidArgument("integer literal '" + num +
                                         "' out of range at offset " +
                                         std::to_string(start));
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string content;
      while (j < n && text[j] != quote) {
        content.push_back(text[j]);
        ++j;
      }
      if (j >= n) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " + std::to_string(start));
      }
      push(TokenKind::kString, std::move(content), start);
      i = j + 1;
      continue;
    }
    auto two = [&](char next) { return i + 1 < n && text[i + 1] == next; };
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        break;
      case '[':
        push(TokenKind::kLBracket, "[", start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, "]", start);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace, "{", start);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace, "}", start);
        ++i;
        break;
      case ':':
        push(TokenKind::kColon, ":", start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, "+", start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, "/", start);
        ++i;
        break;
      case '-':
        if (two('>')) {
          push(TokenKind::kArrowRight, "->", start);
          i += 2;
        } else if (two('[')) {
          // '-[' begins an edge; emit the minus, parser handles kLBracket.
          push(TokenKind::kMinus, "-", start);
          ++i;
        } else {
          push(TokenKind::kMinus, "-", start);
          ++i;
        }
        break;
      case '<':
        if (two('>')) {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else if (two('=')) {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (two('-')) {
          push(TokenKind::kArrowLeft, "<-", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace hygraph::query
