#include "query/planner.h"

#include <algorithm>

namespace hygraph::query {

namespace {

graph::CmpOp ToCmpOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return graph::CmpOp::kEq;
    case BinaryOp::kNe:
      return graph::CmpOp::kNe;
    case BinaryOp::kLt:
      return graph::CmpOp::kLt;
    case BinaryOp::kLe:
      return graph::CmpOp::kLe;
    case BinaryOp::kGt:
      return graph::CmpOp::kGt;
    case BinaryOp::kGe:
      return graph::CmpOp::kGe;
    default:
      return graph::CmpOp::kEq;  // caller guarantees a comparison op
  }
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Splits an expression tree on top-level ANDs.
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr->kind == Expr::Kind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(std::move(expr->lhs), out);
    SplitConjuncts(std::move(expr->rhs), out);
    return;
  }
  out->push_back(std::move(expr));
}

// Recombines conjuncts with AND; null when empty.
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (ExprPtr& c : conjuncts) {
    if (!result) {
      result = std::move(c);
    } else {
      result = Expr::Binary(BinaryOp::kAnd, std::move(result), std::move(c));
    }
  }
  return result;
}

// Recognizes `var.key <cmp> literal` or `literal <cmp> var.key`; fills the
// normalized (var, predicate) form.
bool AsPushablePredicate(const Expr& expr, std::string* var,
                         graph::PropertyPredicate* pred) {
  if (expr.kind != Expr::Kind::kBinary || !IsComparison(expr.binary_op)) {
    return false;
  }
  // `<>` is not pushable: the matcher's predicate semantics make a missing
  // key fail the match, while expression semantics make `null <> lit` true.
  if (expr.binary_op == BinaryOp::kNe) return false;
  const Expr* prop = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (expr.lhs->kind == Expr::Kind::kPropertyRef &&
      expr.rhs->kind == Expr::Kind::kLiteral) {
    prop = expr.lhs.get();
    lit = expr.rhs.get();
  } else if (expr.rhs->kind == Expr::Kind::kPropertyRef &&
             expr.lhs->kind == Expr::Kind::kLiteral) {
    prop = expr.rhs.get();
    lit = expr.lhs.get();
    flipped = true;
  } else {
    return false;
  }
  BinaryOp op = expr.binary_op;
  if (flipped) {
    switch (op) {
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      default:
        break;  // Eq/Ne are symmetric
    }
  }
  *var = prop->var;
  pred->key = prop->key;
  pred->op = ToCmpOp(op);
  pred->value = lit->literal;
  return true;
}

}  // namespace

std::string Plan::ToString() const {
  std::string out = "Plan{vertices=[";
  for (size_t i = 0; i < pattern.vertices.size(); ++i) {
    if (i > 0) out += ", ";
    out += pattern.vertices[i].var;
    if (!pattern.vertices[i].label.empty()) {
      out += ":" + pattern.vertices[i].label;
    }
    if (!pattern.vertices[i].predicates.empty()) {
      out += "(" + std::to_string(pattern.vertices[i].predicates.size()) +
             " preds)";
    }
  }
  out += "], edges=" + std::to_string(pattern.edges.size());
  out += ", residual=";
  out += residual_where ? residual_where->ToString() : "none";
  out += ", limit=" + std::to_string(limit);
  if (timeout_ms != 0) {
    out += ", timeout=" + std::to_string(timeout_ms) + "ms";
  }
  out += "}";
  return out;
}

Result<Plan> CompileQuery(const QueryAst& ast, const PlannerOptions& options) {
  Plan plan;
  if (ast.paths.empty()) {
    return Status::InvalidArgument("query has no MATCH patterns");
  }
  if (ast.returns.empty()) {
    return Status::InvalidArgument("query has no RETURN items");
  }

  // Merge all path nodes into pattern vertices, unifying repeated variables.
  std::map<std::string, size_t> vertex_index;
  size_t anon_counter = 0;
  auto intern_node = [&](const NodeAst& node) -> Result<size_t> {
    std::string var = node.var;
    if (var.empty()) var = "_anon" + std::to_string(anon_counter++);
    auto it = vertex_index.find(var);
    if (it == vertex_index.end()) {
      graph::VertexPattern vp;
      vp.var = var;
      vp.label = node.label;
      for (const auto& [key, value] : node.properties) {
        vp.predicates.push_back(
            graph::PropertyPredicate{key, graph::CmpOp::kEq, value});
      }
      plan.pattern.vertices.push_back(std::move(vp));
      vertex_index[var] = plan.pattern.vertices.size() - 1;
      return plan.pattern.vertices.size() - 1;
    }
    // Repeated variable: merge constraints.
    graph::VertexPattern& vp = plan.pattern.vertices[it->second];
    if (!node.label.empty()) {
      if (vp.label.empty()) {
        vp.label = node.label;
      } else if (vp.label != node.label) {
        return Status::InvalidArgument("variable '" + var +
                                       "' bound to conflicting labels '" +
                                       vp.label + "' and '" + node.label +
                                       "'");
      }
    }
    for (const auto& [key, value] : node.properties) {
      vp.predicates.push_back(
          graph::PropertyPredicate{key, graph::CmpOp::kEq, value});
    }
    return it->second;
  };

  for (const PathAst& path : ast.paths) {
    std::vector<size_t> node_ids;
    for (const NodeAst& node : path.nodes) {
      auto id = intern_node(node);
      if (!id.ok()) return id.status();
      node_ids.push_back(*id);
    }
    for (size_t i = 0; i < path.edges.size(); ++i) {
      const EdgeAst& edge = path.edges[i];
      graph::EdgePattern ep;
      ep.label = edge.label;
      for (const auto& [key, value] : edge.properties) {
        ep.predicates.push_back(
            graph::PropertyPredicate{key, graph::CmpOp::kEq, value});
      }
      const std::string& src_var = plan.pattern.vertices[node_ids[i]].var;
      const std::string& dst_var = plan.pattern.vertices[node_ids[i + 1]].var;
      switch (edge.dir) {
        case EdgeAst::Dir::kRight:
          ep.src_var = src_var;
          ep.dst_var = dst_var;
          ep.direction = graph::Direction::kOut;
          break;
        case EdgeAst::Dir::kLeft:
          ep.src_var = dst_var;
          ep.dst_var = src_var;
          ep.direction = graph::Direction::kOut;
          break;
        case EdgeAst::Dir::kUndirected:
          ep.src_var = src_var;
          ep.dst_var = dst_var;
          ep.direction = graph::Direction::kAny;
          break;
      }
      plan.pattern.edges.push_back(std::move(ep));
      if (!edge.var.empty()) {
        if (plan.edge_vars.count(edge.var) || vertex_index.count(edge.var)) {
          return Status::InvalidArgument("duplicate variable '" + edge.var +
                                         "'");
        }
        plan.edge_vars[edge.var] = plan.pattern.edges.size() - 1;
      }
    }
  }

  // WHERE pushdown.
  if (ast.where) {
    std::vector<ExprPtr> conjuncts;
    SplitConjuncts(ast.where->Clone(), &conjuncts);
    std::vector<ExprPtr> residual;
    for (ExprPtr& conjunct : conjuncts) {
      std::string var;
      graph::PropertyPredicate pred;
      if (options.enable_pushdown &&
          AsPushablePredicate(*conjunct, &var, &pred)) {
        auto vit = vertex_index.find(var);
        if (vit != vertex_index.end()) {
          plan.pattern.vertices[vit->second].predicates.push_back(
              std::move(pred));
          continue;
        }
        auto eit = plan.edge_vars.find(var);
        if (eit != plan.edge_vars.end()) {
          plan.pattern.edges[eit->second].predicates.push_back(
              std::move(pred));
          continue;
        }
      }
      residual.push_back(std::move(conjunct));
    }
    plan.residual_where = CombineConjuncts(std::move(residual));
  }

  for (const ReturnItem& item : ast.returns) {
    plan.returns.push_back(ReturnItem{item.expr->Clone(), item.alias});
  }
  for (const OrderItem& item : ast.order_by) {
    plan.order_by.push_back(OrderItem{item.expr->Clone(), item.descending});
  }
  plan.distinct = ast.distinct;
  plan.limit = ast.limit;
  plan.mode = ast.mode;
  plan.timeout_ms = ast.timeout_ms;
  return plan;
}

}  // namespace hygraph::query
