#ifndef HYGRAPH_QUERY_EXECUTOR_H_
#define HYGRAPH_QUERY_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "common/value.h"
#include "obs/trace.h"
#include "query/backend.h"
#include "query/planner.h"

namespace hygraph::query {

/// A query result: column names plus rows of Values.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  size_t row_count() const { return rows.size(); }
  /// Value at (row, column-name); error on unknown column or row index.
  Result<Value> At(size_t row, const std::string& column) const;
  /// Tab-separated rendering with a header line (for examples/benches).
  std::string ToString(size_t max_rows = 20) const;
};

/// Compiles and runs an HGQL query text against a backend. Honors the
/// query's EXPLAIN / PROFILE prefix: EXPLAIN returns the rendered plan
/// (column "plan") without executing; PROFILE executes under trace spans
/// and returns the per-operator tree (column "operator"). When the global
/// obs::SlowQueryLog is enabled, normal executions exceeding its threshold
/// are captured; when disabled (the default) no clock is read.
Result<QueryResult> Execute(const QueryBackend& backend,
                            const std::string& query_text,
                            const PlannerOptions& options = {});

/// Runs an already-compiled plan (benchmarks compile once, execute many).
/// Dispatches on plan.mode like Execute.
Result<QueryResult> ExecutePlan(const QueryBackend& backend, const Plan& plan);

/// The execution engine under both ExecutePlan and PROFILE: runs the plan,
/// optionally emitting trace spans (match / scan / where / return:<alias> /
/// order_keys / distinct / sort / project) with per-span BackendWork
/// deltas into `tracer`. A null tracer disables all instrumentation —
/// no clock reads, no span bookkeeping. Ignores plan.mode.
Result<QueryResult> RunPlan(const QueryBackend& backend, const Plan& plan,
                            obs::Tracer* tracer);

/// RunPlan under explicit governance. The context (deadline, cancel flag,
/// points budget, memory reservations) is installed as
/// QueryContext::Current() for the duration of the call and threaded into
/// the matcher and every scan loop; an interrupted query returns
/// kDeadlineExceeded / kCancelled / kResourceExhausted, and under PROFILE
/// the execute span carries a `cut:<reason>` counter marking where it was
/// cut. When `context` is null and plan.timeout_ms is set (SET TIMEOUT /
/// TIMEOUT clause), a context is created internally against the real
/// clock. Every execution path — with or without a context — first passes
/// ResourceGovernor::Global()'s admission gate.
Result<QueryResult> RunPlan(const QueryBackend& backend, const Plan& plan,
                            obs::Tracer* tracer, QueryContext* context);

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_EXECUTOR_H_
