#include "query/backend.h"

namespace hygraph::query {

QueryBackend::~QueryBackend() = default;

Result<double> QueryBackend::VertexSeriesAggregate(graph::VertexId v,
                                                   const std::string& key,
                                                   const Interval& interval,
                                                   ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

Result<double> QueryBackend::EdgeSeriesAggregate(graph::EdgeId e,
                                                 const std::string& key,
                                                 const Interval& interval,
                                                 ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

Result<ts::Series> QueryBackend::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

Result<ts::Series> QueryBackend::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

std::vector<std::string> QueryBackend::VertexSeriesKeys(
    graph::VertexId /*v*/) const {
  return {};
}

std::vector<std::string> QueryBackend::EdgeSeriesKeys(
    graph::EdgeId /*e*/) const {
  return {};
}

}  // namespace hygraph::query
