#include "query/backend.h"

#include "ts/hypertable.h"

namespace hygraph::query {

QueryBackend::~QueryBackend() = default;

Status QueryBackend::MutateTopology(
    const std::function<Status(graph::PropertyGraph*)>& fn) {
  graph::PropertyGraph* g = mutable_topology();
  if (g == nullptr) {
    return Status::FailedPrecondition("backend topology is read-only");
  }
  return fn(g);
}

Result<double> QueryBackend::VertexSeriesAggregate(graph::VertexId v,
                                                   const std::string& key,
                                                   const Interval& interval,
                                                   ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

Result<double> QueryBackend::EdgeSeriesAggregate(graph::EdgeId e,
                                                 const std::string& key,
                                                 const Interval& interval,
                                                 ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

std::vector<Result<double>> QueryBackend::VertexSeriesAggregateBatch(
    const std::vector<graph::VertexId>& vertices, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<Result<double>> out;
  out.reserve(vertices.size());
  for (graph::VertexId v : vertices) {
    out.push_back(VertexSeriesAggregate(v, key, interval, kind));
  }
  return out;
}

std::vector<Result<double>> QueryBackend::EdgeSeriesAggregateBatch(
    const std::vector<graph::EdgeId>& edges, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<Result<double>> out;
  out.reserve(edges.size());
  for (graph::EdgeId e : edges) {
    out.push_back(EdgeSeriesAggregate(e, key, interval, kind));
  }
  return out;
}

Result<ts::Series> QueryBackend::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

Result<ts::Series> QueryBackend::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

namespace {

// Shares ScanPredicate's comparison semantics so every engine counts the
// same samples (bounded predicates never select NaN).
size_t CountInRange(const ts::Series& series, double min_value,
                    double max_value) {
  const ts::ScanPredicate predicate{min_value, max_value};
  size_t n = 0;
  for (const ts::Sample& s : series.samples()) {
    if (predicate.Matches(s.value)) ++n;
  }
  return n;
}

}  // namespace

Result<size_t> QueryBackend::VertexSeriesCountInRange(
    graph::VertexId v, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return CountInRange(*series, min_value, max_value);
}

Result<size_t> QueryBackend::EdgeSeriesCountInRange(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return CountInRange(*series, min_value, max_value);
}

std::vector<std::string> QueryBackend::VertexSeriesKeys(
    graph::VertexId /*v*/) const {
  return {};
}

std::vector<std::string> QueryBackend::EdgeSeriesKeys(
    graph::EdgeId /*e*/) const {
  return {};
}

}  // namespace hygraph::query
