#include "query/backend.h"

#include "ts/hypertable.h"

namespace hygraph::query {

QueryBackend::~QueryBackend() = default;

std::string SeriesSlotName(bool vertex, uint64_t entity,
                           const std::string& key) {
  return (vertex ? "v" : "e") + std::to_string(entity) + "." + key;
}

bool ParseSeriesSlotName(const std::string& name, bool* vertex,
                         uint64_t* entity, std::string* key) {
  if (name.size() < 3 || (name[0] != 'v' && name[0] != 'e')) return false;
  const size_t dot = name.find('.');
  if (dot == std::string::npos || dot < 2 || dot + 1 >= name.size()) {
    return false;
  }
  uint64_t id = 0;
  for (size_t i = 1; i < dot; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    if (id > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) return false;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  *vertex = name[0] == 'v';
  *entity = id;
  *key = name.substr(dot + 1);
  return true;
}

Result<SeriesId> QueryBackend::EnsureSeries(bool /*vertex*/,
                                            uint64_t /*entity*/,
                                            const std::string& /*key*/) {
  return Status::Unimplemented(name() + " does not bind catalogued series");
}

Status QueryBackend::MutateTopology(
    const std::function<Status(graph::PropertyGraph*)>& fn) {
  graph::PropertyGraph* g = mutable_topology();
  if (g == nullptr) {
    return Status::FailedPrecondition("backend topology is read-only");
  }
  return fn(g);
}

Result<double> QueryBackend::VertexSeriesAggregate(graph::VertexId v,
                                                   const std::string& key,
                                                   const Interval& interval,
                                                   ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

Result<double> QueryBackend::EdgeSeriesAggregate(graph::EdgeId e,
                                                 const std::string& key,
                                                 const Interval& interval,
                                                 ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::Aggregate(*series, Interval::All(), kind);
}

std::vector<Result<double>> QueryBackend::VertexSeriesAggregateBatch(
    const std::vector<graph::VertexId>& vertices, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<Result<double>> out;
  out.reserve(vertices.size());
  for (graph::VertexId v : vertices) {
    out.push_back(VertexSeriesAggregate(v, key, interval, kind));
  }
  return out;
}

std::vector<Result<double>> QueryBackend::EdgeSeriesAggregateBatch(
    const std::vector<graph::EdgeId>& edges, const std::string& key,
    const Interval& interval, ts::AggKind kind) const {
  std::vector<Result<double>> out;
  out.reserve(edges.size());
  for (graph::EdgeId e : edges) {
    out.push_back(EdgeSeriesAggregate(e, key, interval, kind));
  }
  return out;
}

Result<ts::Series> QueryBackend::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

Result<ts::Series> QueryBackend::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return ts::WindowAggregate(*series, interval.Intersect(series->TimeSpan()),
                             width, kind);
}

namespace {

// Shares ScanPredicate's comparison semantics so every engine counts the
// same samples (bounded predicates never select NaN).
size_t CountInRange(const ts::Series& series, double min_value,
                    double max_value) {
  const ts::ScanPredicate predicate{min_value, max_value};
  size_t n = 0;
  for (const ts::Sample& s : series.samples()) {
    if (predicate.Matches(s.value)) ++n;
  }
  return n;
}

}  // namespace

Result<size_t> QueryBackend::VertexSeriesCountInRange(
    graph::VertexId v, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto series = VertexSeriesRange(v, key, interval);
  if (!series.ok()) return series.status();
  return CountInRange(*series, min_value, max_value);
}

Result<size_t> QueryBackend::EdgeSeriesCountInRange(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto series = EdgeSeriesRange(e, key, interval);
  if (!series.ok()) return series.status();
  return CountInRange(*series, min_value, max_value);
}

std::vector<std::string> QueryBackend::VertexSeriesKeys(
    graph::VertexId /*v*/) const {
  return {};
}

std::vector<std::string> QueryBackend::EdgeSeriesKeys(
    graph::EdgeId /*e*/) const {
  return {};
}

}  // namespace hygraph::query
