#ifndef HYGRAPH_QUERY_PARSER_H_
#define HYGRAPH_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace hygraph::query {

/// Parses an HGQL query:
///
///   MATCH <path> (, <path>)*
///   [WHERE <expr>]
///   RETURN <expr> [AS alias] (, ...)*
///   [ORDER BY <expr> [ASC|DESC] (, ...)*]
///   [LIMIT <int>]
///
/// Paths are node (edge node)* with nodes `(var:Label {k: lit})` and edges
/// `-[var:LABEL {k: lit}]->`, `<-[...]-`, or `-[...]-`.
Result<QueryAst> Parse(const std::string& text);

/// Parses just an expression (used by tests and the analytics layer).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_PARSER_H_
