#ifndef HYGRAPH_QUERY_FUNCTIONS_H_
#define HYGRAPH_QUERY_FUNCTIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "query/ast.h"
#include "query/backend.h"

namespace hygraph::query {

/// What a pattern variable is bound to during evaluation of one row.
struct Binding {
  bool is_edge = false;
  uint64_t id = 0;  ///< VertexId or EdgeId
};
using Bindings = std::map<std::string, Binding>;

/// Evaluates HGQL expressions against a QueryBackend and one row's
/// variable bindings.
///
/// Scalar semantics: missing properties evaluate to null; comparisons with
/// null are false (except `= null` / `<> null`); arithmetic with null is
/// null. Numeric arithmetic widens int to double when mixed.
///
/// Supported functions:
///   ts_avg|ts_sum|ts_min|ts_max|ts_count|ts_stddev|ts_first|ts_last
///       (x.key, t_start, t_end)        range aggregate over a series
///   ts_corr(a.key, b.key, t_start, t_end)
///       Pearson correlation of two series over a range
///   ts_count_between(x.key, t_start, t_end, lo, hi)
///       number of samples in the range with lo <= value <= hi; pushed
///       down to the backend so the hypertable can answer from zone maps
///   ts_window_agg(x.key, t_start, t_end, width_ms, 'inner', 'outer')
///       tumbling-window aggregate `inner`, reduced across windows by
///       `outer` (e.g. daily-average peak = ('avg', 'max'))
///   ts_slope(x.key, t_start, t_end)
///       least-squares trend slope in value-units per day
///   ts_anomaly_count(x.key, t_start, t_end, z_threshold)
///       sliding-window anomaly count (24-sample trailing window)
///   ts_sax(x.key, t_start, t_end, segments, alphabet)
///       SAX word of the range as a string (symbolic shape)
///   degree(v) | in_degree(v) | out_degree(v)   structural degree
///   id(x)                                      bound element id
///   abs(x), coalesce(a, b)                     scalar helpers
class Evaluator {
 public:
  /// Range-memo effectiveness for one Evaluator lifetime (one
  /// ExecutePlan). Surfaced as "query.memo_hits"/"query.memo_misses"
  /// registry counters and as PROFILE span counters.
  struct MemoStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  explicit Evaluator(const QueryBackend* backend) : backend_(backend) {}

  const MemoStats& memo_stats() const { return memo_stats_; }

  /// Computes `kind` over (entity, key, interval) for many entities in one
  /// backend batch call and memoizes the answers, so subsequent per-row
  /// ts_* calls on those entities hit the memo instead of issuing one
  /// backend aggregate each. The hypertable backend fans the batch out
  /// across the worker pool — one morsel per series. Entities may mix
  /// vertices and edges; already-memoized entries are skipped.
  void PrefetchAggregates(const std::vector<Binding>& entities,
                          const std::string& key, const Interval& interval,
                          ts::AggKind kind) const;

  /// Evaluates `expr` under `bindings`. `aliases` (optional) resolves bare
  /// variables that are not pattern bindings — used for ORDER BY on RETURN
  /// aliases.
  Result<Value> Eval(const Expr& expr, const Bindings& bindings,
                     const std::map<std::string, Value>* aliases = nullptr) const;

  /// Evaluates to a boolean for WHERE: null/missing → false.
  Result<bool> EvalPredicate(const Expr& expr, const Bindings& bindings) const;

 private:
  Result<Value> EvalCall(const Expr& expr, const Bindings& bindings,
                         const std::map<std::string, Value>* aliases) const;
  Result<double> SeriesAggregateArg(const Expr& prop_ref,
                                    const Bindings& bindings,
                                    const Interval& interval,
                                    ts::AggKind kind) const;
  Result<ts::Series> SeriesRangeArg(const Expr& prop_ref,
                                    const Bindings& bindings,
                                    const Interval& interval) const;

  const QueryBackend* backend_;

  /// Memo for SeriesRangeArg, keyed (is_edge, id, key, start, end). An
  /// Evaluator lives for one ExecutePlan, where repeated ts_* calls on the
  /// same (entity, key, range) are common — e.g. a correlation query pins
  /// one entity and re-reads its range on every row. Bounded: overflow
  /// clears the whole cache rather than evicting.
  using RangeKey =
      std::tuple<bool, uint64_t, std::string, Timestamp, Timestamp>;
  mutable std::map<RangeKey, ts::Series> range_cache_;

  /// Memo for SeriesAggregateArg, keyed (is_edge, id, key, start, end,
  /// kind). Seeded in bulk by PrefetchAggregates; also fills lazily so a
  /// repeated per-row aggregate (same entity pinned across rows) is
  /// computed once. Larger cap than the range memo — a prefetched batch
  /// holds one entry per matched entity.
  using AggKey =
      std::tuple<bool, uint64_t, std::string, Timestamp, Timestamp, int>;
  mutable std::map<AggKey, Result<double>> agg_cache_;
  mutable MemoStats memo_stats_;
};

/// One batchable aggregate call found in an expression:
/// ts_<agg>(var.key, t1, t2) with literal interval bounds — the shape
/// whose value per entity is row-invariant, so the executor can compute
/// it for every matched entity up front via PrefetchAggregates.
struct AggregateCallSite {
  std::string var;
  std::string key;
  Interval interval;
  ts::AggKind kind;
};

/// Collects every batchable aggregate call in `expr` (recursively).
void CollectAggregateCallSites(const Expr& expr,
                               std::vector<AggregateCallSite>* out);

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_FUNCTIONS_H_
