#include "query/executor.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <set>

#include "common/governor.h"
#include "obs/clock.h"
#include "obs/slow_query.h"
#include "query/functions.h"
#include "query/parser.h"
#include "query/profile.h"

namespace hygraph::query {

Result<Value> QueryResult::At(size_t row, const std::string& column) const {
  if (row >= rows.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == column) return rows[row][c];
  }
  return Status::NotFound("no column named '" + column + "'");
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += "\t";
    out += columns[c];
  }
  out += "\n";
  const size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += "\t";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

Result<QueryResult> Execute(const QueryBackend& backend,
                            const std::string& query_text,
                            const PlannerOptions& options) {
  auto ast = Parse(query_text);
  if (!ast.ok()) return ast.status();
  auto plan = CompileQuery(*ast, options);
  if (!plan.ok()) return plan.status();
  if (plan->mode != QueryMode::kNormal) return ExecutePlan(backend, *plan);

  obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();
  if (!slow.enabled()) return RunPlan(backend, *plan, nullptr);
  const obs::Clock* clock = obs::SystemClock::Instance();
  const uint64_t start = clock->NowNanos();
  auto result = RunPlan(backend, *plan, nullptr);
  slow.MaybeRecord(query_text, backend.name(), clock->NowNanos() - start);
  return result;
}

Result<QueryResult> ExecutePlan(const QueryBackend& backend,
                                const Plan& plan) {
  switch (plan.mode) {
    case QueryMode::kExplain:
      return ExplainPlan(backend, plan);
    case QueryMode::kProfile: {
      auto profiled = ProfilePlan(backend, plan);
      if (!profiled.ok()) return profiled.status();
      return profiled->ToResult();
    }
    case QueryMode::kNormal:
      break;
  }
  return RunPlan(backend, plan, nullptr);
}

namespace {

// The PROFILE cut marker stamped on the execute span when a governance
// interruption stops the query partway through.
const char* CutMarkerName(const Status& s) {
  if (s.IsDeadlineExceeded()) return "cut:deadline_exceeded";
  if (s.IsCancelled()) return "cut:cancelled";
  if (s.IsResourceExhausted()) return "cut:resource_exhausted";
  return nullptr;
}

Result<QueryResult> RunPlanImpl(const QueryBackend& backend, const Plan& plan,
                                obs::Tracer* tracer, QueryContext* context,
                                obs::ScopedSpan& execute_span) {
  // Pin one read view for the whole statement: every operator then sees a
  // single point-in-time state no matter what writers do concurrently.
  // Backends without snapshot support return null and are read live. The
  // snapshot shares the origin's registry, so Work()/PROFILE attribution
  // is unaffected.
  std::shared_ptr<const QueryBackend> snapshot = backend.BeginSnapshot();
  const QueryBackend& read = snapshot ? *snapshot : backend;

  QueryResult result;
  for (const ReturnItem& item : plan.returns) {
    result.columns.push_back(item.alias);
  }

  // Only short-circuit on the limit during matching when no post-match
  // work can change which rows survive.
  graph::MatchOptions match_options;
  match_options.context = context;
  const bool can_limit_early = plan.order_by.empty() &&
                               plan.residual_where == nullptr &&
                               !plan.distinct;
  if (can_limit_early) match_options.limit = plan.limit;

  Result<std::vector<graph::PatternMatch>> matches = [&] {
    obs::ScopedSpan match_span(tracer, "match");
    auto m = graph::MatchPattern(read.topology(), plan.pattern,
                                 match_options);
    if (m.ok()) match_span.AddCounter("rows", m->size());
    return m;
  }();
  if (!matches.ok()) return matches.status();

  Evaluator evaluator(&read);

  // PROFILE attributes storage-layer work to the span that caused it by
  // differencing the backend's cumulative counters around each evaluation.
  const bool traced = tracer != nullptr;
  auto attach_work = [&](obs::ScopedSpan& span, const BackendWork& before) {
    if (!traced) return;
    const BackendWork d = read.Work().Delta(before);
    span.AddCounter("points_scanned", d.series_points_scanned);
    span.AddCounter("chunks_decoded", d.chunks_decoded);
    span.AddCounter("chunks_cache_hits", d.chunks_cache_hits);
    span.AddCounter("chunks_zonemap_skipped", d.chunks_zonemap_skipped);
    // SPILL: chunk payloads that had to come back from the cold tier.
    // Zero on an all-in-RAM store, so the counter only appears when the
    // query actually paid for tiering.
    if (d.cold_chunks_loaded > 0) {
      span.AddCounter("cold_chunks_loaded", d.cold_chunks_loaded);
    }
    span.AddCounter("properties_scanned", d.properties_scanned);
  };
  // Parallel-scan attribution: the worker pool's busy time cannot Begin/End
  // spans on this single-threaded tracer, so each instrumented block
  // differences the pool counters and folds the delta in as a merged
  // "scan.workers" child after the join.
  obs::MetricsRegistry* registry = read.metrics();
  struct PoolWork {
    uint64_t dispatched = 0;
    uint64_t stolen = 0;
    uint64_t busy_nanos = 0;
  };
  auto pool_work = [&]() -> PoolWork {
    if (!traced || registry == nullptr) return {};
    PoolWork w;
    w.dispatched = registry->counter("hypertable.morsels_dispatched")->value();
    w.stolen = registry->counter("hypertable.morsels_stolen")->value();
    w.busy_nanos = registry->counter("concurrency.pool_busy_nanos")->value();
    return w;
  };
  auto attach_pool_work = [&](obs::ScopedSpan& span, const PoolWork& before) {
    if (!traced || registry == nullptr) return;
    const PoolWork now = pool_work();
    span.AddCounter("morsels_dispatched", now.dispatched - before.dispatched);
    span.AddCounter("morsels_stolen", now.stolen - before.stolen);
    span.MergeChild("scan.workers", now.dispatched - before.dispatched,
                    now.busy_nanos - before.busy_nanos);
  };

  // Multi-entity aggregate prefetch: a ts_* range aggregate with literal
  // interval bounds evaluates identically for every row binding the same
  // entity, so compute it for all matched entities in one backend batch
  // call (the hypertable fans the batch out across the worker pool — one
  // morsel per series) and let per-row evaluation hit the memo.
  if (matches->size() >= 2) {
    std::vector<AggregateCallSite> sites;
    if (plan.residual_where) {
      CollectAggregateCallSites(*plan.residual_where, &sites);
    }
    for (const ReturnItem& item : plan.returns) {
      CollectAggregateCallSites(*item.expr, &sites);
    }
    for (const OrderItem& item : plan.order_by) {
      CollectAggregateCallSites(*item.expr, &sites);
    }
    if (!sites.empty()) {
      obs::ScopedSpan prefetch_span(tracer, "prefetch");
      const BackendWork before = traced ? read.Work() : BackendWork{};
      const PoolWork pool_before = pool_work();
      for (const AggregateCallSite& site : sites) {
        std::vector<Binding> entities;
        entities.reserve(matches->size());
        const auto edge_var = plan.edge_vars.find(site.var);
        for (const graph::PatternMatch& match : *matches) {
          if (edge_var != plan.edge_vars.end()) {
            entities.push_back(Binding{true, match.edges[edge_var->second]});
            continue;
          }
          const auto vertex = match.vertices.find(site.var);
          if (vertex != match.vertices.end()) {
            entities.push_back(Binding{false, vertex->second});
          }
        }
        evaluator.PrefetchAggregates(entities, site.key, site.interval,
                                     site.kind);
      }
      attach_work(prefetch_span, before);
      attach_pool_work(prefetch_span, pool_before);
      prefetch_span.AddCounter("sites", sites.size());
    }
  }

  std::vector<std::string> return_span_names;
  if (traced) {
    return_span_names.reserve(plan.returns.size());
    for (const ReturnItem& item : plan.returns) {
      return_span_names.push_back("return:" + item.alias);
    }
  } else {
    return_span_names.assign(plan.returns.size(), std::string());
  }

  // Sort keys per row (evaluated against bindings + return aliases).
  struct PendingRow {
    std::vector<Value> cells;
    std::vector<Value> sort_keys;
  };
  std::vector<PendingRow> pending;

  {
    obs::ScopedSpan scan_span(tracer, "scan");
    const PoolWork scan_pool_before = pool_work();
    for (const graph::PatternMatch& match : *matches) {
      // One governance unit per row; the deep scans the evaluator triggers
      // (hypertable decode, property sweeps) charge their own samples via
      // QueryContext::Current().
      if (context != nullptr) {
        HYGRAPH_RETURN_IF_ERROR(context->Charge());
      }
      Bindings bindings;
      for (const auto& [var, vertex] : match.vertices) {
        bindings[var] = Binding{false, vertex};
      }
      for (const auto& [var, edge_idx] : plan.edge_vars) {
        bindings[var] = Binding{true, match.edges[edge_idx]};
      }
      if (plan.residual_where) {
        obs::ScopedSpan where_span(tracer, "where");
        const BackendWork before = traced ? read.Work() : BackendWork{};
        auto keep = evaluator.EvalPredicate(*plan.residual_where, bindings);
        attach_work(where_span, before);
        if (!keep.ok()) return keep.status();
        if (!*keep) continue;
      }
      PendingRow row;
      std::map<std::string, Value> aliases;
      for (size_t i = 0; i < plan.returns.size(); ++i) {
        const ReturnItem& item = plan.returns[i];
        obs::ScopedSpan return_span(tracer, return_span_names[i]);
        const BackendWork before = traced ? read.Work() : BackendWork{};
        auto value = evaluator.Eval(*item.expr, bindings);
        attach_work(return_span, before);
        if (!value.ok()) return value.status();
        aliases[item.alias] = *value;
        row.cells.push_back(std::move(*value));
      }
      if (!plan.order_by.empty()) {
        obs::ScopedSpan order_span(tracer, "order_keys");
        const BackendWork before = traced ? read.Work() : BackendWork{};
        for (const OrderItem& item : plan.order_by) {
          auto key = evaluator.Eval(*item.expr, bindings, &aliases);
          if (!key.ok()) return key.status();
          row.sort_keys.push_back(std::move(*key));
        }
        attach_work(order_span, before);
      }
      pending.push_back(std::move(row));
      if (can_limit_early && plan.limit != 0 && pending.size() >= plan.limit) {
        break;
      }
    }
    scan_span.AddCounter("rows", pending.size());
    attach_pool_work(scan_span, scan_pool_before);
  }

  if (plan.distinct) {
    obs::ScopedSpan distinct_span(tracer, "distinct");
    // The de-dup set + staging vector roughly double the pending rows'
    // footprint; reserve the staging share against the memory budget.
    uint64_t distinct_staging = 0;
    if (context != nullptr) {
      distinct_staging = pending.size() * sizeof(PendingRow);
      HYGRAPH_RETURN_IF_ERROR(context->ReserveMemory(distinct_staging));
    }
    // Keep the first occurrence of each projected row (DISTINCT applies to
    // the RETURN columns, before ordering).
    auto row_less = [](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    };
    std::set<std::vector<Value>, decltype(row_less)> seen(row_less);
    std::vector<PendingRow> unique;
    unique.reserve(pending.size());
    for (PendingRow& row : pending) {
      if (seen.insert(row.cells).second) unique.push_back(std::move(row));
    }
    pending = std::move(unique);
    if (context != nullptr) context->ReleaseMemory(distinct_staging);
  }

  if (!plan.order_by.empty()) {
    obs::ScopedSpan sort_span(tracer, "sort");
    // Sort staging: the permutation index plus the reordered row vector.
    uint64_t sort_staging = 0;
    if (context != nullptr) {
      sort_staging = pending.size() * (sizeof(size_t) + sizeof(PendingRow));
      HYGRAPH_RETURN_IF_ERROR(context->ReserveMemory(sort_staging));
    }
    std::vector<size_t> order(pending.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < plan.order_by.size(); ++k) {
        const int c = pending[a].sort_keys[k].Compare(pending[b].sort_keys[k]);
        if (c != 0) return plan.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<PendingRow> sorted;
    sorted.reserve(pending.size());
    for (size_t i : order) sorted.push_back(std::move(pending[i]));
    pending = std::move(sorted);
    if (context != nullptr) context->ReleaseMemory(sort_staging);
  }

  {
    obs::ScopedSpan project_span(tracer, "project");
    const size_t keep = plan.limit == 0
                            ? pending.size()
                            : std::min(plan.limit, pending.size());
    result.rows.reserve(keep);
    for (size_t i = 0; i < keep; ++i) {
      result.rows.push_back(std::move(pending[i].cells));
    }
    project_span.AddCounter("rows", result.rows.size());
  }

  const Evaluator::MemoStats& memo = evaluator.memo_stats();
  execute_span.AddCounter("rows", result.rows.size());
  execute_span.AddCounter("memo_hits", memo.hits);
  execute_span.AddCounter("memo_misses", memo.misses);
  if (obs::MetricsRegistry* registry = read.metrics()) {
    registry->counter("query.executions")->Increment();
    registry->counter("query.rows")->Add(result.rows.size());
    registry->counter("query.memo_hits")->Add(memo.hits);
    registry->counter("query.memo_misses")->Add(memo.misses);
  }
  return result;
}

}  // namespace

Result<QueryResult> RunPlan(const QueryBackend& backend, const Plan& plan,
                            obs::Tracer* tracer) {
  return RunPlan(backend, plan, tracer, nullptr);
}

Result<QueryResult> RunPlan(const QueryBackend& backend, const Plan& plan,
                            obs::Tracer* tracer, QueryContext* context) {
  // Admission gate: shed the statement up front when the process is
  // already past the governor's high-water mark (no-op by default).
  HYGRAPH_RETURN_IF_ERROR(ResourceGovernor::Global()->Admit());

  // A TIMEOUT on the statement arms the caller's context, or a local one
  // when the caller did not pass any (the Execute path).
  QueryContext local_context;
  if (plan.timeout_ms != 0) {
    QueryContext* target = context != nullptr ? context : &local_context;
    if (!target->has_deadline()) {
      target->SetTimeout(plan.timeout_ms, [] {
        return obs::SystemClock::Instance()->NowNanos();
      });
    }
    if (context == nullptr) {
      local_context.AttachGovernor(ResourceGovernor::Global());
      context = &local_context;
    }
  }

  obs::ScopedSpan execute_span(tracer, "execute");
  std::optional<QueryContext::Scope> scope;
  if (context != nullptr) scope.emplace(context);
  auto result = RunPlanImpl(backend, plan, tracer, context, execute_span);
  if (!result.ok()) {
    if (const char* marker = CutMarkerName(result.status())) {
      execute_span.AddCounter(marker, 1);
    }
  }
  return result;
}

}  // namespace hygraph::query
