#include "query/executor.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "query/functions.h"
#include "query/parser.h"

namespace hygraph::query {

Result<Value> QueryResult::At(size_t row, const std::string& column) const {
  if (row >= rows.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == column) return rows[row][c];
  }
  return Status::NotFound("no column named '" + column + "'");
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out += "\t";
    out += columns[c];
  }
  out += "\n";
  const size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += "\t";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

Result<QueryResult> Execute(const QueryBackend& backend,
                            const std::string& query_text,
                            const PlannerOptions& options) {
  auto ast = Parse(query_text);
  if (!ast.ok()) return ast.status();
  auto plan = CompileQuery(*ast, options);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(backend, *plan);
}

Result<QueryResult> ExecutePlan(const QueryBackend& backend,
                                const Plan& plan) {
  QueryResult result;
  for (const ReturnItem& item : plan.returns) {
    result.columns.push_back(item.alias);
  }

  // Only short-circuit on the limit during matching when no post-match
  // work can change which rows survive.
  graph::MatchOptions match_options;
  const bool can_limit_early = plan.order_by.empty() &&
                               plan.residual_where == nullptr &&
                               !plan.distinct;
  if (can_limit_early) match_options.limit = plan.limit;

  auto matches =
      graph::MatchPattern(backend.topology(), plan.pattern, match_options);
  if (!matches.ok()) return matches.status();

  Evaluator evaluator(&backend);

  // Sort keys per row (evaluated against bindings + return aliases).
  struct PendingRow {
    std::vector<Value> cells;
    std::vector<Value> sort_keys;
  };
  std::vector<PendingRow> pending;

  for (const graph::PatternMatch& match : *matches) {
    Bindings bindings;
    for (const auto& [var, vertex] : match.vertices) {
      bindings[var] = Binding{false, vertex};
    }
    for (const auto& [var, edge_idx] : plan.edge_vars) {
      bindings[var] = Binding{true, match.edges[edge_idx]};
    }
    if (plan.residual_where) {
      auto keep = evaluator.EvalPredicate(*plan.residual_where, bindings);
      if (!keep.ok()) return keep.status();
      if (!*keep) continue;
    }
    PendingRow row;
    std::map<std::string, Value> aliases;
    for (const ReturnItem& item : plan.returns) {
      auto value = evaluator.Eval(*item.expr, bindings);
      if (!value.ok()) return value.status();
      aliases[item.alias] = *value;
      row.cells.push_back(std::move(*value));
    }
    for (const OrderItem& item : plan.order_by) {
      auto key = evaluator.Eval(*item.expr, bindings, &aliases);
      if (!key.ok()) return key.status();
      row.sort_keys.push_back(std::move(*key));
    }
    pending.push_back(std::move(row));
    if (can_limit_early && plan.limit != 0 && pending.size() >= plan.limit) {
      break;
    }
  }

  if (plan.distinct) {
    // Keep the first occurrence of each projected row (DISTINCT applies to
    // the RETURN columns, before ordering).
    auto row_less = [](const std::vector<Value>& a,
                       const std::vector<Value>& b) {
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c < 0;
      }
      return a.size() < b.size();
    };
    std::set<std::vector<Value>, decltype(row_less)> seen(row_less);
    std::vector<PendingRow> unique;
    unique.reserve(pending.size());
    for (PendingRow& row : pending) {
      if (seen.insert(row.cells).second) unique.push_back(std::move(row));
    }
    pending = std::move(unique);
  }

  if (!plan.order_by.empty()) {
    std::vector<size_t> order(pending.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < plan.order_by.size(); ++k) {
        const int c = pending[a].sort_keys[k].Compare(pending[b].sort_keys[k]);
        if (c != 0) return plan.order_by[k].descending ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<PendingRow> sorted;
    sorted.reserve(pending.size());
    for (size_t i : order) sorted.push_back(std::move(pending[i]));
    pending = std::move(sorted);
  }

  const size_t keep =
      plan.limit == 0 ? pending.size() : std::min(plan.limit, pending.size());
  result.rows.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    result.rows.push_back(std::move(pending[i].cells));
  }
  return result;
}

}  // namespace hygraph::query
