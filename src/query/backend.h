#ifndef HYGRAPH_QUERY_BACKEND_H_
#define HYGRAPH_QUERY_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "graph/property_graph.h"
#include "obs/metrics.h"
#include "ts/aggregate.h"
#include "ts/series.h"

namespace hygraph::ts {
class HypertableStore;
}  // namespace hygraph::ts

namespace hygraph::query {

/// A cheap snapshot of a backend's cumulative work counters, used by
/// PROFILE to attribute storage-layer work (points scanned, chunks decoded
/// vs. skipped, cache hits) to individual query operators by differencing
/// before/after each evaluation. All counters are monotone; Delta() never
/// underflows on a well-behaved backend.
struct BackendWork {
  uint64_t series_points_scanned = 0;  ///< samples materialized or folded
  uint64_t chunks_decoded = 0;         ///< sealed chunks Gorilla-decoded
  uint64_t chunks_cache_hits = 0;      ///< chunks answered from AggState cache
  uint64_t chunks_zonemap_skipped = 0; ///< chunks skipped via zone maps
  uint64_t cold_chunks_loaded = 0;     ///< chunk payloads pinned from the
                                       ///< cold tier (SPILL in PROFILE)
  uint64_t properties_scanned = 0;     ///< property-map entries examined

  BackendWork Delta(const BackendWork& earlier) const {
    auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
    BackendWork d;
    d.series_points_scanned = sub(series_points_scanned,
                                  earlier.series_points_scanned);
    d.chunks_decoded = sub(chunks_decoded, earlier.chunks_decoded);
    d.chunks_cache_hits = sub(chunks_cache_hits, earlier.chunks_cache_hits);
    d.chunks_zonemap_skipped =
        sub(chunks_zonemap_skipped, earlier.chunks_zonemap_skipped);
    d.cold_chunks_loaded = sub(cold_chunks_loaded, earlier.cold_chunks_loaded);
    d.properties_scanned = sub(properties_scanned, earlier.properties_scanned);
    return d;
  }
};

/// The canonical hypertable series name for (entity, key): "v12.temp" for
/// vertex 12's "temp", "e3.load" for edge 3's. This is the contract between
/// the polyglot backend (which names series this way) and the cold-tier
/// catalog (which persists series by name and must map them back to
/// entities on recovery).
std::string SeriesSlotName(bool vertex, uint64_t entity,
                           const std::string& key);
/// Inverse of SeriesSlotName. False when `name` is not of that shape (the
/// key may itself contain dots; the split is at the FIRST dot).
bool ParseSeriesSlotName(const std::string& name, bool* vertex,
                         uint64_t* entity, std::string* key);

/// The storage abstraction HGQL executes against. Both architectures of
/// Figure 1 implement it:
///
///   * AllInGraphStore (red path)  — series samples live inside the graph's
///     property maps; every series operation degenerates to a property scan.
///   * PolyglotStore   (green path) — series live in a chunked hypertable
///     keyed by (entity, property); series operations prune to chunks.
///
/// The interface is deliberately narrow: topology for structural matching,
/// plus range-scan and range-aggregate on a named series of a vertex or
/// edge. The executor never sees which architecture it runs on — that is
/// the paper's "users interact with hybrid data as if stored in a single
/// system".
class QueryBackend {
 public:
  virtual ~QueryBackend();

  /// Human-readable engine name for benchmark output ("all-in-graph",
  /// "polyglot").
  virtual std::string name() const = 0;

  // -- observability ----------------------------------------------------------

  /// The backend's metrics registry, or nullptr when it has none (the
  /// default). Non-const because read paths count work too; the registry
  /// is logically metadata, not state.
  virtual obs::MetricsRegistry* metrics() const { return nullptr; }

  /// Snapshot of cumulative work counters for PROFILE attribution. The
  /// default (all zeros) is valid for backends without instrumentation —
  /// deltas are then zero and PROFILE simply omits storage-work counters.
  virtual BackendWork Work() const { return {}; }

  /// The structural graph used for label scans, adjacency, and pattern
  /// matching. Static (non-series) properties are readable directly from
  /// the returned graph.
  virtual const graph::PropertyGraph& topology() const = 0;

  // -- ingestion --------------------------------------------------------------

  /// Mutable access to the structural graph for loading vertices, edges,
  /// labels, and static properties. Series samples must go through the
  /// Append*Sample methods so each engine stores them its own way.
  virtual graph::PropertyGraph* mutable_topology() = 0;

  /// Appends one sample to the series stored under (vertex, key).
  /// Creates the series on first use.
  virtual Status AppendVertexSample(graph::VertexId v, const std::string& key,
                                    Timestamp t, double value) = 0;
  /// Appends one sample to the series stored under (edge, key).
  virtual Status AppendEdgeSample(graph::EdgeId e, const std::string& key,
                                  Timestamp t, double value) = 0;

  /// Runs `fn` on the mutable topology under the backend's write guard,
  /// performing any copy-on-write detach first so pinned snapshots keep
  /// the pre-mutation graph. Thread-safe backends override this; the
  /// default just forwards to mutable_topology() (single-threaded bulk
  /// load). Concurrent mutators must use this, never mutable_topology().
  virtual Status MutateTopology(
      const std::function<Status(graph::PropertyGraph*)>& fn);

  // -- snapshots --------------------------------------------------------------

  /// Pins a cheap, immutable read view of the whole backend: topology and
  /// every series as of the call. The view answers all const methods with
  /// the pinned state regardless of concurrent mutation; its mutators fail
  /// with FailedPrecondition and mutable_topology() returns nullptr. The
  /// snapshot must not outlive the origin backend (it shares the origin's
  /// metrics registry, so Work()/PROFILE attribution keeps working).
  /// Returns nullptr when the backend has no snapshot support (the
  /// default) — callers then evaluate against the live backend.
  virtual std::shared_ptr<const QueryBackend> BeginSnapshot() const {
    return nullptr;
  }

  // -- introspection (durability / snapshotting) ----------------------------

  /// The series keys stored on a vertex / edge, sorted. Backends must
  /// implement these so a snapshotter can enumerate state it would
  /// otherwise not know exists; the defaults return nothing.
  virtual std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const;
  virtual std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const;

  /// True when series samples physically live inside the topology's
  /// property maps (the all-in-graph layout): persisting the topology then
  /// already persists every sample, and a snapshotter must not duplicate
  /// them as separate series records.
  virtual bool SeriesEmbeddedInTopology() const { return false; }

  /// The chunked hypertable holding this backend's series, or nullptr when
  /// series are not chunk-organized (the default; true for all-in-graph).
  /// The durability layer uses it for storage tiering — spilling sealed
  /// chunks cold at checkpoint and adopting catalogued chunks on recovery.
  virtual ts::HypertableStore* series_hypertable() { return nullptr; }

  /// Resolves (or creates empty) the series stored under the entity slot,
  /// returning its hypertable id. Recovery uses this to re-bind catalogued
  /// cold chunks to their (entity, key) before WAL replay. Unimplemented
  /// by default — only meaningful for backends with a series_hypertable().
  virtual Result<SeriesId> EnsureSeries(bool vertex, uint64_t entity,
                                        const std::string& key);

  // -- series access ------------------------------------------------------------

  /// Materializes the samples of (vertex, key) inside `interval`.
  virtual Result<ts::Series> VertexSeriesRange(
      graph::VertexId v, const std::string& key,
      const Interval& interval) const = 0;
  virtual Result<ts::Series> EdgeSeriesRange(
      graph::EdgeId e, const std::string& key,
      const Interval& interval) const = 0;

  /// Range aggregate over (vertex, key). The default implementation
  /// materializes the range and folds it; engines with native aggregation
  /// (the hypertable) override this.
  virtual Result<double> VertexSeriesAggregate(graph::VertexId v,
                                               const std::string& key,
                                               const Interval& interval,
                                               ts::AggKind kind) const;
  virtual Result<double> EdgeSeriesAggregate(graph::EdgeId e,
                                             const std::string& key,
                                             const Interval& interval,
                                             ts::AggKind kind) const;

  /// Batch range aggregate: one result per entity, all over the same
  /// (key, interval, kind). Multi-entity HGQL aggregate queries funnel
  /// through here so engines can fan the batch out across a worker pool
  /// (the hypertable runs one morsel per series). Per-entity failures are
  /// reported in that entity's slot; the call itself only fails on
  /// batch-wide conditions (cancellation, deadline, budget). The default
  /// loops over the single-entity virtuals.
  virtual std::vector<Result<double>> VertexSeriesAggregateBatch(
      const std::vector<graph::VertexId>& vertices, const std::string& key,
      const Interval& interval, ts::AggKind kind) const;
  virtual std::vector<Result<double>> EdgeSeriesAggregateBatch(
      const std::vector<graph::EdgeId>& edges, const std::string& key,
      const Interval& interval, ts::AggKind kind) const;

  /// Tumbling-window aggregate series over (vertex, key): one sample per
  /// non-empty window of `width` ms. Default materializes then windows;
  /// the hypertable overrides with its native single-pass time_bucket.
  virtual Result<ts::Series> VertexSeriesWindowAggregate(
      graph::VertexId v, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const;
  virtual Result<ts::Series> EdgeSeriesWindowAggregate(
      graph::EdgeId e, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const;

  /// Number of samples of (vertex, key) inside `interval` whose value lies
  /// in [min_value, max_value] — the pushed-down series-predicate primitive
  /// behind HGQL's ts_count_between (the Q8 query shape). The default
  /// materializes the range and counts; the hypertable overrides with
  /// zone-map-assisted counting that can skip or count whole compressed
  /// chunks without decoding them.
  virtual Result<size_t> VertexSeriesCountInRange(graph::VertexId v,
                                                  const std::string& key,
                                                  const Interval& interval,
                                                  double min_value,
                                                  double max_value) const;
  virtual Result<size_t> EdgeSeriesCountInRange(graph::EdgeId e,
                                                const std::string& key,
                                                const Interval& interval,
                                                double min_value,
                                                double max_value) const;
};

}  // namespace hygraph::query

#endif  // HYGRAPH_QUERY_BACKEND_H_
