#ifndef HYGRAPH_ANALYTICS_RAG_H_
#define HYGRAPH_ANALYTICS_RAG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "analytics/embedding.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// HyGraph-RAG (Section 6, "Graph Retrieval-Augmented Generation"): the
/// paper's three-step plan is (1) a query API with vector similarity
/// search, (2) nodes augmented with embeddings that capture both
/// evolutionary graph and time-series features, and (3) retrieval that
/// returns relevant nodes either directly as knowledge or as entry points
/// for subsequent traversal. This module implements all three over the
/// hybrid embeddings of embedding.h.

/// A brute-force-exact vector index over vertex embeddings with optional
/// cosine or Euclidean ranking. Exact search keeps retrieval deterministic;
/// the index still centralizes normalization and top-k plumbing.
class VectorIndex {
 public:
  enum class Metric : uint8_t { kCosine, kEuclidean };

  explicit VectorIndex(Metric metric = Metric::kCosine) : metric_(metric) {}

  /// Adds (or replaces) a vertex's embedding. All embeddings must share
  /// one dimensionality; the first insert fixes it.
  Status Add(graph::VertexId v, Embedding embedding);

  /// Builds the index from a whole embedding map.
  Status AddAll(const EmbeddingMap& embeddings);

  size_t size() const { return entries_.size(); }
  size_t dimension() const { return dimension_; }

  struct Hit {
    graph::VertexId vertex = graph::kInvalidVertexId;
    double score = 0.0;  ///< higher = more similar (cosine) / closer (-dist)
  };

  /// Top-k most similar entries to `query`, best first. Deterministic
  /// tie-break by vertex id.
  Result<std::vector<Hit>> Search(const Embedding& query, size_t k) const;

 private:
  Metric metric_;
  size_t dimension_ = 0;
  std::vector<std::pair<graph::VertexId, Embedding>> entries_;
};

/// One retrieved context unit: an anchor vertex plus its graph
/// neighborhood and a textual rendering an LLM (or a test) can consume.
struct RetrievedContext {
  graph::VertexId anchor = graph::kInvalidVertexId;
  double score = 0.0;
  std::vector<graph::VertexId> neighborhood;  ///< anchor + <=hops BFS ring
  std::string text;                           ///< rendered facts
};

struct RagOptions {
  size_t top_k = 3;          ///< anchors retrieved per query
  size_t hops = 1;           ///< neighborhood radius around each anchor
  double structure_weight = 0.5;
  std::string series_property = "history";
  VectorIndex::Metric metric = VectorIndex::Metric::kCosine;
};

/// End-to-end retriever: builds hybrid embeddings for the instance once,
/// indexes them, and answers queries.
class HyGraphRetriever {
 public:
  /// Builds the retriever; fails when no vertex yields a hybrid embedding.
  static Result<HyGraphRetriever> Build(const core::HyGraph* hg,
                                        const RagOptions& options = {});

  /// Retrieves context for a query embedding (dimension must match the
  /// hybrid embedding dimension).
  Result<std::vector<RetrievedContext>> Retrieve(const Embedding& query) const;

  /// Retrieves context "by example": uses an existing vertex's embedding
  /// as the query — the paper's "starting point for subsequent queries".
  Result<std::vector<RetrievedContext>> RetrieveSimilarTo(
      graph::VertexId v) const;

  const VectorIndex& index() const { return index_; }
  const EmbeddingMap& embeddings() const { return embeddings_; }

 private:
  HyGraphRetriever(const core::HyGraph* hg, RagOptions options)
      : hg_(hg), options_(std::move(options)) {}

  Result<RetrievedContext> AssembleContext(graph::VertexId anchor,
                                           double score) const;

  const core::HyGraph* hg_ = nullptr;
  RagOptions options_;
  EmbeddingMap embeddings_;
  VectorIndex index_;
};

/// Renders a vertex (labels, static properties, series summary) as one
/// line of context text; exposed for tests.
std::string DescribeVertex(const core::HyGraph& hg, graph::VertexId v);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_RAG_H_
