#ifndef HYGRAPH_ANALYTICS_SEG_SNAPSHOT_H_
#define HYGRAPH_ANALYTICS_SEG_SNAPSHOT_H_

#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "temporal/snapshot.h"
#include "ts/segmentation.h"
#include "ts/series.h"

namespace hygraph::analytics {

/// Segmentation-driven snapshots — roadmap operator (Q4): "creates graph
/// snapshots at significant time intervals identified through time series
/// segmentation, allowing a detailed analysis of graph evolution".

struct SegSnapshotOptions {
  /// Piecewise-linear error budget for the driver segmentation.
  double max_error = 1.0;
  /// Upper bound on segments (and thus snapshots + 1).
  size_t max_segments = 16;
};

/// One significant regime of the driver series with the graph state at its
/// midpoint.
struct RegimeSnapshot {
  ts::Segment segment;          ///< the driver regime
  temporal::Snapshot snapshot;  ///< graph state at the regime midpoint
};

/// Segments `driver` (any series — typically a global activity metric from
/// metricEvolution) and materializes one snapshot of the HyGraph's TPG per
/// regime, taken at the regime's temporal midpoint.
Result<std::vector<RegimeSnapshot>> SegmentationSnapshots(
    const core::HyGraph& hg, const ts::Series& driver,
    const SegSnapshotOptions& options = {});

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_SEG_SNAPSHOT_H_
