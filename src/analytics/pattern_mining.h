#ifndef HYGRAPH_ANALYTICS_PATTERN_MINING_H_
#define HYGRAPH_ANALYTICS_PATTERN_MINING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// Hybrid pattern mining — Table 2 row PM: "identifying recurring
/// subgraphs ... and integrating time-series data to analyze trends in
/// sub-structures featuring common vertex types". Mines frequent typed
/// one- and two-hop patterns (label triples src-[edge]->dst and chains),
/// then annotates each frequent pattern with the average trend slope of the
/// participating vertices' series.

struct MiningOptions {
  /// Minimum occurrence count for a pattern to be reported.
  size_t min_support = 2;
  /// Mine two-hop chain patterns a-[x]->b-[y]->c in addition to edges.
  bool include_chains = true;
  /// Series source for trend annotation on PG vertices.
  std::string series_property = "history";
};

/// A frequent typed pattern.
struct FrequentPattern {
  /// Human-readable shape, e.g. "User-[TX]->Merchant" or
  /// "User-[USES]->Card-[TX]->Merchant".
  std::string shape;
  size_t support = 0;
  /// Mean least-squares trend slope (value units per day) of the series of
  /// vertices occurring in the pattern's embeddings; 0 when none had one.
  double mean_trend = 0.0;
  /// How many embedding vertices contributed a series to mean_trend.
  size_t trend_samples = 0;
};

/// Mines frequent patterns, most frequent first.
Result<std::vector<FrequentPattern>> MineFrequentPatterns(
    const core::HyGraph& hg, const MiningOptions& options = {});

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_PATTERN_MINING_H_
