#ifndef HYGRAPH_ANALYTICS_CLUSTER_H_
#define HYGRAPH_ANALYTICS_CLUSTER_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "analytics/embedding.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// Hybrid clustering — Table 2 row C2: "methods that utilize features from
/// time series for clustering based on the graph structure". Vertices are
/// clustered in the hybrid embedding space (structure x temporal), so
/// entities group together only when they are both topologically and
/// behaviourally similar — the paper's credit-card clusters.

struct ClusterOptions {
  size_t k = 4;                ///< number of clusters
  size_t max_iterations = 50;  ///< k-medoids refinement rounds
  uint64_t seed = 7;           ///< medoid initialization seed
};

struct ClusteringResult {
  /// vertex → cluster index in [0, k).
  std::unordered_map<graph::VertexId, size_t> assignment;
  /// Medoid vertex of each cluster.
  std::vector<graph::VertexId> medoids;
  /// Mean silhouette over all points in [-1, 1]; higher = better separated.
  double silhouette = 0.0;
};

/// k-medoids (PAM-style greedy swaps) over precomputed embeddings.
Result<ClusteringResult> KMedoids(const EmbeddingMap& embeddings,
                                  const ClusterOptions& options = {});

/// Convenience: hybrid embeddings + k-medoids in one call.
Result<ClusteringResult> HybridCluster(const core::HyGraph& hg,
                                       const ClusterOptions& options = {},
                                       double structure_weight = 0.5,
                                       const std::string& series_property =
                                           "history");

/// Mean silhouette coefficient of an assignment under Euclidean embedding
/// distance (exposed for tests and the ablation bench).
double Silhouette(const EmbeddingMap& embeddings,
                  const std::unordered_map<graph::VertexId, size_t>& assignment);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_CLUSTER_H_
