#ifndef HYGRAPH_ANALYTICS_FRAUD_H_
#define HYGRAPH_ANALYTICS_FRAUD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "analytics/classify.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// The running example (Figures 2 and 4): credit-card fraud detection over
/// a HyGraph with the paper's modelling conventions:
///
///   (User:PG) -[USES:PG]-> (CreditCard:TS, series "balance")
///   (CreditCard) -[TX:TS, series "amount"]-> (Merchant:PG {x, y})
///
/// Ground truth lives in the User property "gt_fraud" (bool); detectors
/// never read it — only the evaluator does.

/// Tuning for the graph-only detector (Listing 1): a user is suspicious
/// when one of their cards transacts more than `amount_threshold` with at
/// least `min_merchants` distinct merchants, all within `window` of each
/// other in time and within `radius` of each other in space.
struct GraphDetectorOptions {
  double amount_threshold = 1000.0;
  size_t min_merchants = 3;
  Duration window = kHour;
  double radius = 1000.0;
};

/// Tuning for the time-series-only detector (Listing 2): a user is
/// suspicious when a card's balance deviates by `threshold` local standard
/// deviations from its trailing `window_samples`-sample window.
struct TsDetectorOptions {
  size_t window_samples = 24;
  double threshold = 4.0;
};

/// Tuning for the hybrid pipeline (Figure 4).
struct HybridDetectorOptions {
  GraphDetectorOptions graph;
  TsDetectorOptions ts;
  /// Cards whose balance correlation is at least this are "similar"
  /// (the running example's credit-card similarity TS edges).
  double card_similarity = 0.9;
  /// A user flagged by only one detector is still reported when a similar
  /// card's owner was flagged by the other — the cluster-evidence step.
  bool use_similarity_evidence = true;
};

/// A detector verdict: flagged users, in increasing vertex-id order.
struct FraudVerdict {
  std::vector<graph::VertexId> flagged_users;
};

/// Graph-only path of Figure 2 (flags ring behaviour; also flags benign
/// burst-shoppers — precision loss).
Result<FraudVerdict> DetectFraudGraphOnly(
    const core::HyGraph& hg, const GraphDetectorOptions& options = {});

/// Time-series-only path of Figure 2 (flags balance anomalies; also flags
/// benign heavy spenders like the paper's "User 3" — precision loss — and
/// misses ring-only fraud).
Result<FraudVerdict> DetectFraudTsOnly(const core::HyGraph& hg,
                                       const TsDetectorOptions& options = {});

/// The full Figure-4 hybrid pipeline: both detectors, card-similarity
/// enrichment, conjunctive scoring with similarity evidence. Also annotates
/// the instance when `annotate` is non-null: flagged users get property
/// "suspicious" = true and are collected into a "Suspicious" subgraph.
Result<FraudVerdict> DetectFraudHybrid(
    const core::HyGraph& hg, const HybridDetectorOptions& options = {},
    core::HyGraph* annotate = nullptr);

/// Compares a verdict against the "gt_fraud" user property.
Result<ClassificationMetrics> EvaluateVerdict(const core::HyGraph& hg,
                                              const FraudVerdict& verdict);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_FRAUD_H_
