#include "analytics/seg_snapshot.h"

namespace hygraph::analytics {

Result<std::vector<RegimeSnapshot>> SegmentationSnapshots(
    const core::HyGraph& hg, const ts::Series& driver,
    const SegSnapshotOptions& options) {
  if (driver.empty()) {
    return Status::InvalidArgument("driver series is empty");
  }
  auto segments =
      ts::SegmentTopDown(driver, options.max_error, options.max_segments);
  if (!segments.ok()) return segments.status();
  std::vector<RegimeSnapshot> out;
  out.reserve(segments->size());
  for (const ts::Segment& segment : *segments) {
    const Timestamp mid =
        segment.start_time + (segment.end_time - segment.start_time) / 2;
    RegimeSnapshot regime;
    regime.segment = segment;
    regime.snapshot = temporal::TakeSnapshot(hg.tpg(), mid);
    out.push_back(std::move(regime));
  }
  return out;
}

}  // namespace hygraph::analytics
