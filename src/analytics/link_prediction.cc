#include "analytics/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "graph/traversal.h"
#include "ts/correlate.h"

namespace hygraph::analytics {

namespace {

std::vector<graph::VertexId> UndirectedNeighbors(
    const graph::PropertyGraph& graph, graph::VertexId v) {
  std::vector<graph::VertexId> nbs = graph.Neighbors(v);
  std::sort(nbs.begin(), nbs.end());
  nbs.erase(std::unique(nbs.begin(), nbs.end()), nbs.end());
  nbs.erase(std::remove(nbs.begin(), nbs.end(), v), nbs.end());
  return nbs;
}

Result<ts::Series> VertexSignal(const core::HyGraph& hg, graph::VertexId v,
                                const std::string& series_property) {
  if (hg.IsTsVertex(v)) {
    return (*hg.VertexSeries(v))->VariableByIndex(0);
  }
  auto prop = hg.GetVertexSeriesProperty(v, series_property);
  if (!prop.ok()) return prop.status();
  return (*prop)->VariableByIndex(0);
}

}  // namespace

double ScorePair(const graph::PropertyGraph& graph, graph::VertexId u,
                 graph::VertexId v, StructuralScore score) {
  const auto nu = UndirectedNeighbors(graph, u);
  const auto nv = UndirectedNeighbors(graph, v);
  std::vector<graph::VertexId> common;
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(common));
  switch (score) {
    case StructuralScore::kCommonNeighbors:
      return static_cast<double>(common.size());
    case StructuralScore::kJaccard: {
      std::vector<graph::VertexId> all;
      std::set_union(nu.begin(), nu.end(), nv.begin(), nv.end(),
                     std::back_inserter(all));
      return all.empty() ? 0.0
                         : static_cast<double>(common.size()) /
                               static_cast<double>(all.size());
    }
    case StructuralScore::kAdamicAdar: {
      double acc = 0.0;
      for (graph::VertexId w : common) {
        const size_t degree = UndirectedNeighbors(graph, w).size();
        if (degree > 1) acc += 1.0 / std::log(static_cast<double>(degree));
      }
      return acc;
    }
    case StructuralScore::kPreferentialAttachment:
      return static_cast<double>(nu.size()) * static_cast<double>(nv.size());
  }
  return 0.0;
}

Result<std::vector<PredictedLink>> PredictLinks(
    const core::HyGraph& hg, const LinkPredictionOptions& options) {
  if (options.structure_weight < 0.0 || options.structure_weight > 1.0) {
    return Status::InvalidArgument("structure_weight must be in [0, 1]");
  }
  const graph::PropertyGraph& g = hg.structure();

  // Candidate pairs: non-adjacent vertices within candidate_hops.
  std::set<std::pair<graph::VertexId, graph::VertexId>> candidates;
  graph::TraversalOptions bfs_options;
  bfs_options.direction = graph::TraversalDirection::kBoth;
  bfs_options.max_depth = options.candidate_hops;
  for (graph::VertexId u : g.VertexIds()) {
    const auto direct = UndirectedNeighbors(g, u);
    const std::unordered_set<graph::VertexId> adjacent(direct.begin(),
                                                       direct.end());
    auto visits = graph::Bfs(g, u, bfs_options);
    if (!visits.ok()) return visits.status();
    for (const graph::BfsVisit& visit : *visits) {
      if (visit.vertex == u || visit.depth < 2) continue;
      if (adjacent.count(visit.vertex)) continue;
      const auto pair = std::minmax(u, visit.vertex);
      candidates.insert({pair.first, pair.second});
    }
  }
  if (candidates.empty()) return std::vector<PredictedLink>{};

  // Structural scores, then min-max normalization over candidates.
  std::vector<PredictedLink> scored;
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const auto& [u, v] : candidates) {
    PredictedLink link;
    link.u = u;
    link.v = v;
    link.structural = ScorePair(g, u, v, options.structural);
    if (first) {
      lo = hi = link.structural;
      first = false;
    } else {
      lo = std::min(lo, link.structural);
      hi = std::max(hi, link.structural);
    }
    scored.push_back(link);
  }
  const double range = hi - lo;
  for (PredictedLink& link : scored) {
    link.structural = range > 1e-12 ? (link.structural - lo) / range
                                    : (link.structural > 0 ? 1.0 : 0.0);
  }

  // Temporal part: correlation of the endpoints' series mapped to [0, 1];
  // pairs without comparable series get a neutral 0.5.
  std::unordered_map<graph::VertexId, ts::Series> signals;
  auto signal_of = [&](graph::VertexId v) -> const ts::Series* {
    auto it = signals.find(v);
    if (it == signals.end()) {
      auto series = VertexSignal(hg, v, options.series_property);
      it = signals.emplace(v, series.ok() ? std::move(*series) : ts::Series())
               .first;
    }
    return it->second.empty() ? nullptr : &it->second;
  };
  for (PredictedLink& link : scored) {
    const ts::Series* a = signal_of(link.u);
    const ts::Series* b = signal_of(link.v);
    double temporal = 0.5;
    if (a != nullptr && b != nullptr) {
      auto corr = ts::Correlation(*a, *b, options.min_overlap);
      if (corr.ok()) temporal = (*corr + 1.0) / 2.0;
    }
    link.temporal = temporal;
    link.score = options.structure_weight * link.structural +
                 (1.0 - options.structure_weight) * link.temporal;
  }
  std::sort(scored.begin(), scored.end(),
            [](const PredictedLink& a, const PredictedLink& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  if (scored.size() > options.top_k) scored.resize(options.top_k);
  return scored;
}

Result<LinkPredictionEvaluation> EvaluateLinkPrediction(
    const core::HyGraph& hg, double holdout_fraction, uint64_t seed,
    const LinkPredictionOptions& options) {
  if (holdout_fraction <= 0.0 || holdout_fraction >= 1.0) {
    return Status::InvalidArgument("holdout_fraction must be in (0, 1)");
  }
  // Rebuild a copy of the instance without the held-out edges. Only PG
  // edges are eligible (TS edges carry series we would have to split).
  Rng rng(seed);
  std::set<std::pair<graph::VertexId, graph::VertexId>> held_out;
  core::HyGraph pruned = hg;
  std::vector<graph::EdgeId> removable;
  for (graph::EdgeId e : hg.PgEdges()) {
    if (rng.NextBernoulli(holdout_fraction)) removable.push_back(e);
  }
  for (graph::EdgeId e : removable) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    const auto pair = std::minmax(edge.src, edge.dst);
    held_out.insert({pair.first, pair.second});
    HYGRAPH_RETURN_IF_ERROR(
        pruned.mutable_tpg()->mutable_graph()->RemoveEdge(e));
  }
  if (held_out.empty()) {
    return Status::FailedPrecondition("no edges were held out; raise the "
                                      "fraction or use a denser graph");
  }

  LinkPredictionOptions hybrid = options;
  hybrid.top_k = std::max(options.top_k, held_out.size());
  auto hybrid_links = PredictLinks(pruned, hybrid);
  if (!hybrid_links.ok()) return hybrid_links.status();
  LinkPredictionOptions structural_only = hybrid;
  structural_only.structure_weight = 1.0;
  auto structural_links = PredictLinks(pruned, structural_only);
  if (!structural_links.ok()) return structural_links.status();

  LinkPredictionEvaluation eval;
  eval.held_out = held_out.size();
  for (const PredictedLink& link : *hybrid_links) {
    if (held_out.count({link.u, link.v})) ++eval.hybrid_hits;
  }
  for (const PredictedLink& link : *structural_links) {
    if (held_out.count({link.u, link.v})) ++eval.structural_hits;
  }
  return eval;
}

}  // namespace hygraph::analytics
