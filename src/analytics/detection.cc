#include "analytics/detection.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "ts/series.h"

namespace hygraph::analytics {

namespace {

Result<ts::Series> VertexSignal(const core::HyGraph& hg, graph::VertexId v,
                                const std::string& series_property) {
  if (hg.IsTsVertex(v)) {
    return (*hg.VertexSeries(v))->VariableByIndex(0);
  }
  auto prop = hg.GetVertexSeriesProperty(v, series_property);
  if (!prop.ok()) return prop.status();
  return (*prop)->VariableByIndex(0);
}

double SeriesStatistic(const ts::Series& series,
                       ContextualDetectionOptions::Statistic statistic) {
  const std::vector<double> values = series.Values();
  switch (statistic) {
    case ContextualDetectionOptions::Statistic::kMean:
      return Mean(values);
    case ContextualDetectionOptions::Statistic::kMax:
      return values.empty() ? 0.0
                            : *std::max_element(values.begin(), values.end());
    case ContextualDetectionOptions::Statistic::kStdDev:
      return StdDev(values);
  }
  return 0.0;
}

}  // namespace

Result<ContextualDetectionResult> DetectContextualAnomalies(
    const core::HyGraph& hg, const ContextualDetectionOptions& options) {
  if (options.threshold <= 0.0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  ContextualDetectionResult result;
  auto communities = graph::Louvain(hg.structure());
  if (!communities.ok()) return communities.status();
  result.communities = std::move(*communities);

  // Per-vertex statistic (vertices without a series are skipped).
  std::unordered_map<graph::VertexId, double> statistic;
  for (graph::VertexId v : hg.structure().VertexIds()) {
    auto series = VertexSignal(hg, v, options.series_property);
    if (!series.ok() || series->empty()) continue;
    statistic[v] = SeriesStatistic(*series, options.statistic);
  }
  if (statistic.empty()) {
    return Status::FailedPrecondition(
        "no vertex has a usable series for detection");
  }

  // Community value pools (plus the global pool for tiny communities).
  std::unordered_map<size_t, std::vector<double>> pools;
  std::vector<double> global_pool;
  for (const auto& [v, x] : statistic) {
    auto community = result.communities.find(v);
    if (community == result.communities.end()) continue;
    pools[community->second].push_back(x);
    global_pool.push_back(x);
  }
  const double global_mean = Mean(global_pool);
  const double global_sd = StdDev(global_pool);

  for (const auto& [v, x] : statistic) {
    auto community = result.communities.find(v);
    if (community == result.communities.end()) continue;
    const std::vector<double>& pool = pools[community->second];
    double mean;
    double sd;
    if (pool.size() >= options.min_community_size) {
      mean = Mean(pool);
      sd = StdDev(pool);
    } else {
      mean = global_mean;
      sd = global_sd;
    }
    if (sd < 1e-12) continue;
    const double z = (x - mean) / sd;
    if (std::abs(z) >= options.threshold) {
      result.anomalies.push_back(
          ContextualAnomaly{v, community->second, x, mean, z});
    }
  }
  std::sort(result.anomalies.begin(), result.anomalies.end(),
            [](const ContextualAnomaly& a, const ContextualAnomaly& b) {
              return std::abs(a.z_score) > std::abs(b.z_score);
            });
  return result;
}

}  // namespace hygraph::analytics
