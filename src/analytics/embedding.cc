#include "analytics/embedding.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "ts/features.h"

namespace hygraph::analytics {

Result<EmbeddingMap> FastRp(const graph::PropertyGraph& graph,
                            const FastRpOptions& options) {
  if (options.dimensions == 0) {
    return Status::InvalidArgument("dimensions must be >= 1");
  }
  if (options.iterations == 0) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  std::vector<double> weights = options.weights;
  if (weights.empty()) {
    for (size_t i = 1; i <= options.iterations; ++i) {
      weights.push_back(1.0 / static_cast<double>(i));
    }
  }
  if (weights.size() != options.iterations) {
    return Status::InvalidArgument("weights must match iterations");
  }

  const std::vector<graph::VertexId> ids = graph.VertexIds();
  const size_t d = options.dimensions;

  // Very sparse random projection (Achlioptas): entries in
  // {-sqrt(s), 0, +sqrt(s)} with P = {1/2s, 1-1/s, 1/2s}, s = 3. Seeded per
  // vertex so the embedding is independent of vertex iteration order.
  EmbeddingMap current;
  const double s = 3.0;
  const double scale = std::sqrt(s);
  for (graph::VertexId v : ids) {
    Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + v + 1);
    Embedding row(d, 0.0);
    for (size_t k = 0; k < d; ++k) {
      const double u = rng.NextDouble();
      if (u < 1.0 / (2.0 * s)) {
        row[k] = scale;
      } else if (u < 1.0 / s) {
        row[k] = -scale;
      }
    }
    current[v] = std::move(row);
  }

  auto l2_normalize = [](Embedding* e) {
    double norm = 0.0;
    for (double x : *e) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& x : *e) x /= norm;
    }
  };

  EmbeddingMap result;
  for (graph::VertexId v : ids) result[v] = Embedding(d, 0.0);

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    // One propagation step: average neighbor embeddings (undirected view).
    EmbeddingMap next;
    for (graph::VertexId v : ids) {
      Embedding acc(d, 0.0);
      const std::vector<graph::VertexId> nbs = graph.Neighbors(v);
      for (graph::VertexId nb : nbs) {
        const Embedding& nb_embedding = current[nb];
        for (size_t k = 0; k < d; ++k) acc[k] += nb_embedding[k];
      }
      if (!nbs.empty()) {
        for (double& x : acc) x /= static_cast<double>(nbs.size());
      }
      l2_normalize(&acc);
      next[v] = std::move(acc);
    }
    current = std::move(next);
    for (graph::VertexId v : ids) {
      for (size_t k = 0; k < d; ++k) {
        result[v][k] += weights[iter] * current[v][k];
      }
    }
  }
  for (graph::VertexId v : ids) l2_normalize(&result[v]);
  return result;
}

Result<EmbeddingMap> TemporalEmbeddings(
    const core::HyGraph& hg, const TemporalEmbeddingOptions& options) {
  // Collect raw feature vectors.
  EmbeddingMap raw;
  for (graph::VertexId v : hg.structure().VertexIds()) {
    ts::Series series;
    if (hg.IsTsVertex(v)) {
      series = (*hg.VertexSeries(v))->VariableByIndex(0);
    } else {
      auto prop = hg.GetVertexSeriesProperty(v, options.series_property);
      if (!prop.ok()) continue;  // no temporal signal on this vertex
      series = (*prop)->VariableByIndex(0);
    }
    auto features = ts::ComputeFeatures(series);
    if (!features.ok()) continue;  // too short to featurize
    raw[v] = features->ToVector();
  }
  if (raw.empty()) {
    return Status::FailedPrecondition(
        "no vertex has a usable series for temporal embedding");
  }
  // Z-normalize per dimension across the population so no single feature
  // dominates distances.
  const size_t d = ts::SeriesFeatures::kDimension;
  std::vector<double> mean(d, 0.0);
  std::vector<double> sd(d, 0.0);
  for (const auto& [_, e] : raw) {
    for (size_t k = 0; k < d; ++k) mean[k] += e[k];
  }
  for (double& m : mean) m /= static_cast<double>(raw.size());
  for (const auto& [_, e] : raw) {
    for (size_t k = 0; k < d; ++k) {
      sd[k] += (e[k] - mean[k]) * (e[k] - mean[k]);
    }
  }
  for (double& x : sd) {
    x = std::sqrt(x / static_cast<double>(raw.size()));
  }
  for (auto& [_, e] : raw) {
    for (size_t k = 0; k < d; ++k) {
      // Relative threshold: a dimension that is constant across the
      // population up to floating-point noise must not be z-amplified
      // into a full-weight random direction.
      const bool informative = sd[k] > 1e-9 * (1.0 + std::abs(mean[k]));
      e[k] = informative ? (e[k] - mean[k]) / sd[k] : 0.0;
    }
  }
  return raw;
}

Result<EmbeddingMap> HybridEmbeddings(const core::HyGraph& hg,
                                      const FastRpOptions& structural,
                                      const TemporalEmbeddingOptions& temporal,
                                      double structure_weight) {
  if (structure_weight < 0.0 || structure_weight > 1.0) {
    return Status::InvalidArgument("structure_weight must be in [0, 1]");
  }
  auto structure = FastRp(hg.structure(), structural);
  if (!structure.ok()) return structure.status();
  auto time_part = TemporalEmbeddings(hg, temporal);
  if (!time_part.ok()) return time_part.status();
  EmbeddingMap out;
  for (const auto& [v, se] : *structure) {
    auto te = time_part->find(v);
    if (te == time_part->end()) continue;
    Embedding combined;
    combined.reserve(se.size() + te->second.size());
    for (double x : se) combined.push_back(structure_weight * x);
    for (double x : te->second) {
      combined.push_back((1.0 - structure_weight) * x);
    }
    out[v] = std::move(combined);
  }
  if (out.empty()) {
    return Status::FailedPrecondition(
        "no vertex has both structural and temporal embeddings");
  }
  return out;
}

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  const size_t n = std::min(a.size(), b.size());
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-20 || nb < 1e-20) return 0.0;
  return dot / std::sqrt(na * nb);
}

double EmbeddingDistance(const Embedding& a, const Embedding& b) {
  const size_t n = std::min(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace hygraph::analytics
