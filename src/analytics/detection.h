#ifndef HYGRAPH_ANALYTICS_DETECTION_H_
#define HYGRAPH_ANALYTICS_DETECTION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "graph/community.h"

namespace hygraph::analytics {

/// Community-contextual anomaly detection — Table 2 row D: "HyGRAPH
/// exploits such a duality to enrich anomaly detection with contextual data
/// from graph communities". Instead of judging each vertex's series against
/// the global population (which flags every member of a legitimately busy
/// community), a vertex is anomalous when its behaviour deviates from the
/// distribution of *its own community*.

struct ContextualDetectionOptions {
  /// Series source for PG vertices (TS vertices use their own series).
  std::string series_property = "history";
  /// How many community standard deviations away counts as anomalous.
  double threshold = 3.0;
  /// Statistic of each vertex's series compared within the community.
  enum class Statistic { kMean, kMax, kStdDev } statistic = Statistic::kMean;
  /// Communities smaller than this fall back to the global distribution.
  size_t min_community_size = 4;
};

struct ContextualAnomaly {
  graph::VertexId vertex = graph::kInvalidVertexId;
  size_t community = 0;
  double statistic = 0.0;        ///< this vertex's value of the statistic
  double community_mean = 0.0;
  double z_score = 0.0;          ///< deviation in community stddevs
};

struct ContextualDetectionResult {
  graph::CommunityAssignment communities;
  std::vector<ContextualAnomaly> anomalies;  ///< sorted by |z| descending
};

/// Runs Louvain on the structure, computes each vertex's series statistic,
/// and flags vertices deviating from their community's distribution.
Result<ContextualDetectionResult> DetectContextualAnomalies(
    const core::HyGraph& hg, const ContextualDetectionOptions& options = {});

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_DETECTION_H_
