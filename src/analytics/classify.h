#ifndef HYGRAPH_ANALYTICS_CLASSIFY_H_
#define HYGRAPH_ANALYTICS_CLASSIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "analytics/embedding.h"

namespace hygraph::analytics {

/// Classification on hybrid features — Table 2 row C1: "employing trend
/// analysis for graph-based classification" / "labels, edge/vertex
/// features". A small exact kNN classifier over embedding vectors; the
/// interesting part is the feature space (structural, temporal, or hybrid
/// embeddings from embedding.h), which the Table-2 bench compares.

struct LabeledExample {
  Embedding features;
  int label = 0;
};

/// k-nearest-neighbor classifier (Euclidean, majority vote, ties broken by
/// the smaller label).
class KnnClassifier {
 public:
  explicit KnnClassifier(size_t k = 5) : k_(k == 0 ? 1 : k) {}

  void Train(std::vector<LabeledExample> examples) {
    examples_ = std::move(examples);
  }
  size_t training_size() const { return examples_.size(); }

  /// Predicted label; error when untrained.
  Result<int> Predict(const Embedding& features) const;

 private:
  size_t k_;
  std::vector<LabeledExample> examples_;
};

/// Binary-classification quality metrics (positive label = 1).
struct ClassificationMetrics {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double accuracy() const;
};

/// Accumulates one (actual, predicted) pair into the metrics.
void AddOutcome(ClassificationMetrics* metrics, bool actual, bool predicted);

/// Leave-one-out cross-validation of kNN over a labeled set; labels are
/// treated as binary with positive = 1.
Result<ClassificationMetrics> LeaveOneOutEvaluate(
    const std::vector<LabeledExample>& examples, size_t k);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_CLASSIFY_H_
