#include "analytics/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace hygraph::analytics {

Result<ClusteringResult> KMedoids(const EmbeddingMap& embeddings,
                                  const ClusterOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k must be >= 1");
  if (embeddings.size() < options.k) {
    return Status::InvalidArgument("fewer points than clusters");
  }
  // Deterministic point order.
  std::vector<graph::VertexId> ids;
  ids.reserve(embeddings.size());
  for (const auto& [v, _] : embeddings) ids.push_back(v);
  std::sort(ids.begin(), ids.end());
  const size_t n = ids.size();

  auto dist = [&](size_t a, size_t b) {
    return EmbeddingDistance(embeddings.at(ids[a]), embeddings.at(ids[b]));
  };

  // Initialize medoids by a k-means++-like greedy spread.
  Rng rng(options.seed);
  std::vector<size_t> medoids;
  medoids.push_back(rng.NextBounded(n));
  while (medoids.size() < options.k) {
    size_t best = 0;
    double best_d = -1.0;
    for (size_t i = 0; i < n; ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (size_t m : medoids) nearest = std::min(nearest, dist(i, m));
      if (nearest > best_d) {
        best_d = nearest;
        best = i;
      }
    }
    medoids.push_back(best);
  }

  std::vector<size_t> assignment(n, 0);
  auto assign_all = [&]() {
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < medoids.size(); ++c) {
        const double d = dist(i, medoids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      assignment[i] = best;
    }
  };
  auto total_cost = [&]() {
    double cost = 0.0;
    for (size_t i = 0; i < n; ++i) cost += dist(i, medoids[assignment[i]]);
    return cost;
  };

  assign_all();
  double cost = total_cost();
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool improved = false;
    // For each cluster, try the in-cluster point minimizing summed distance.
    for (size_t c = 0; c < medoids.size(); ++c) {
      size_t best_medoid = medoids[c];
      double best_sum = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] != c) continue;
        double sum = 0.0;
        for (size_t j = 0; j < n; ++j) {
          if (assignment[j] == c) sum += dist(i, j);
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_medoid = i;
        }
      }
      if (best_medoid != medoids[c]) {
        medoids[c] = best_medoid;
        improved = true;
      }
    }
    if (!improved) break;
    assign_all();
    const double new_cost = total_cost();
    if (new_cost >= cost) break;
    cost = new_cost;
  }

  ClusteringResult result;
  for (size_t i = 0; i < n; ++i) result.assignment[ids[i]] = assignment[i];
  for (size_t m : medoids) result.medoids.push_back(ids[m]);
  result.silhouette = Silhouette(embeddings, result.assignment);
  return result;
}

Result<ClusteringResult> HybridCluster(const core::HyGraph& hg,
                                       const ClusterOptions& options,
                                       double structure_weight,
                                       const std::string& series_property) {
  TemporalEmbeddingOptions temporal;
  temporal.series_property = series_property;
  auto embeddings =
      HybridEmbeddings(hg, FastRpOptions{}, temporal, structure_weight);
  if (!embeddings.ok()) return embeddings.status();
  return KMedoids(*embeddings, options);
}

double Silhouette(
    const EmbeddingMap& embeddings,
    const std::unordered_map<graph::VertexId, size_t>& assignment) {
  std::vector<graph::VertexId> ids;
  for (const auto& [v, _] : embeddings) {
    if (assignment.count(v)) ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  const size_t n = ids.size();
  if (n < 2) return 0.0;
  size_t cluster_count = 0;
  for (graph::VertexId v : ids) {
    cluster_count = std::max(cluster_count, assignment.at(v) + 1);
  }
  if (cluster_count < 2) return 0.0;

  double total = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t own = assignment.at(ids[i]);
    std::vector<double> sum(cluster_count, 0.0);
    std::vector<size_t> count(cluster_count, 0);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const size_t cj = assignment.at(ids[j]);
      sum[cj] += EmbeddingDistance(embeddings.at(ids[i]),
                                   embeddings.at(ids[j]));
      ++count[cj];
    }
    if (count[own] == 0) continue;  // singleton cluster: silhouette 0
    const double a = sum[own] / static_cast<double>(count[own]);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < cluster_count; ++c) {
      if (c == own || count[c] == 0) continue;
      b = std::min(b, sum[c] / static_cast<double>(count[c]));
    }
    if (!std::isfinite(b)) continue;
    const double s = (b - a) / std::max(a, b);
    total += s;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace hygraph::analytics
