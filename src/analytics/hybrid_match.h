#ifndef HYGRAPH_ANALYTICS_HYBRID_MATCH_H_
#define HYGRAPH_ANALYTICS_HYBRID_MATCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "graph/pattern.h"
#include "ts/subsequence.h"

namespace hygraph::analytics {

/// Hybrid pattern matching — the paper's roadmap operator (Q1): "matches
/// specific temporal patterns with corresponding structural patterns".
/// A match must simultaneously embed the structural pattern AND have, on a
/// designated variable's series, a subsequence close to a query shape.

/// One temporal constraint: the series of pattern variable `var` must
/// contain a subsequence whose z-normalized distance to `shape` is at most
/// `max_distance`. For TS vertices/edges the element's own series (first
/// variable) is used; for PG elements the series property `series_key`.
struct SeriesShapeConstraint {
  std::string var;
  std::string series_key;          ///< used for PG elements only
  std::vector<double> shape;       ///< the query subsequence
  double max_distance = 1.0;
};

struct HybridPatternQuery {
  graph::Pattern structure;
  std::vector<SeriesShapeConstraint> constraints;
  size_t limit = 0;  ///< 0 = unlimited
};

/// A hybrid match: the structural embedding plus, per constraint, the best
/// subsequence hit that satisfied it.
struct HybridMatch {
  graph::PatternMatch match;
  std::vector<ts::SubsequenceMatch> shape_hits;  ///< parallel to constraints
};

/// Enumerates hybrid matches over a HyGraph instance.
Result<std::vector<HybridMatch>> MatchHybridPattern(
    const core::HyGraph& hg, const HybridPatternQuery& query);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_HYBRID_MATCH_H_
