#include "analytics/fraud.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "ts/anomaly.h"
#include "ts/correlate.h"

namespace hygraph::analytics {

namespace {

// One high-amount transaction event gathered from a card's TX edges.
struct TxEvent {
  Timestamp t = 0;
  graph::VertexId merchant = graph::kInvalidVertexId;
  double amount = 0.0;
};

Result<double> NumericProperty(const core::HyGraph& hg, graph::VertexId v,
                               const std::string& key) {
  auto value = hg.GetVertexProperty(v, key);
  if (!value.ok()) return value.status();
  return value->ToDouble();
}

// Cards used by a user (out-edges labeled USES).
std::vector<graph::VertexId> CardsOf(const core::HyGraph& hg,
                                     graph::VertexId user) {
  std::vector<graph::VertexId> cards;
  for (graph::EdgeId e : hg.structure().OutEdges(user)) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    if (edge.label == "USES") cards.push_back(edge.dst);
  }
  return cards;
}

// Owner of a card (in-edge labeled USES), if any.
Result<graph::VertexId> OwnerOf(const core::HyGraph& hg,
                                graph::VertexId card) {
  for (graph::EdgeId e : hg.structure().InEdges(card)) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    if (edge.label == "USES") return edge.src;
  }
  return Status::NotFound("card " + std::to_string(card) + " has no owner");
}

// All transactions above the amount threshold on one card.
Result<std::vector<TxEvent>> HighValueTransactions(
    const core::HyGraph& hg, graph::VertexId card, double amount_threshold) {
  std::vector<TxEvent> events;
  for (graph::EdgeId e : hg.structure().OutEdges(card)) {
    const graph::Edge& edge = **hg.structure().GetEdge(e);
    if (edge.label != "TX" || !hg.IsTsEdge(e)) continue;
    const ts::MultiSeries& series = **hg.EdgeSeries(e);
    auto amount_idx = series.VariableIndex("amount");
    if (!amount_idx.ok()) return amount_idx.status();
    for (size_t row = 0; row < series.size(); ++row) {
      const double amount = series.at(row, *amount_idx);
      if (amount > amount_threshold) {
        events.push_back(TxEvent{series.times()[row], edge.dst, amount});
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TxEvent& a, const TxEvent& b) { return a.t < b.t; });
  return events;
}

// True when >= min_merchants distinct merchants appear within one time
// window of `window` ms and all pairwise merchant distances are < radius.
Result<bool> HasBurstToNearbyMerchants(const core::HyGraph& hg,
                                       const std::vector<TxEvent>& events,
                                       const GraphDetectorOptions& options) {
  if (events.size() < options.min_merchants) return false;
  // Cache merchant coordinates.
  std::unordered_map<graph::VertexId, std::pair<double, double>> loc;
  for (const TxEvent& ev : events) {
    if (loc.count(ev.merchant)) continue;
    auto x = NumericProperty(hg, ev.merchant, "x");
    if (!x.ok()) return x.status();
    auto y = NumericProperty(hg, ev.merchant, "y");
    if (!y.ok()) return y.status();
    loc[ev.merchant] = {*x, *y};
  }
  auto near = [&](graph::VertexId a, graph::VertexId b) {
    const auto [ax, ay] = loc[a];
    const auto [bx, by] = loc[b];
    const double dx = ax - bx;
    const double dy = ay - by;
    return std::sqrt(dx * dx + dy * dy) < options.radius;
  };
  // Slide a time window over the sorted events; within a window, count the
  // largest clique-ish set of mutually-near merchants greedily (merchant
  // counts are tiny, so the quadratic check is fine).
  size_t lo = 0;
  for (size_t hi = 0; hi < events.size(); ++hi) {
    while (events[hi].t - events[lo].t > options.window) ++lo;
    std::set<graph::VertexId> merchants;
    for (size_t i = lo; i <= hi; ++i) merchants.insert(events[i].merchant);
    if (merchants.size() < options.min_merchants) continue;
    for (graph::VertexId anchor : merchants) {
      size_t near_count = 0;
      for (graph::VertexId other : merchants) {
        if (near(anchor, other)) ++near_count;
      }
      if (near_count >= options.min_merchants) return true;
    }
  }
  return false;
}

FraudVerdict ToVerdict(std::set<graph::VertexId> flagged) {
  FraudVerdict verdict;
  verdict.flagged_users.assign(flagged.begin(), flagged.end());
  return verdict;
}

// First difference of a series. Balance *levels* are random walks, whose
// correlations are spurious (unit roots); balance *changes* only correlate
// when events (crashes, sprees) coincide in time — the signal the
// similarity evidence is actually after.
ts::Series Differenced(const ts::Series& series) {
  ts::Series out(series.name() + "_diff");
  for (size_t i = 1; i < series.size(); ++i) {
    HYGRAPH_IGNORE_RESULT(out.Append(
        series.at(i).t, series.at(i).value - series.at(i - 1).value));
  }
  return out;
}

}  // namespace

Result<FraudVerdict> DetectFraudGraphOnly(const core::HyGraph& hg,
                                          const GraphDetectorOptions& options) {
  std::set<graph::VertexId> flagged;
  for (graph::VertexId user : hg.structure().VerticesWithLabel("User")) {
    for (graph::VertexId card : CardsOf(hg, user)) {
      auto events =
          HighValueTransactions(hg, card, options.amount_threshold);
      if (!events.ok()) return events.status();
      auto burst = HasBurstToNearbyMerchants(hg, *events, options);
      if (!burst.ok()) return burst.status();
      if (*burst) {
        flagged.insert(user);
        break;
      }
    }
  }
  return ToVerdict(std::move(flagged));
}

Result<FraudVerdict> DetectFraudTsOnly(const core::HyGraph& hg,
                                       const TsDetectorOptions& options) {
  std::set<graph::VertexId> flagged;
  for (graph::VertexId card : hg.structure().VerticesWithLabel("CreditCard")) {
    if (!hg.IsTsVertex(card)) continue;
    auto balance = (*hg.VertexSeries(card))->Variable("balance");
    if (!balance.ok()) return balance.status();
    auto anomalies = ts::DetectSlidingWindow(*balance, options.window_samples,
                                             options.threshold);
    if (!anomalies.ok()) return anomalies.status();
    if (anomalies->empty()) continue;
    auto owner = OwnerOf(hg, card);
    if (owner.ok()) flagged.insert(*owner);
  }
  return ToVerdict(std::move(flagged));
}

Result<FraudVerdict> DetectFraudHybrid(const core::HyGraph& hg,
                                       const HybridDetectorOptions& options,
                                       core::HyGraph* annotate) {
  auto graph_verdict = DetectFraudGraphOnly(hg, options.graph);
  if (!graph_verdict.ok()) return graph_verdict.status();
  auto ts_verdict = DetectFraudTsOnly(hg, options.ts);
  if (!ts_verdict.ok()) return ts_verdict.status();
  const std::unordered_set<graph::VertexId> by_graph(
      graph_verdict->flagged_users.begin(),
      graph_verdict->flagged_users.end());
  const std::unordered_set<graph::VertexId> by_ts(
      ts_verdict->flagged_users.begin(), ts_verdict->flagged_users.end());

  // Core rule: both signals agree -> fraud. This resolves the paper's
  // "User 3" (TS-only heavy spender) and the naive graph path's burst
  // shoppers.
  std::set<graph::VertexId> flagged;
  for (graph::VertexId user : by_graph) {
    if (by_ts.count(user)) flagged.insert(user);
  }

  // Similarity evidence: a user flagged by only one detector is promoted
  // when one of their cards behaves like a card of a both-signal fraudster
  // (the running example's credit-card similarity TS edges).
  if (options.use_similarity_evidence) {
    // Balance series per card of the confirmed fraudsters.
    std::vector<ts::Series> fraud_balances;
    for (graph::VertexId user : flagged) {
      for (graph::VertexId card : CardsOf(hg, user)) {
        if (!hg.IsTsVertex(card)) continue;
        auto balance = (*hg.VertexSeries(card))->Variable("balance");
        if (balance.ok()) fraud_balances.push_back(Differenced(*balance));
      }
    }
    std::set<graph::VertexId> singles;
    for (graph::VertexId user : by_graph) {
      if (!flagged.count(user)) singles.insert(user);
    }
    for (graph::VertexId user : by_ts) {
      if (!flagged.count(user)) singles.insert(user);
    }
    for (graph::VertexId user : singles) {
      bool similar = false;
      for (graph::VertexId card : CardsOf(hg, user)) {
        if (!hg.IsTsVertex(card)) continue;
        auto balance = (*hg.VertexSeries(card))->Variable("balance");
        if (!balance.ok()) continue;
        const ts::Series changes = Differenced(*balance);
        for (const ts::Series& other : fraud_balances) {
          auto corr = ts::Correlation(changes, other);
          if (corr.ok() && *corr >= options.card_similarity) {
            similar = true;
            break;
          }
        }
        if (similar) break;
      }
      if (similar) flagged.insert(user);
    }
  }

  if (annotate != nullptr) {
    auto subgraph = annotate->CreateSubgraph({"Suspicious"}, {});
    if (!subgraph.ok()) return subgraph.status();
    for (graph::VertexId user : flagged) {
      HYGRAPH_RETURN_IF_ERROR(
          annotate->SetVertexProperty(user, "suspicious", Value(true)));
      HYGRAPH_RETURN_IF_ERROR(annotate->AddToSubgraph(
          *subgraph, core::ElementRef::OfVertex(user), Interval::All()));
    }
  }
  return ToVerdict(std::move(flagged));
}

Result<ClassificationMetrics> EvaluateVerdict(const core::HyGraph& hg,
                                              const FraudVerdict& verdict) {
  const std::unordered_set<graph::VertexId> flagged(
      verdict.flagged_users.begin(), verdict.flagged_users.end());
  ClassificationMetrics metrics;
  for (graph::VertexId user : hg.structure().VerticesWithLabel("User")) {
    auto gt = hg.GetVertexProperty(user, "gt_fraud");
    if (!gt.ok() || !gt->is_bool()) {
      return Status::FailedPrecondition(
          "user " + std::to_string(user) +
          " lacks the boolean ground-truth property 'gt_fraud'");
    }
    AddOutcome(&metrics, gt->AsBool(), flagged.count(user) > 0);
  }
  return metrics;
}

}  // namespace hygraph::analytics
