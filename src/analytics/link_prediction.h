#ifndef HYGRAPH_ANALYTICS_LINK_PREDICTION_H_
#define HYGRAPH_ANALYTICS_LINK_PREDICTION_H_

#include <vector>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// Dynamic link prediction — the paper's "HyGRAPH and AI" section cites
/// GC-LSTM [24] (graph convolution + LSTM) for dynamic network link
/// prediction. As a dependency-free substitute with the same inputs and
/// task, this module scores candidate links by combining classical
/// structural evidence (common neighbors / Adamic–Adar / preferential
/// attachment) with temporal evidence (correlation of the endpoints'
/// series), which is exactly the hybrid-feature thesis of the paper.

enum class StructuralScore : uint8_t {
  kCommonNeighbors,
  kJaccard,
  kAdamicAdar,
  kPreferentialAttachment,
};

/// Structural score of a (u, v) pair over the undirected view; exposed for
/// tests and for use as a pure-graph baseline.
double ScorePair(const graph::PropertyGraph& graph, graph::VertexId u,
                 graph::VertexId v, StructuralScore score);

struct LinkPredictionOptions {
  StructuralScore structural = StructuralScore::kAdamicAdar;
  /// Weight of the structural part in [0, 1]; the rest weighs the
  /// temporal correlation of the endpoints' series.
  double structure_weight = 0.6;
  /// Series source for PG vertices (TS vertices use their own series).
  std::string series_property = "history";
  /// Minimum aligned samples for the temporal part to count.
  size_t min_overlap = 4;
  /// How many top-scored candidate pairs to return.
  size_t top_k = 10;
  /// Only score pairs within this many hops of each other (candidate
  /// generation; 2 = friends-of-friends).
  size_t candidate_hops = 2;
};

struct PredictedLink {
  graph::VertexId u = graph::kInvalidVertexId;
  graph::VertexId v = graph::kInvalidVertexId;
  double score = 0.0;        ///< combined score in [0, 1]
  double structural = 0.0;   ///< normalized structural part
  double temporal = 0.0;     ///< correlation part mapped to [0, 1]
};

/// Scores all non-adjacent candidate pairs within `candidate_hops` and
/// returns the top_k by combined score (ties by ids). Structural scores
/// are min-max normalized over the candidate set.
Result<std::vector<PredictedLink>> PredictLinks(
    const core::HyGraph& hg, const LinkPredictionOptions& options = {});

/// Evaluation: hide `holdout_fraction` of the graph's edges (deterministic
/// by seed), predict on the remainder, and report how many held-out pairs
/// appear in the top-k predictions (hits@k) for the hybrid scorer and the
/// pure-structural baseline.
struct LinkPredictionEvaluation {
  size_t held_out = 0;
  size_t hybrid_hits = 0;
  size_t structural_hits = 0;
};
Result<LinkPredictionEvaluation> EvaluateLinkPrediction(
    const core::HyGraph& hg, double holdout_fraction, uint64_t seed,
    const LinkPredictionOptions& options = {});

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_LINK_PREDICTION_H_
