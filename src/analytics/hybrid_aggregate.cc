#include "analytics/hybrid_aggregate.h"

#include <map>

#include "ts/downsample.h"

namespace hygraph::analytics {

namespace {

// Member series lookup mirroring the hybrid-match convention.
Result<ts::Series> MemberSeries(const core::HyGraph& hg, graph::VertexId v,
                                const std::string& series_property) {
  if (hg.IsTsVertex(v)) {
    return (*hg.VertexSeries(v))->VariableByIndex(0);
  }
  auto prop = hg.GetVertexSeriesProperty(v, series_property);
  if (!prop.ok()) return prop.status();
  return (*prop)->VariableByIndex(0);
}

}  // namespace

Result<HybridAggregateResult> HybridAggregate(
    const core::HyGraph& hg, const HybridAggregateOptions& options) {
  if (options.group_key.empty()) {
    return Status::InvalidArgument("group_key must be set");
  }
  if (options.granularity <= 0) {
    return Status::InvalidArgument("granularity must be positive");
  }
  // 1. Structural grouping via the graph substrate.
  graph::GroupingSpec spec;
  spec.vertex_group_key = options.group_key;
  auto grouped = graph::GroupBy(hg.structure(), spec);
  if (!grouped.ok()) return grouped.status();

  // 2. Resample every member series to the target granularity and merge
  //    per super-vertex, bucket by bucket.
  struct BucketAgg {
    ts::AggState state;
  };
  // super-vertex (in grouped.summary ids) -> bucket start -> merge state
  std::unordered_map<graph::VertexId, std::map<Timestamp, BucketAgg>> merged;
  for (const auto& [member, super] : grouped->vertex_to_super) {
    auto series = MemberSeries(hg, member, options.series_property);
    if (!series.ok()) continue;  // members without series contribute nothing
    auto resampled = ts::WindowAggregate(*series, series->TimeSpan(),
                                         options.granularity,
                                         options.resample);
    if (!resampled.ok()) return resampled.status();
    for (const ts::Sample& s : resampled->samples()) {
      // Align buckets on the global granularity grid so different members'
      // windows coincide.
      const Timestamp bucket =
          (s.t / options.granularity) * options.granularity;
      merged[super][bucket].state.Add(ts::Sample{bucket, s.value});
    }
  }

  // 3. Emit the summary HyGraph: each super-vertex becomes a TS vertex
  //    carrying the merged series; grouped edges become PG edges.
  HybridAggregateResult result;
  std::unordered_map<graph::VertexId, graph::VertexId> super_remap;
  for (graph::VertexId super : grouped->summary.VertexIds()) {
    const graph::Vertex& sv = **grouped->summary.GetVertex(super);
    ts::MultiSeries ms("group_" + std::to_string(super),
                       {ts::AggKindName(options.merge)});
    auto buckets = merged.find(super);
    if (buckets != merged.end()) {
      for (const auto& [bucket, agg] : buckets->second) {
        auto value = agg.state.Finalize(options.merge);
        if (!value.ok()) return value.status();
        HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(bucket, {*value}));
      }
    }
    auto added = result.summary.AddTsVertex(sv.labels, std::move(ms));
    if (!added.ok()) return added.status();
    for (const auto& [key, value] : sv.properties) {
      HYGRAPH_RETURN_IF_ERROR(
          result.summary.SetVertexProperty(*added, key, value));
    }
    super_remap[super] = *added;
  }
  for (graph::EdgeId e : grouped->summary.EdgeIds()) {
    const graph::Edge& edge = **grouped->summary.GetEdge(e);
    auto added = result.summary.AddPgEdge(super_remap.at(edge.src),
                                          super_remap.at(edge.dst),
                                          edge.label, edge.properties);
    if (!added.ok()) return added.status();
  }
  for (const auto& [member, super] : grouped->vertex_to_super) {
    result.vertex_to_super[member] = super_remap.at(super);
  }
  return result;
}

}  // namespace hygraph::analytics
