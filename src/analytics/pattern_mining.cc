#include "analytics/pattern_mining.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "ts/features.h"
#include "ts/segmentation.h"

namespace hygraph::analytics {

namespace {

// First label of a vertex, or "_" when unlabeled.
std::string LabelOf(const core::HyGraph& hg, graph::VertexId v) {
  const graph::Vertex& vertex = **hg.structure().GetVertex(v);
  return vertex.labels.empty() ? "_" : vertex.labels.front();
}

// Trend slope (per day) of a vertex's series, if it has a usable one.
Result<double> TrendOf(const core::HyGraph& hg, graph::VertexId v,
                       const std::string& series_property) {
  ts::Series series;
  if (hg.IsTsVertex(v)) {
    series = (*hg.VertexSeries(v))->VariableByIndex(0);
  } else {
    auto prop = hg.GetVertexSeriesProperty(v, series_property);
    if (!prop.ok()) return prop.status();
    series = (*prop)->VariableByIndex(0);
  }
  if (series.size() < 2) {
    return Status::FailedPrecondition("series too short");
  }
  const ts::Segment fit = ts::FitSegment(series, 0, series.size());
  return fit.slope * static_cast<double>(kDay);
}

struct PatternStats {
  size_t support = 0;
  double trend_sum = 0.0;
  size_t trend_samples = 0;
};

}  // namespace

Result<std::vector<FrequentPattern>> MineFrequentPatterns(
    const core::HyGraph& hg, const MiningOptions& options) {
  if (options.min_support == 0) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  const graph::PropertyGraph& g = hg.structure();

  // Memoized per-vertex trend.
  std::unordered_map<graph::VertexId, std::pair<bool, double>> trends;
  auto trend_of = [&](graph::VertexId v) -> std::pair<bool, double> {
    auto it = trends.find(v);
    if (it != trends.end()) return it->second;
    auto t = TrendOf(hg, v, options.series_property);
    auto entry = t.ok() ? std::make_pair(true, *t) : std::make_pair(false, 0.0);
    trends.emplace(v, entry);
    return entry;
  };

  std::map<std::string, PatternStats> patterns;
  auto record = [&](const std::string& shape,
                    std::initializer_list<graph::VertexId> vertices) {
    PatternStats& stats = patterns[shape];
    ++stats.support;
    for (graph::VertexId v : vertices) {
      auto [has, slope] = trend_of(v);
      if (has) {
        stats.trend_sum += slope;
        ++stats.trend_samples;
      }
    }
  };

  // One-hop patterns.
  for (graph::EdgeId e : g.EdgeIds()) {
    const graph::Edge& edge = **g.GetEdge(e);
    const std::string shape = LabelOf(hg, edge.src) + "-[" + edge.label +
                              "]->" + LabelOf(hg, edge.dst);
    record(shape, {edge.src, edge.dst});
  }
  // Two-hop chains.
  if (options.include_chains) {
    for (graph::EdgeId e1 : g.EdgeIds()) {
      const graph::Edge& first = **g.GetEdge(e1);
      for (graph::EdgeId e2 : g.OutEdges(first.dst)) {
        const graph::Edge& second = **g.GetEdge(e2);
        if (second.dst == first.src) continue;  // skip trivial back-and-forth
        const std::string shape = LabelOf(hg, first.src) + "-[" + first.label +
                                  "]->" + LabelOf(hg, first.dst) + "-[" +
                                  second.label + "]->" +
                                  LabelOf(hg, second.dst);
        record(shape, {first.src, first.dst, second.dst});
      }
    }
  }

  std::vector<FrequentPattern> out;
  for (const auto& [shape, stats] : patterns) {
    if (stats.support < options.min_support) continue;
    FrequentPattern fp;
    fp.shape = shape;
    fp.support = stats.support;
    fp.trend_samples = stats.trend_samples;
    fp.mean_trend = stats.trend_samples > 0
                        ? stats.trend_sum /
                              static_cast<double>(stats.trend_samples)
                        : 0.0;
    out.push_back(std::move(fp));
  }
  std::sort(out.begin(), out.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              if (a.support != b.support) return a.support > b.support;
              return a.shape < b.shape;
            });
  return out;
}

}  // namespace hygraph::analytics
