#ifndef HYGRAPH_ANALYTICS_CORR_REACH_H_
#define HYGRAPH_ANALYTICS_CORR_REACH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"

namespace hygraph::analytics {

/// Correlation-constrained reachability — roadmap operator (Q3): "measures
/// the correlation between time-series data of vertices to enhance
/// reachability analysis, aiding in identifying entities with similar
/// temporal patterns". A vertex u is corr-reachable from s when there is a
/// path s = v0, v1, ..., vk = u such that every hop (vi, vi+1) is a graph
/// edge AND corr(series(vi), series(vi+1)) >= min_correlation.
struct CorrReachOptions {
  double min_correlation = 0.7;
  /// Series source for PG vertices (TS vertices use their own series).
  std::string series_property = "history";
  /// Restrict traversal to edges with this label (empty = all).
  std::string edge_label;
  size_t max_depth = ~size_t{0};
  /// Minimum aligned samples for a correlation to count.
  size_t min_overlap = 4;
};

/// One reached vertex with its discovery depth and the correlation of the
/// hop that reached it.
struct CorrReachHit {
  graph::VertexId vertex = graph::kInvalidVertexId;
  size_t depth = 0;
  double hop_correlation = 1.0;
};

/// BFS from `source` following only correlation-satisfying hops (edges are
/// traversed in both directions). The source itself is included at depth 0.
Result<std::vector<CorrReachHit>> CorrelationReachability(
    const core::HyGraph& hg, graph::VertexId source,
    const CorrReachOptions& options = {});

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_CORR_REACH_H_
