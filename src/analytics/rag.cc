#include "analytics/rag.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "common/stats.h"

namespace hygraph::analytics {

Status VectorIndex::Add(graph::VertexId v, Embedding embedding) {
  if (embedding.empty()) {
    return Status::InvalidArgument("embedding is empty");
  }
  if (dimension_ == 0) {
    dimension_ = embedding.size();
  } else if (embedding.size() != dimension_) {
    return Status::InvalidArgument(
        "embedding dimension " + std::to_string(embedding.size()) +
        " != index dimension " + std::to_string(dimension_));
  }
  for (auto& [existing, e] : entries_) {
    if (existing == v) {
      e = std::move(embedding);
      return Status::OK();
    }
  }
  entries_.emplace_back(v, std::move(embedding));
  return Status::OK();
}

Status VectorIndex::AddAll(const EmbeddingMap& embeddings) {
  // Deterministic insertion order.
  std::vector<graph::VertexId> ids;
  ids.reserve(embeddings.size());
  for (const auto& [v, _] : embeddings) ids.push_back(v);
  std::sort(ids.begin(), ids.end());
  for (graph::VertexId v : ids) {
    HYGRAPH_RETURN_IF_ERROR(Add(v, embeddings.at(v)));
  }
  return Status::OK();
}

Result<std::vector<VectorIndex::Hit>> VectorIndex::Search(
    const Embedding& query, size_t k) const {
  if (entries_.empty()) {
    return Status::FailedPrecondition("index is empty");
  }
  if (query.size() != dimension_) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  std::vector<Hit> hits;
  hits.reserve(entries_.size());
  for (const auto& [v, e] : entries_) {
    const double score = metric_ == Metric::kCosine
                             ? CosineSimilarity(query, e)
                             : -EmbeddingDistance(query, e);
    hits.push_back(Hit{v, score});
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.vertex < b.vertex;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

std::string DescribeVertex(const core::HyGraph& hg, graph::VertexId v) {
  auto vertex = hg.structure().GetVertex(v);
  if (!vertex.ok()) return "(unknown vertex)";
  std::string out = "(";
  for (size_t i = 0; i < (*vertex)->labels.size(); ++i) {
    if (i > 0) out += ":";
    out += (*vertex)->labels[i];
  }
  out += " #" + std::to_string(v) + ")";
  for (const auto& [key, value] : (*vertex)->properties) {
    if (value.is_series_ref()) {
      auto series = hg.LookupSeries(value.AsSeriesId());
      if (series.ok()) {
        out += " " + key + "=<series:" +
               std::to_string((*series)->size()) + " pts>";
      }
      continue;
    }
    out += " " + key + "=" + value.ToString();
  }
  if (hg.IsTsVertex(v)) {
    const ts::MultiSeries& series = **hg.VertexSeries(v);
    out += " series[" + std::to_string(series.size()) + " pts";
    if (!series.empty() && series.variable_count() > 0) {
      std::vector<double> values;
      values.reserve(series.size());
      for (size_t r = 0; r < series.size(); ++r) {
        values.push_back(series.at(r, 0));
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), ", mean %.2f, last %.2f",
                    Mean(values), values.back());
      out += buf;
    }
    out += "]";
  }
  return out;
}

Result<HyGraphRetriever> HyGraphRetriever::Build(const core::HyGraph* hg,
                                                 const RagOptions& options) {
  if (hg == nullptr) {
    return Status::InvalidArgument("hg must not be null");
  }
  HyGraphRetriever retriever(hg, options);
  TemporalEmbeddingOptions temporal;
  temporal.series_property = options.series_property;
  auto embeddings = HybridEmbeddings(*hg, FastRpOptions{}, temporal,
                                     options.structure_weight);
  if (!embeddings.ok()) return embeddings.status();
  retriever.embeddings_ = std::move(*embeddings);
  retriever.index_ = VectorIndex(options.metric);
  HYGRAPH_RETURN_IF_ERROR(retriever.index_.AddAll(retriever.embeddings_));
  return retriever;
}

Result<RetrievedContext> HyGraphRetriever::AssembleContext(
    graph::VertexId anchor, double score) const {
  RetrievedContext context;
  context.anchor = anchor;
  context.score = score;
  // BFS neighborhood up to options_.hops (undirected view).
  std::unordered_set<graph::VertexId> seen{anchor};
  std::deque<std::pair<graph::VertexId, size_t>> frontier{{anchor, 0}};
  while (!frontier.empty()) {
    auto [v, depth] = frontier.front();
    frontier.pop_front();
    context.neighborhood.push_back(v);
    if (depth >= options_.hops) continue;
    for (graph::VertexId nb : hg_->structure().Neighbors(v)) {
      if (seen.insert(nb).second) frontier.push_back({nb, depth + 1});
    }
  }
  std::sort(context.neighborhood.begin() + 1, context.neighborhood.end());
  context.text = "anchor: " + DescribeVertex(*hg_, anchor);
  for (size_t i = 1; i < context.neighborhood.size(); ++i) {
    context.text +=
        "\n  near: " + DescribeVertex(*hg_, context.neighborhood[i]);
  }
  return context;
}

Result<std::vector<RetrievedContext>> HyGraphRetriever::Retrieve(
    const Embedding& query) const {
  auto hits = index_.Search(query, options_.top_k);
  if (!hits.ok()) return hits.status();
  std::vector<RetrievedContext> out;
  for (const VectorIndex::Hit& hit : *hits) {
    auto context = AssembleContext(hit.vertex, hit.score);
    if (!context.ok()) return context.status();
    out.push_back(std::move(*context));
  }
  return out;
}

Result<std::vector<RetrievedContext>> HyGraphRetriever::RetrieveSimilarTo(
    graph::VertexId v) const {
  auto it = embeddings_.find(v);
  if (it == embeddings_.end()) {
    return Status::NotFound("vertex " + std::to_string(v) +
                            " has no hybrid embedding");
  }
  // Retrieve top_k + 1 and drop the query vertex itself.
  auto hits = index_.Search(it->second, options_.top_k + 1);
  if (!hits.ok()) return hits.status();
  std::vector<RetrievedContext> out;
  for (const VectorIndex::Hit& hit : *hits) {
    if (hit.vertex == v) continue;
    if (out.size() >= options_.top_k) break;
    auto context = AssembleContext(hit.vertex, hit.score);
    if (!context.ok()) return context.status();
    out.push_back(std::move(*context));
  }
  return out;
}

}  // namespace hygraph::analytics
