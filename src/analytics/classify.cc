#include "analytics/classify.h"

#include <algorithm>
#include <map>

namespace hygraph::analytics {

Result<int> KnnClassifier::Predict(const Embedding& features) const {
  if (examples_.empty()) {
    return Status::FailedPrecondition("classifier has no training data");
  }
  // Partial sort of the k nearest by distance.
  std::vector<std::pair<double, int>> by_distance;
  by_distance.reserve(examples_.size());
  for (const LabeledExample& ex : examples_) {
    by_distance.emplace_back(EmbeddingDistance(features, ex.features),
                             ex.label);
  }
  const size_t k = std::min(k_, by_distance.size());
  std::partial_sort(by_distance.begin(),
                    by_distance.begin() + static_cast<ptrdiff_t>(k),
                    by_distance.end());
  std::map<int, size_t> votes;
  for (size_t i = 0; i < k; ++i) ++votes[by_distance[i].second];
  int best_label = votes.begin()->first;
  size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  return best_label;
}

double ClassificationMetrics::precision() const {
  const size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ClassificationMetrics::recall() const {
  const size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ClassificationMetrics::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ClassificationMetrics::accuracy() const {
  const size_t total =
      true_positives + false_positives + true_negatives + false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

void AddOutcome(ClassificationMetrics* metrics, bool actual, bool predicted) {
  if (actual && predicted) {
    ++metrics->true_positives;
  } else if (!actual && predicted) {
    ++metrics->false_positives;
  } else if (actual && !predicted) {
    ++metrics->false_negatives;
  } else {
    ++metrics->true_negatives;
  }
}

Result<ClassificationMetrics> LeaveOneOutEvaluate(
    const std::vector<LabeledExample>& examples, size_t k) {
  if (examples.size() < 2) {
    return Status::InvalidArgument("need at least 2 examples");
  }
  ClassificationMetrics metrics;
  for (size_t held_out = 0; held_out < examples.size(); ++held_out) {
    std::vector<LabeledExample> train;
    train.reserve(examples.size() - 1);
    for (size_t i = 0; i < examples.size(); ++i) {
      if (i != held_out) train.push_back(examples[i]);
    }
    KnnClassifier knn(k);
    knn.Train(std::move(train));
    auto predicted = knn.Predict(examples[held_out].features);
    if (!predicted.ok()) return predicted.status();
    AddOutcome(&metrics, examples[held_out].label == 1, *predicted == 1);
  }
  return metrics;
}

}  // namespace hygraph::analytics
