#ifndef HYGRAPH_ANALYTICS_HYBRID_AGGREGATE_H_
#define HYGRAPH_ANALYTICS_HYBRID_AGGREGATE_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/hygraph.h"
#include "graph/aggregate.h"
#include "ts/aggregate.h"

namespace hygraph::analytics {

/// Hybrid aggregation — roadmap operator (Q2): "summarizes and aggregates
/// graph elements and adjusts the frequency of associated time series to a
/// user-defined granularity". Structure collapses Gradoop-style into
/// super-vertices/super-edges; member series are resampled to `granularity`
/// and merged per group into one super-series.
struct HybridAggregateOptions {
  /// Vertex property that defines the groups (e.g. "district").
  std::string group_key;
  /// Where each member vertex's series comes from: the element's own series
  /// for TS vertices, else this series-property key.
  std::string series_property = "history";
  /// Target sampling granularity for the merged series.
  Duration granularity = kHour;
  /// Within-bucket aggregate when resampling each member series.
  ts::AggKind resample = ts::AggKind::kAvg;
  /// Cross-member merge at each bucket (sum for volumes, avg for levels).
  ts::AggKind merge = ts::AggKind::kAvg;
};

/// Result: the summary HyGraph. Super-vertices are TS vertices whose series
/// is the merged, downsampled group series; super-edges are PG edges
/// carrying the collapsed edge count.
struct HybridAggregateResult {
  core::HyGraph summary;
  std::unordered_map<graph::VertexId, graph::VertexId> vertex_to_super;
};

Result<HybridAggregateResult> HybridAggregate(
    const core::HyGraph& hg, const HybridAggregateOptions& options);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_HYBRID_AGGREGATE_H_
