#include "analytics/corr_reach.h"

#include <deque>
#include <unordered_set>

#include "ts/correlate.h"

namespace hygraph::analytics {

namespace {

Result<ts::Series> VertexSignal(const core::HyGraph& hg, graph::VertexId v,
                                const std::string& series_property) {
  if (hg.IsTsVertex(v)) {
    return (*hg.VertexSeries(v))->VariableByIndex(0);
  }
  auto prop = hg.GetVertexSeriesProperty(v, series_property);
  if (!prop.ok()) return prop.status();
  return (*prop)->VariableByIndex(0);
}

}  // namespace

Result<std::vector<CorrReachHit>> CorrelationReachability(
    const core::HyGraph& hg, graph::VertexId source,
    const CorrReachOptions& options) {
  if (!hg.structure().HasVertex(source)) {
    return Status::NotFound("no vertex with id " + std::to_string(source));
  }
  if (options.min_correlation < -1.0 || options.min_correlation > 1.0) {
    return Status::InvalidArgument("min_correlation must be in [-1, 1]");
  }
  // Cache each vertex's signal; vertices without one block traversal.
  std::unordered_map<graph::VertexId, ts::Series> signals;
  auto signal_of = [&](graph::VertexId v) -> const ts::Series* {
    auto it = signals.find(v);
    if (it != signals.end()) return it->second.empty() ? nullptr : &it->second;
    auto series = VertexSignal(hg, v, options.series_property);
    auto [pos, _] =
        signals.emplace(v, series.ok() ? std::move(*series) : ts::Series());
    return pos->second.empty() ? nullptr : &pos->second;
  };

  std::vector<CorrReachHit> out;
  std::unordered_set<graph::VertexId> seen{source};
  std::deque<CorrReachHit> frontier{{source, 0, 1.0}};
  while (!frontier.empty()) {
    const CorrReachHit cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    if (cur.depth >= options.max_depth) continue;
    const ts::Series* cur_signal = signal_of(cur.vertex);
    if (cur_signal == nullptr) continue;
    auto consider = [&](graph::EdgeId eid, bool outgoing) {
      const graph::Edge& e = **hg.structure().GetEdge(eid);
      if (!options.edge_label.empty() && e.label != options.edge_label) {
        return;
      }
      const graph::VertexId nb = outgoing ? e.dst : e.src;
      if (seen.count(nb)) return;
      const ts::Series* nb_signal = signal_of(nb);
      if (nb_signal == nullptr) return;
      auto corr = ts::Correlation(*cur_signal, *nb_signal,
                                  options.min_overlap);
      if (!corr.ok() || *corr < options.min_correlation) return;
      seen.insert(nb);
      frontier.push_back({nb, cur.depth + 1, *corr});
    };
    for (graph::EdgeId eid : hg.structure().OutEdges(cur.vertex)) {
      consider(eid, true);
    }
    for (graph::EdgeId eid : hg.structure().InEdges(cur.vertex)) {
      consider(eid, false);
    }
  }
  return out;
}

}  // namespace hygraph::analytics
