#ifndef HYGRAPH_ANALYTICS_EMBEDDING_H_
#define HYGRAPH_ANALYTICS_EMBEDDING_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/hygraph.h"
#include "graph/property_graph.h"

namespace hygraph::analytics {

using Embedding = std::vector<double>;
using EmbeddingMap = std::unordered_map<graph::VertexId, Embedding>;

/// FastRP-style structural embedding [23]: very sparse random projection of
/// the adjacency structure, iterated and combined across hop depths.
struct FastRpOptions {
  size_t dimensions = 32;
  size_t iterations = 3;           ///< hop depths combined
  std::vector<double> weights;     ///< per-iteration weights; defaults 1/i
  uint64_t seed = 42;
};
Result<EmbeddingMap> FastRp(const graph::PropertyGraph& graph,
                            const FastRpOptions& options = {});

/// Temporal embedding of a HyGraph vertex: the statistical feature vector
/// of its series (TS vertices use δ; PG vertices use the named series
/// property), z-normalized per dimension across the population.
struct TemporalEmbeddingOptions {
  /// Series property key consulted for PG vertices (TS vertices always use
  /// their own series, first variable).
  std::string series_property = "history";
};
Result<EmbeddingMap> TemporalEmbeddings(
    const core::HyGraph& hg, const TemporalEmbeddingOptions& options = {});

/// Hybrid embedding (Table 2 row E): concatenation of the structural and
/// temporal embeddings, with the structural part scaled by
/// `structure_weight` and the temporal part by (1 - structure_weight).
/// Vertices missing either part are skipped.
Result<EmbeddingMap> HybridEmbeddings(const core::HyGraph& hg,
                                      const FastRpOptions& structural,
                                      const TemporalEmbeddingOptions& temporal,
                                      double structure_weight = 0.5);

/// Cosine similarity of two embeddings (0 when degenerate).
double CosineSimilarity(const Embedding& a, const Embedding& b);
/// Euclidean distance between two embeddings (must be equal length).
double EmbeddingDistance(const Embedding& a, const Embedding& b);

}  // namespace hygraph::analytics

#endif  // HYGRAPH_ANALYTICS_EMBEDDING_H_
