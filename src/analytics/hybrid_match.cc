#include "analytics/hybrid_match.h"

namespace hygraph::analytics {

namespace {

// Resolves the series a constraint refers to for the bound element.
Result<ts::Series> ConstraintSeries(const core::HyGraph& hg,
                                    const SeriesShapeConstraint& constraint,
                                    graph::VertexId v) {
  if (hg.IsTsVertex(v)) {
    return (*hg.VertexSeries(v))->VariableByIndex(0);
  }
  auto prop = hg.GetVertexSeriesProperty(v, constraint.series_key);
  if (!prop.ok()) return prop.status();
  return (*prop)->VariableByIndex(0);
}

}  // namespace

Result<std::vector<HybridMatch>> MatchHybridPattern(
    const core::HyGraph& hg, const HybridPatternQuery& query) {
  for (const SeriesShapeConstraint& c : query.constraints) {
    if (c.shape.size() < 2) {
      return Status::InvalidArgument(
          "shape constraint on '" + c.var + "' needs >= 2 points");
    }
  }
  // Structural candidates first; temporal filtering second. The matcher
  // cannot apply the limit because a structural match may fail a shape
  // constraint.
  auto candidates = graph::MatchPattern(hg.structure(), query.structure);
  if (!candidates.ok()) return candidates.status();

  std::vector<HybridMatch> out;
  for (auto& match : *candidates) {
    HybridMatch hybrid;
    bool keep = true;
    for (const SeriesShapeConstraint& constraint : query.constraints) {
      auto bound = match.vertices.find(constraint.var);
      if (bound == match.vertices.end()) {
        return Status::InvalidArgument("constraint variable '" +
                                       constraint.var +
                                       "' is not a pattern vertex variable");
      }
      auto series = ConstraintSeries(hg, constraint, bound->second);
      if (!series.ok() || series->size() < constraint.shape.size()) {
        keep = false;
        break;
      }
      auto hits = ts::MatchSubsequence(*series, constraint.shape, 1);
      if (!hits.ok() || hits->empty() ||
          hits->front().distance > constraint.max_distance) {
        keep = false;
        break;
      }
      hybrid.shape_hits.push_back(hits->front());
    }
    if (!keep) continue;
    hybrid.match = std::move(match);
    out.push_back(std::move(hybrid));
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

}  // namespace hygraph::analytics
