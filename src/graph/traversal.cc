#include "graph/traversal.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace hygraph::graph {

namespace {

// Invokes fn(edge_id, neighbor) for each edge incident to v that the
// options allow.
template <typename Fn>
void ForEachNeighbor(const PropertyGraph& graph, VertexId v,
                     const TraversalOptions& options, Fn fn) {
  auto visit_list = [&](const std::vector<EdgeId>& edges, bool outgoing) {
    for (EdgeId eid : edges) {
      const Edge& e = **graph.GetEdge(eid);
      if (!options.edge_label.empty() && e.label != options.edge_label) {
        continue;
      }
      fn(eid, outgoing ? e.dst : e.src);
    }
  };
  if (options.direction == TraversalDirection::kOut ||
      options.direction == TraversalDirection::kBoth) {
    visit_list(graph.OutEdges(v), true);
  }
  if (options.direction == TraversalDirection::kIn ||
      options.direction == TraversalDirection::kBoth) {
    visit_list(graph.InEdges(v), false);
  }
}

Status RequireVertex(const PropertyGraph& graph, VertexId v) {
  if (!graph.HasVertex(v)) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<BfsVisit>> Bfs(const PropertyGraph& graph, VertexId source,
                                  const TraversalOptions& options) {
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, source));
  std::vector<BfsVisit> out;
  std::unordered_set<VertexId> seen{source};
  std::deque<BfsVisit> frontier{{source, 0}};
  while (!frontier.empty()) {
    if (options.context != nullptr) {
      HYGRAPH_RETURN_IF_ERROR(options.context->Charge());
    }
    const BfsVisit cur = frontier.front();
    frontier.pop_front();
    out.push_back(cur);
    if (cur.depth >= options.max_depth) continue;
    ForEachNeighbor(graph, cur.vertex, options,
                    [&](EdgeId, VertexId nb) {
                      if (seen.insert(nb).second) {
                        frontier.push_back({nb, cur.depth + 1});
                      }
                    });
  }
  return out;
}

Result<std::vector<VertexId>> DfsPreorder(const PropertyGraph& graph,
                                          VertexId source,
                                          const TraversalOptions& options) {
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, source));
  std::vector<VertexId> out;
  std::unordered_set<VertexId> seen;
  // Explicit stack of (vertex, depth); neighbors pushed in reverse so the
  // first neighbor is explored first.
  std::vector<std::pair<VertexId, size_t>> stack{{source, 0}};
  while (!stack.empty()) {
    if (options.context != nullptr) {
      HYGRAPH_RETURN_IF_ERROR(options.context->Charge());
    }
    auto [v, depth] = stack.back();
    stack.pop_back();
    if (!seen.insert(v).second) continue;
    out.push_back(v);
    if (depth >= options.max_depth) continue;
    std::vector<VertexId> nbs;
    ForEachNeighbor(graph, v, options,
                    [&](EdgeId, VertexId nb) { nbs.push_back(nb); });
    for (auto it = nbs.rbegin(); it != nbs.rend(); ++it) {
      if (!seen.count(*it)) stack.push_back({*it, depth + 1});
    }
  }
  return out;
}

Result<bool> IsReachable(const PropertyGraph& graph, VertexId source,
                         VertexId target, const TraversalOptions& options) {
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, source));
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, target));
  if (source == target) return true;
  auto visits = Bfs(graph, source, options);
  if (!visits.ok()) return visits.status();
  for (const BfsVisit& visit : *visits) {
    if (visit.vertex == target) return true;
  }
  return false;
}

Result<std::vector<VertexId>> KHopNeighbors(const PropertyGraph& graph,
                                            VertexId source, size_t k,
                                            const TraversalOptions& options) {
  TraversalOptions bounded = options;
  bounded.max_depth = k;
  auto visits = Bfs(graph, source, bounded);
  if (!visits.ok()) return visits.status();
  std::vector<VertexId> out;
  for (const BfsVisit& visit : *visits) {
    if (visit.depth == k) out.push_back(visit.vertex);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<ShortestPath> FindShortestPath(const PropertyGraph& graph,
                                      VertexId source, VertexId target,
                                      const std::string& weight_property,
                                      const TraversalOptions& options) {
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, source));
  HYGRAPH_RETURN_IF_ERROR(RequireVertex(graph, target));

  auto edge_weight = [&](EdgeId eid) -> Result<double> {
    if (weight_property.empty()) return 1.0;
    auto value = graph.GetEdgeProperty(eid, weight_property);
    if (!value.ok()) return 1.0;  // missing weight defaults to 1
    auto w = value->ToDouble();
    if (!w.ok()) return w.status();
    if (*w < 0) {
      return Status::InvalidArgument("negative edge weight on edge " +
                                     std::to_string(eid));
    }
    return *w;
  };

  struct QueueEntry {
    double dist;
    VertexId vertex;
    bool operator>(const QueueEntry& other) const {
      return dist > other.dist;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  std::unordered_map<VertexId, double> dist;
  std::unordered_map<VertexId, std::pair<VertexId, EdgeId>> parent;
  dist[source] = 0.0;
  queue.push({0.0, source});
  Status failure = Status::OK();
  while (!queue.empty()) {
    if (options.context != nullptr) {
      HYGRAPH_RETURN_IF_ERROR(options.context->Charge());
    }
    const QueueEntry top = queue.top();
    queue.pop();
    if (top.dist > dist[top.vertex]) continue;  // stale entry
    if (top.vertex == target) break;
    ForEachNeighbor(graph, top.vertex, options, [&](EdgeId eid, VertexId nb) {
      if (!failure.ok()) return;
      auto w = edge_weight(eid);
      if (!w.ok()) {
        failure = w.status();
        return;
      }
      const double nd = top.dist + *w;
      auto it = dist.find(nb);
      if (it == dist.end() || nd < it->second) {
        dist[nb] = nd;
        parent[nb] = {top.vertex, eid};
        queue.push({nd, nb});
      }
    });
    if (!failure.ok()) return failure;
  }
  if (!dist.count(target)) {
    return Status::NotFound("no path from " + std::to_string(source) +
                            " to " + std::to_string(target));
  }
  ShortestPath path;
  path.total_weight = dist[target];
  VertexId cur = target;
  while (cur != source) {
    const auto [prev, via] = parent.at(cur);
    path.vertices.push_back(cur);
    path.edges.push_back(via);
    cur = prev;
  }
  path.vertices.push_back(source);
  std::reverse(path.vertices.begin(), path.vertices.end());
  std::reverse(path.edges.begin(), path.edges.end());
  return path;
}

}  // namespace hygraph::graph
