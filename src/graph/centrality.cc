#include "graph/centrality.h"

#include <algorithm>
#include <deque>
#include <vector>

namespace hygraph::graph {

namespace {

// De-duplicated undirected adjacency without self-loops.
std::unordered_map<VertexId, std::vector<VertexId>> UndirectedAdjacency(
    const PropertyGraph& graph) {
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  for (VertexId v : graph.VertexIds()) {
    std::vector<VertexId> nbs = graph.Neighbors(v);
    std::sort(nbs.begin(), nbs.end());
    nbs.erase(std::unique(nbs.begin(), nbs.end()), nbs.end());
    nbs.erase(std::remove(nbs.begin(), nbs.end(), v), nbs.end());
    adj[v] = std::move(nbs);
  }
  return adj;
}

}  // namespace

std::unordered_map<VertexId, double> BetweennessCentrality(
    const PropertyGraph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  const std::vector<VertexId> ids = graph.VertexIds();
  std::unordered_map<VertexId, double> centrality;
  for (VertexId v : ids) centrality[v] = 0.0;

  // Brandes: one BFS per source with path counting, then dependency
  // accumulation in reverse BFS order.
  for (VertexId source : ids) {
    std::vector<VertexId> order;
    std::unordered_map<VertexId, std::vector<VertexId>> predecessors;
    std::unordered_map<VertexId, double> sigma;
    std::unordered_map<VertexId, int64_t> dist;
    sigma[source] = 1.0;
    dist[source] = 0;
    std::deque<VertexId> queue{source};
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      order.push_back(v);
      for (VertexId w : adj.at(v)) {
        auto it = dist.find(w);
        if (it == dist.end()) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
          it = dist.find(w);
        }
        if (it->second == dist[v] + 1) {
          sigma[w] += sigma[v];
          predecessors[w].push_back(v);
        }
      }
    }
    std::unordered_map<VertexId, double> delta;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const VertexId w = *it;
      for (VertexId v : predecessors[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != source) centrality[w] += delta[w];
    }
  }
  // Each undirected pair was counted from both endpoints.
  for (auto& [_, c] : centrality) c /= 2.0;
  return centrality;
}

std::unordered_map<VertexId, double> ClosenessCentrality(
    const PropertyGraph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  std::unordered_map<VertexId, double> closeness;
  for (const auto& [source, _] : adj) {
    std::unordered_map<VertexId, int64_t> dist;
    dist[source] = 0;
    std::deque<VertexId> queue{source};
    int64_t total = 0;
    size_t reached = 0;
    while (!queue.empty()) {
      const VertexId v = queue.front();
      queue.pop_front();
      total += dist[v];
      if (v != source) ++reached;
      for (VertexId w : adj.at(v)) {
        if (!dist.count(w)) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    closeness[source] =
        total > 0 ? static_cast<double>(reached) / static_cast<double>(total)
                  : 0.0;
  }
  return closeness;
}

std::unordered_map<VertexId, size_t> CoreNumbers(const PropertyGraph& graph) {
  auto adj = UndirectedAdjacency(graph);
  std::unordered_map<VertexId, size_t> degree;
  std::unordered_map<VertexId, size_t> core;
  // Peeling: repeatedly remove the minimum-degree vertex; its core number
  // is the running maximum of the degrees at removal time.
  std::vector<VertexId> remaining;
  for (const auto& [v, nbs] : adj) {
    degree[v] = nbs.size();
    remaining.push_back(v);
  }
  std::sort(remaining.begin(), remaining.end());
  std::unordered_map<VertexId, bool> removed;
  size_t current_core = 0;
  while (!remaining.empty()) {
    // Find the live vertex of minimum degree (ties by id; sizes are small
    // enough that the simple O(n²) peel is fine and fully deterministic).
    size_t best_index = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (best_index == remaining.size() ||
          degree[remaining[i]] < degree[remaining[best_index]]) {
        best_index = i;
      }
    }
    const VertexId v = remaining[best_index];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_index));
    current_core = std::max(current_core, degree[v]);
    core[v] = current_core;
    removed[v] = true;
    for (VertexId w : adj.at(v)) {
      if (!removed[w] && degree[w] > 0) --degree[w];
    }
  }
  return core;
}

}  // namespace hygraph::graph
