#include "graph/community.h"

#include <algorithm>
#include <map>

namespace hygraph::graph {

namespace {

double EdgeWeight(const PropertyGraph& graph, EdgeId eid,
                  const std::string& weight_property) {
  if (weight_property.empty()) return 1.0;
  auto value = graph.GetEdgeProperty(eid, weight_property);
  if (!value.ok()) return 1.0;
  auto w = value->ToDouble();
  return w.ok() ? *w : 1.0;
}

// Undirected weighted adjacency: vertex -> (neighbor -> summed weight).
// Self-loops contribute their full weight to the diagonal.
std::unordered_map<VertexId, std::unordered_map<VertexId, double>>
WeightedAdjacency(const PropertyGraph& graph,
                  const std::string& weight_property) {
  std::unordered_map<VertexId, std::unordered_map<VertexId, double>> adj;
  for (VertexId v : graph.VertexIds()) adj[v];  // ensure isolated vertices
  for (EdgeId eid : graph.EdgeIds()) {
    const Edge& e = **graph.GetEdge(eid);
    const double w = EdgeWeight(graph, eid, weight_property);
    adj[e.src][e.dst] += w;
    if (e.src != e.dst) adj[e.dst][e.src] += w;
  }
  return adj;
}

}  // namespace

double Modularity(const PropertyGraph& graph,
                  const CommunityAssignment& assignment,
                  const std::string& weight_property) {
  const auto adj = WeightedAdjacency(graph, weight_property);
  double two_m = 0.0;
  std::unordered_map<VertexId, double> strength;
  for (const auto& [v, nbs] : adj) {
    double s = 0.0;
    for (const auto& [nb, w] : nbs) s += w;
    strength[v] = s;
    two_m += s;
  }
  if (two_m <= 0.0) return 0.0;
  // Community-sum form: Q = Σ_c [ in_c / 2m − (tot_c / 2m)² ], where in_c
  // sums A_ij over ordered intra-community pairs and tot_c sums strengths.
  // (The pairwise form must subtract k_i·k_j for *all* same-community
  // pairs, not only adjacent ones.)
  std::unordered_map<size_t, double> in_weight;
  std::unordered_map<size_t, double> total_strength;
  for (const auto& [v, nbs] : adj) {
    auto cv = assignment.find(v);
    if (cv == assignment.end()) continue;
    total_strength[cv->second] += strength[v];
    for (const auto& [nb, w] : nbs) {
      auto cn = assignment.find(nb);
      if (cn != assignment.end() && cv->second == cn->second) {
        in_weight[cv->second] += w;
      }
    }
  }
  double q = 0.0;
  for (const auto& [c, tot] : total_strength) {
    const double frac = tot / two_m;
    q += in_weight[c] / two_m - frac * frac;
  }
  return q;
}

Result<CommunityAssignment> LabelPropagation(const PropertyGraph& graph,
                                             size_t max_iterations) {
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  CommunityAssignment labels;
  std::vector<VertexId> ids = graph.VertexIds();
  for (size_t i = 0; i < ids.size(); ++i) labels[ids[i]] = i;
  // Sweep in decreasing id order: with the smallest-label tie-break below,
  // each dense region consolidates onto its local minimum label before a
  // bridge vertex is evaluated, so single bridge edges cannot flood one
  // community's label into the next (which increasing order would allow
  // during the all-singleton first sweep).
  std::reverse(ids.begin(), ids.end());
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (VertexId v : ids) {
      // Most frequent neighbor label; ties -> smallest label.
      std::map<size_t, size_t> freq;
      for (VertexId nb : graph.Neighbors(v)) ++freq[labels[nb]];
      if (freq.empty()) continue;
      size_t best_label = labels[v];
      size_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count) {
          best_count = count;
          best_label = label;
        }
      }
      if (freq.count(labels[v]) && freq[labels[v]] == best_count) {
        continue;  // current label is already (one of) the best
      }
      if (best_label != labels[v]) {
        labels[v] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Renumber(labels);
}

Result<CommunityAssignment> Louvain(const PropertyGraph& graph,
                                    const LouvainOptions& options) {
  if (options.max_passes == 0) {
    return Status::InvalidArgument("max_passes must be >= 1");
  }
  const auto adj = WeightedAdjacency(graph, options.weight_property);
  const std::vector<VertexId> ids = graph.VertexIds();

  std::unordered_map<VertexId, double> strength;
  double two_m = 0.0;
  for (const auto& [v, nbs] : adj) {
    double s = 0.0;
    for (const auto& [nb, w] : nbs) s += w;
    strength[v] = s;
    two_m += s;
  }
  CommunityAssignment community;
  for (size_t i = 0; i < ids.size(); ++i) community[ids[i]] = i;
  if (two_m <= 0.0) return Renumber(community);

  // Total strength per community.
  std::unordered_map<size_t, double> community_strength;
  for (VertexId v : ids) community_strength[community[v]] += strength[v];

  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    bool moved = false;
    for (VertexId v : ids) {
      const size_t current = community[v];
      // Weight from v to each adjacent community.
      std::map<size_t, double> to_community;
      for (const auto& [nb, w] : adj.at(v)) {
        if (nb == v) continue;
        to_community[community[nb]] += w;
      }
      // Remove v from its community for the gain computation.
      community_strength[current] -= strength[v];
      const double base = to_community.count(current)
                              ? to_community[current]
                              : 0.0;
      const double base_gain =
          base - community_strength[current] * strength[v] / two_m;
      size_t best = current;
      double best_gain = base_gain;
      for (const auto& [cand, w] : to_community) {
        if (cand == current) continue;
        const double gain =
            w - community_strength[cand] * strength[v] / two_m;
        if (gain > best_gain + options.min_gain) {
          best_gain = gain;
          best = cand;
        }
      }
      community[v] = best;
      community_strength[best] += strength[v];
      if (best != current) moved = true;
    }
    if (!moved) break;
  }
  return Renumber(community);
}

CommunityAssignment Renumber(const CommunityAssignment& assignment) {
  // Deterministic order: increasing vertex id.
  std::vector<VertexId> ids;
  ids.reserve(assignment.size());
  for (const auto& [v, _] : assignment) ids.push_back(v);
  std::sort(ids.begin(), ids.end());
  std::unordered_map<size_t, size_t> remap;
  CommunityAssignment out;
  for (VertexId v : ids) {
    const size_t old_id = assignment.at(v);
    auto [it, inserted] = remap.emplace(old_id, remap.size());
    out[v] = it->second;
  }
  return out;
}

}  // namespace hygraph::graph
