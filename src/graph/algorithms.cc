#include "graph/algorithms.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace hygraph::graph {

Result<std::unordered_map<VertexId, double>> PageRank(
    const PropertyGraph& graph, const PageRankOptions& options) {
  if (options.damping <= 0.0 || options.damping >= 1.0) {
    return Status::InvalidArgument("damping must be in (0, 1)");
  }
  const std::vector<VertexId> ids = graph.VertexIds();
  const size_t n = ids.size();
  std::unordered_map<VertexId, double> rank;
  if (n == 0) return rank;
  const double uniform = 1.0 / static_cast<double>(n);
  for (VertexId v : ids) rank[v] = uniform;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::unordered_map<VertexId, double> next;
    next.reserve(n);
    double dangling = 0.0;
    for (VertexId v : ids) {
      if (graph.OutDegree(v) == 0) dangling += rank[v];
    }
    for (VertexId v : ids) {
      next[v] = (1.0 - options.damping) * uniform +
                options.damping * dangling * uniform;
    }
    for (VertexId v : ids) {
      const size_t out_degree = graph.OutDegree(v);
      if (out_degree == 0) continue;
      const double share =
          options.damping * rank[v] / static_cast<double>(out_degree);
      for (EdgeId eid : graph.OutEdges(v)) {
        next[(*graph.GetEdge(eid))->dst] += share;
      }
    }
    double delta = 0.0;
    for (VertexId v : ids) delta += std::abs(next[v] - rank[v]);
    rank = std::move(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

std::unordered_map<VertexId, VertexId> ConnectedComponents(
    const PropertyGraph& graph) {
  std::unordered_map<VertexId, VertexId> component;
  const std::vector<VertexId> ids = graph.VertexIds();  // increasing order
  for (VertexId root : ids) {
    if (component.count(root)) continue;
    // BFS over undirected adjacency; root is the smallest id by iteration
    // order, so it labels the component.
    std::vector<VertexId> frontier{root};
    component[root] = root;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      for (VertexId nb : graph.Neighbors(v)) {
        if (!component.count(nb)) {
          component[nb] = root;
          frontier.push_back(nb);
        }
      }
    }
  }
  return component;
}

namespace {

// Undirected de-duplicated neighbor sets for triangle counting.
std::unordered_map<VertexId, std::vector<VertexId>> UndirectedAdjacency(
    const PropertyGraph& graph) {
  std::unordered_map<VertexId, std::vector<VertexId>> adj;
  for (VertexId v : graph.VertexIds()) {
    std::vector<VertexId> nbs = graph.Neighbors(v);
    std::sort(nbs.begin(), nbs.end());
    nbs.erase(std::unique(nbs.begin(), nbs.end()), nbs.end());
    nbs.erase(std::remove(nbs.begin(), nbs.end(), v), nbs.end());
    adj[v] = std::move(nbs);
  }
  return adj;
}

}  // namespace

size_t CountTriangles(const PropertyGraph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  size_t triangles = 0;
  // Count each triangle once via the ordered rule u < v < w.
  for (const auto& [u, nbs] : adj) {
    for (VertexId v : nbs) {
      if (v <= u) continue;
      const auto& nv = adj.at(v);
      // Intersect nbs(u) ∩ nbs(v), keeping only w > v.
      size_t i = 0;
      size_t j = 0;
      while (i < nbs.size() && j < nv.size()) {
        if (nbs[i] < nv[j]) {
          ++i;
        } else if (nbs[i] > nv[j]) {
          ++j;
        } else {
          if (nbs[i] > v) ++triangles;
          ++i;
          ++j;
        }
      }
    }
  }
  return triangles;
}

double GlobalClusteringCoefficient(const PropertyGraph& graph) {
  const auto adj = UndirectedAdjacency(graph);
  size_t triplets = 0;
  for (const auto& [v, nbs] : adj) {
    const size_t d = nbs.size();
    triplets += d * (d - 1) / 2;
  }
  if (triplets == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(graph)) /
         static_cast<double>(triplets);
}

std::unordered_map<size_t, size_t> DegreeHistogram(
    const PropertyGraph& graph) {
  std::unordered_map<size_t, size_t> hist;
  for (VertexId v : graph.VertexIds()) ++hist[graph.Degree(v)];
  return hist;
}

}  // namespace hygraph::graph
