#ifndef HYGRAPH_GRAPH_ALGORITHMS_H_
#define HYGRAPH_GRAPH_ALGORITHMS_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// PageRank options.
struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 50;
  double tolerance = 1e-8;  ///< L1 convergence threshold
};

/// PageRank over the directed graph; dangling mass is redistributed
/// uniformly. Returns vertex → rank (ranks sum to ~1).
Result<std::unordered_map<VertexId, double>> PageRank(
    const PropertyGraph& graph, const PageRankOptions& options = {});

/// Weakly connected components: vertex → component id, where the id is the
/// smallest vertex id in the component.
std::unordered_map<VertexId, VertexId> ConnectedComponents(
    const PropertyGraph& graph);

/// Number of distinct triangles treating edges as undirected (parallel
/// edges and self-loops ignored).
size_t CountTriangles(const PropertyGraph& graph);

/// Global clustering coefficient = 3 * triangles / open-or-closed triplets.
double GlobalClusteringCoefficient(const PropertyGraph& graph);

/// Degree distribution snapshot: degree → number of vertices (total degree,
/// in + out).
std::unordered_map<size_t, size_t> DegreeHistogram(const PropertyGraph& graph);

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_ALGORITHMS_H_
