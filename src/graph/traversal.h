#ifndef HYGRAPH_GRAPH_TRAVERSAL_H_
#define HYGRAPH_GRAPH_TRAVERSAL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// Edge-direction policy for traversals.
enum class TraversalDirection : uint8_t { kOut, kIn, kBoth };

/// Options shared by the traversal primitives.
struct TraversalOptions {
  TraversalDirection direction = TraversalDirection::kOut;
  /// Only follow edges with this label (empty = all).
  std::string edge_label;
  /// Stop expanding past this depth (0 = only the source itself).
  size_t max_depth = ~size_t{0};
  /// Governance hook: when set, traversals charge one unit per vertex
  /// popped from the frontier and abort with the context's status
  /// (kDeadlineExceeded / kCancelled / kResourceExhausted) at the next
  /// checkpoint. Not owned; must outlive the traversal call.
  QueryContext* context = nullptr;
};

/// Breadth-first search from `source`; returns (vertex, depth) pairs in
/// visit order, including the source at depth 0.
struct BfsVisit {
  VertexId vertex = kInvalidVertexId;
  size_t depth = 0;
};
Result<std::vector<BfsVisit>> Bfs(const PropertyGraph& graph, VertexId source,
                                  const TraversalOptions& options = {});

/// Depth-first preorder from `source`.
Result<std::vector<VertexId>> DfsPreorder(const PropertyGraph& graph,
                                          VertexId source,
                                          const TraversalOptions& options = {});

/// True when `target` is reachable from `source` under the options
/// (Table 2 row Q3, "Reachability [11]").
Result<bool> IsReachable(const PropertyGraph& graph, VertexId source,
                         VertexId target, const TraversalOptions& options = {});

/// Vertices at exactly `k` hops (minimum distance k) from the source.
Result<std::vector<VertexId>> KHopNeighbors(const PropertyGraph& graph,
                                            VertexId source, size_t k,
                                            const TraversalOptions& options = {});

/// Weighted shortest path (Dijkstra). Edge weight is read from
/// `weight_property` (must be numeric and non-negative); missing property
/// means weight 1.
struct ShortestPath {
  std::vector<VertexId> vertices;  ///< source ... target
  std::vector<EdgeId> edges;       ///< parallel to hops
  double total_weight = 0.0;
};
Result<ShortestPath> FindShortestPath(const PropertyGraph& graph,
                                      VertexId source, VertexId target,
                                      const std::string& weight_property = "",
                                      const TraversalOptions& options = {});

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_TRAVERSAL_H_
