#include "graph/property_graph.h"

#include <algorithm>

namespace hygraph::graph {

namespace {

const std::vector<EdgeId>& EmptyEdgeList() {
  static const std::vector<EdgeId>* kEmpty =
      new std::vector<EdgeId>();  // NOLINT(hygraph-naked-new): leaked singleton
  return *kEmpty;
}

Status NoSuchVertex(VertexId v) {
  return Status::NotFound("no vertex with id " + std::to_string(v));
}

Status NoSuchEdge(EdgeId e) {
  return Status::NotFound("no edge with id " + std::to_string(e));
}

}  // namespace

bool Vertex::HasLabel(const std::string& label) const {
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

VertexId PropertyGraph::AddVertex(std::vector<std::string> labels,
                                  PropertyMap properties) {
  const VertexId id = vertices_.size();
  VertexSlot slot;
  slot.vertex.id = id;
  slot.vertex.labels = std::move(labels);
  slot.vertex.properties = std::move(properties);
  slot.live = true;
  for (const std::string& label : slot.vertex.labels) {
    label_index_[label].push_back(id);
  }
  for (const auto& [key, value] : slot.vertex.properties) {
    IndexInsert(id, key, value);
  }
  vertices_.push_back(std::move(slot));
  ++live_vertices_;
  return id;
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst,
                                      std::string label,
                                      PropertyMap properties) {
  if (!HasVertex(src)) return Status(NoSuchVertex(src));
  if (!HasVertex(dst)) return Status(NoSuchVertex(dst));
  const EdgeId id = edges_.size();
  EdgeSlot slot;
  slot.edge.id = id;
  slot.edge.src = src;
  slot.edge.dst = dst;
  slot.edge.label = std::move(label);
  slot.edge.properties = std::move(properties);
  slot.live = true;
  edges_.push_back(std::move(slot));
  vertices_[src].out.push_back(id);
  vertices_[dst].in.push_back(id);
  ++live_edges_;
  return id;
}

Status PropertyGraph::RemoveEdge(EdgeId e) {
  if (!HasEdge(e)) return NoSuchEdge(e);
  EdgeSlot& slot = edges_[e];
  auto& out = vertices_[slot.edge.src].out;
  out.erase(std::remove(out.begin(), out.end(), e), out.end());
  auto& in = vertices_[slot.edge.dst].in;
  in.erase(std::remove(in.begin(), in.end(), e), in.end());
  slot.live = false;
  slot.edge.properties.clear();
  --live_edges_;
  return Status::OK();
}

Status PropertyGraph::RemoveVertex(VertexId v) {
  if (!HasVertex(v)) return NoSuchVertex(v);
  VertexSlot& slot = vertices_[v];
  // Copy: RemoveEdge mutates the adjacency lists we are iterating.
  const std::vector<EdgeId> out = slot.out;
  for (EdgeId e : out) HYGRAPH_IGNORE_RESULT(RemoveEdge(e));
  const std::vector<EdgeId> in = slot.in;
  for (EdgeId e : in) HYGRAPH_IGNORE_RESULT(RemoveEdge(e));
  for (const std::string& label : slot.vertex.labels) {
    auto it = label_index_.find(label);
    if (it != label_index_.end()) {
      auto& ids = it->second;
      ids.erase(std::remove(ids.begin(), ids.end(), v), ids.end());
    }
  }
  for (const auto& [key, value] : slot.vertex.properties) {
    IndexErase(v, key, value);
  }
  slot.live = false;
  slot.vertex.properties.clear();
  --live_vertices_;
  return Status::OK();
}

Status PropertyGraph::SetVertexProperty(VertexId v, const std::string& key,
                                        Value value) {
  if (!HasVertex(v)) return NoSuchVertex(v);
  PropertyMap& props = vertices_[v].vertex.properties;
  auto it = props.find(key);
  if (it != props.end()) {
    IndexErase(v, key, it->second);
    it->second = std::move(value);
    IndexInsert(v, key, it->second);
  } else {
    auto [pos, _] = props.emplace(key, std::move(value));
    IndexInsert(v, key, pos->second);
  }
  return Status::OK();
}

Status PropertyGraph::SetEdgeProperty(EdgeId e, const std::string& key,
                                      Value value) {
  if (!HasEdge(e)) return NoSuchEdge(e);
  edges_[e].edge.properties[key] = std::move(value);
  return Status::OK();
}

bool PropertyGraph::HasVertex(VertexId v) const {
  return v < vertices_.size() && vertices_[v].live;
}

bool PropertyGraph::HasEdge(EdgeId e) const {
  return e < edges_.size() && edges_[e].live;
}

Result<const Vertex*> PropertyGraph::GetVertex(VertexId v) const {
  if (!HasVertex(v)) return Status(NoSuchVertex(v));
  return &vertices_[v].vertex;
}

Result<const Edge*> PropertyGraph::GetEdge(EdgeId e) const {
  if (!HasEdge(e)) return Status(NoSuchEdge(e));
  return &edges_[e].edge;
}

Result<Value> PropertyGraph::GetVertexProperty(VertexId v,
                                               const std::string& key) const {
  if (!HasVertex(v)) return Status(NoSuchVertex(v));
  const PropertyMap& props = vertices_[v].vertex.properties;
  auto it = props.find(key);
  if (it == props.end()) {
    return Status::NotFound("vertex " + std::to_string(v) +
                            " has no property '" + key + "'");
  }
  return it->second;
}

Result<Value> PropertyGraph::GetEdgeProperty(EdgeId e,
                                             const std::string& key) const {
  if (!HasEdge(e)) return Status(NoSuchEdge(e));
  const PropertyMap& props = edges_[e].edge.properties;
  auto it = props.find(key);
  if (it == props.end()) {
    return Status::NotFound("edge " + std::to_string(e) +
                            " has no property '" + key + "'");
  }
  return it->second;
}

std::vector<VertexId> PropertyGraph::VertexIds() const {
  std::vector<VertexId> ids;
  ids.reserve(live_vertices_);
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].live) ids.push_back(v);
  }
  return ids;
}

std::vector<EdgeId> PropertyGraph::EdgeIds() const {
  std::vector<EdgeId> ids;
  ids.reserve(live_edges_);
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edges_[e].live) ids.push_back(e);
  }
  return ids;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(VertexId v) const {
  if (!HasVertex(v)) return EmptyEdgeList();
  return vertices_[v].out;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(VertexId v) const {
  if (!HasVertex(v)) return EmptyEdgeList();
  return vertices_[v].in;
}

std::vector<VertexId> PropertyGraph::OutNeighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (EdgeId e : OutEdges(v)) out.push_back(edges_[e].edge.dst);
  return out;
}

std::vector<VertexId> PropertyGraph::InNeighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (EdgeId e : InEdges(v)) out.push_back(edges_[e].edge.src);
  return out;
}

std::vector<VertexId> PropertyGraph::Neighbors(VertexId v) const {
  std::vector<VertexId> out = OutNeighbors(v);
  const std::vector<VertexId> in = InNeighbors(v);
  out.insert(out.end(), in.begin(), in.end());
  return out;
}

std::vector<VertexId> PropertyGraph::VerticesWithLabel(
    const std::string& label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return {};
  std::vector<VertexId> out;
  out.reserve(it->second.size());
  for (VertexId v : it->second) {
    if (HasVertex(v)) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void PropertyGraph::CreateVertexPropertyIndex(const std::string& key) {
  PropertyIndex index;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertices_[v].live) continue;
    auto it = vertices_[v].vertex.properties.find(key);
    if (it != vertices_[v].vertex.properties.end()) {
      index[it->second].push_back(v);
    }
  }
  property_indexes_[key] = std::move(index);
}

bool PropertyGraph::HasVertexPropertyIndex(const std::string& key) const {
  return property_indexes_.count(key) > 0;
}

std::vector<VertexId> PropertyGraph::FindVertices(const std::string& key,
                                                  const Value& value) const {
  auto idx = property_indexes_.find(key);
  if (idx != property_indexes_.end()) {
    auto it = idx->second.find(value);
    if (it == idx->second.end()) return {};
    std::vector<VertexId> out;
    out.reserve(it->second.size());
    for (VertexId v : it->second) {
      if (HasVertex(v)) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  std::vector<VertexId> out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (!vertices_[v].live) continue;
    auto it = vertices_[v].vertex.properties.find(key);
    if (it != vertices_[v].vertex.properties.end() && it->second == value) {
      out.push_back(v);
    }
  }
  return out;
}

void PropertyGraph::IndexInsert(VertexId v, const std::string& key,
                                const Value& value) {
  auto idx = property_indexes_.find(key);
  if (idx == property_indexes_.end()) return;
  idx->second[value].push_back(v);
}

void PropertyGraph::IndexErase(VertexId v, const std::string& key,
                               const Value& value) {
  auto idx = property_indexes_.find(key);
  if (idx == property_indexes_.end()) return;
  auto it = idx->second.find(value);
  if (it == idx->second.end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), v), ids.end());
  if (ids.empty()) idx->second.erase(it);
}

}  // namespace hygraph::graph
