#ifndef HYGRAPH_GRAPH_COMMUNITY_H_
#define HYGRAPH_GRAPH_COMMUNITY_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// A community assignment: vertex → community id (ids are dense from 0).
using CommunityAssignment = std::unordered_map<VertexId, size_t>;

/// Newman modularity of an assignment over the undirected weighted view of
/// the graph (weight from `weight_property`, default 1 per edge).
double Modularity(const PropertyGraph& graph,
                  const CommunityAssignment& assignment,
                  const std::string& weight_property = "");

/// Label propagation (Table 2 row D, "Communities [34]"): every vertex
/// adopts the most frequent label among its neighbors until stable (ties
/// broken by the smallest label; deterministic sweep order by vertex id).
Result<CommunityAssignment> LabelPropagation(const PropertyGraph& graph,
                                             size_t max_iterations = 100);

/// One-level Louvain: greedy modularity optimization moving vertices
/// between communities until no move improves modularity, followed by
/// community renumbering. Deterministic sweep order.
struct LouvainOptions {
  size_t max_passes = 10;
  double min_gain = 1e-9;
  std::string weight_property;  ///< empty = unit weights
};
Result<CommunityAssignment> Louvain(const PropertyGraph& graph,
                                    const LouvainOptions& options = {});

/// Renumbers community ids densely from 0 in order of first appearance by
/// increasing vertex id; exposed for testing.
CommunityAssignment Renumber(const CommunityAssignment& assignment);

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_COMMUNITY_H_
