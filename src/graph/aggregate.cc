#include "graph/aggregate.h"

#include <map>

namespace hygraph::graph {

namespace {

// Shared implementation: group_of maps each vertex to an opaque group key
// rendered as a string; group_value provides the representative Value
// stored on the super-vertex.
Result<GroupedGraph> GroupImpl(
    const PropertyGraph& graph, const GroupingSpec& spec,
    const std::unordered_map<VertexId, std::string>& group_of,
    const std::unordered_map<std::string, Value>& group_value) {
  GroupedGraph out;
  // Deterministic group order: sorted string keys.
  std::map<std::string, std::vector<VertexId>> members;
  for (VertexId v : graph.VertexIds()) {
    auto it = group_of.find(v);
    if (it == group_of.end()) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " has no group assignment");
    }
    members[it->second].push_back(v);
  }
  std::unordered_map<std::string, VertexId> super_of_group;
  for (const auto& [key, vs] : members) {
    PropertyMap props;
    auto rep = group_value.find(key);
    if (rep != group_value.end() && !spec.vertex_group_key.empty()) {
      props[spec.vertex_group_key] = rep->second;
    }
    props["count"] = static_cast<int64_t>(vs.size());
    for (const std::string& agg_key : spec.vertex_agg_keys) {
      double sum = 0.0;
      for (VertexId v : vs) {
        auto value = graph.GetVertexProperty(v, agg_key);
        if (!value.ok()) continue;
        auto d = value->ToDouble();
        if (d.ok()) sum += *d;
      }
      props["sum_" + agg_key] = sum;
    }
    const VertexId super = out.summary.AddVertex({"Group"}, std::move(props));
    super_of_group[key] = super;
    for (VertexId v : vs) out.vertex_to_super[v] = super;
  }
  // Collapse edges between groups; (src_super, dst_super) -> aggregates.
  struct EdgeAgg {
    size_t count = 0;
    std::map<std::string, double> sums;
  };
  std::map<std::pair<VertexId, VertexId>, EdgeAgg> edge_groups;
  for (EdgeId eid : graph.EdgeIds()) {
    const Edge& e = **graph.GetEdge(eid);
    const VertexId s = out.vertex_to_super.at(e.src);
    const VertexId d = out.vertex_to_super.at(e.dst);
    EdgeAgg& agg = edge_groups[{s, d}];
    ++agg.count;
    for (const std::string& agg_key : spec.edge_agg_keys) {
      auto value = graph.GetEdgeProperty(eid, agg_key);
      if (!value.ok()) continue;
      auto dv = value->ToDouble();
      if (dv.ok()) agg.sums[agg_key] += *dv;
    }
  }
  for (const auto& [endpoints, agg] : edge_groups) {
    PropertyMap props;
    props["count"] = static_cast<int64_t>(agg.count);
    for (const auto& [key, sum] : agg.sums) props["sum_" + key] = sum;
    auto edge = out.summary.AddEdge(endpoints.first, endpoints.second,
                                    "GroupEdge", std::move(props));
    if (!edge.ok()) return edge.status();
  }
  return out;
}

}  // namespace

Result<GroupedGraph> GroupBy(const PropertyGraph& graph,
                             const GroupingSpec& spec) {
  if (spec.vertex_group_key.empty()) {
    return Status::InvalidArgument("vertex_group_key must be set");
  }
  std::unordered_map<VertexId, std::string> group_of;
  std::unordered_map<std::string, Value> group_value;
  for (VertexId v : graph.VertexIds()) {
    auto value = graph.GetVertexProperty(v, spec.vertex_group_key);
    const Value rep = value.ok() ? *value : Value();
    const std::string key = rep.ToString();
    group_of[v] = key;
    group_value.emplace(key, rep);
  }
  return GroupImpl(graph, spec, group_of, group_value);
}

Result<GroupedGraph> GroupByAssignment(
    const PropertyGraph& graph,
    const std::unordered_map<VertexId, size_t>& assignment,
    const GroupingSpec& spec) {
  std::unordered_map<VertexId, std::string> group_of;
  std::unordered_map<std::string, Value> group_value;
  for (VertexId v : graph.VertexIds()) {
    auto it = assignment.find(v);
    if (it == assignment.end()) {
      return Status::InvalidArgument("assignment misses vertex " +
                                     std::to_string(v));
    }
    const std::string key = std::to_string(it->second);
    group_of[v] = key;
    group_value.emplace(key, Value(static_cast<int64_t>(it->second)));
  }
  GroupingSpec effective = spec;
  if (effective.vertex_group_key.empty()) {
    effective.vertex_group_key = "group";
  }
  return GroupImpl(graph, effective, group_of, group_value);
}

}  // namespace hygraph::graph
