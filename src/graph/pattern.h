#ifndef HYGRAPH_GRAPH_PATTERN_H_
#define HYGRAPH_GRAPH_PATTERN_H_

#include <map>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "common/value.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// Comparison operators for property predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Evaluates `lhs op rhs` using Value::Compare semantics.
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// A predicate `property(key) op value` on a vertex or edge.
struct PropertyPredicate {
  std::string key;
  CmpOp op = CmpOp::kEq;
  Value value;

  /// True when `props` contains `key` and the comparison holds. Missing
  /// keys never match (three-valued logic collapsed to false).
  bool Matches(const PropertyMap& props) const;
};

/// A pattern vertex: a variable name, an optional label constraint, and
/// property predicates.
struct VertexPattern {
  std::string var;
  std::string label;  ///< empty = any label
  std::vector<PropertyPredicate> predicates;
};

/// Edge direction relative to (src_var, dst_var).
enum class Direction : uint8_t { kOut, kIn, kAny };

/// A pattern edge between two pattern variables.
struct EdgePattern {
  std::string src_var;
  std::string dst_var;
  std::string label;  ///< empty = any label
  Direction direction = Direction::kOut;
  std::vector<PropertyPredicate> predicates;
};

/// A conjunctive graph pattern (the MATCH clause of Listing 1): all vertex
/// and edge constraints must hold simultaneously.
struct Pattern {
  std::vector<VertexPattern> vertices;
  std::vector<EdgePattern> edges;

  /// Convenience builders.
  Pattern& AddVertex(std::string var, std::string label = "",
                     std::vector<PropertyPredicate> preds = {});
  Pattern& AddEdge(std::string src_var, std::string dst_var,
                   std::string label = "",
                   Direction direction = Direction::kOut,
                   std::vector<PropertyPredicate> preds = {});
};

/// One embedding of a pattern: variable → vertex, plus the matched edge per
/// EdgePattern (parallel to Pattern::edges).
struct PatternMatch {
  std::map<std::string, VertexId> vertices;
  std::vector<EdgeId> edges;
};

/// Options for the matcher.
struct MatchOptions {
  size_t limit = 0;  ///< 0 = unlimited
  /// Distinct pattern variables must bind distinct graph vertices
  /// (homomorphism vs isomorphism switch; default isomorphic, matching
  /// Cypher's practical expectation for fraud-style queries).
  bool injective_vertices = true;
  /// Governance hook: when set, the backtracking search charges one unit
  /// per candidate vertex considered and aborts with the context's status
  /// (kDeadlineExceeded / kCancelled / kResourceExhausted) at the next
  /// checkpoint. Not owned; must outlive the MatchPattern call.
  QueryContext* context = nullptr;
};

/// Enumerates embeddings of `pattern` in `graph` by backtracking search.
/// Variables are ordered greedily: label-indexed candidate counts seed the
/// first choice, and subsequent variables prefer those adjacent to already
/// bound ones so candidates come from adjacency lists instead of scans.
/// Matched edges are pairwise distinct within one embedding.
Result<std::vector<PatternMatch>> MatchPattern(const PropertyGraph& graph,
                                               const Pattern& pattern,
                                               const MatchOptions& options = {});

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_PATTERN_H_
