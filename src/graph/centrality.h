#ifndef HYGRAPH_GRAPH_CENTRALITY_H_
#define HYGRAPH_GRAPH_CENTRALITY_H_

#include <unordered_map>

#include "common/status.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// Centrality and decomposition extras used by the analytics layer and the
/// examples (entity importance in fraud rings, hub stations).

/// Exact betweenness centrality (Brandes' algorithm) over the undirected
/// unweighted view. O(V·E); fine for the library's target scales.
std::unordered_map<VertexId, double> BetweennessCentrality(
    const PropertyGraph& graph);

/// Closeness centrality: (n-1) / Σ d(v, u) over v's connected component
/// (harmonic with respect to unreachable vertices being skipped). 0 for
/// isolated vertices.
std::unordered_map<VertexId, double> ClosenessCentrality(
    const PropertyGraph& graph);

/// k-core decomposition: the core number of every vertex (the largest k
/// such that the vertex belongs to a maximal subgraph of minimum degree k),
/// computed by the peeling algorithm on the undirected view.
std::unordered_map<VertexId, size_t> CoreNumbers(const PropertyGraph& graph);

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_CENTRALITY_H_
