#ifndef HYGRAPH_GRAPH_PROPERTY_GRAPH_H_
#define HYGRAPH_GRAPH_PROPERTY_GRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace hygraph::graph {

using VertexId = uint64_t;
using EdgeId = uint64_t;
inline constexpr VertexId kInvalidVertexId = ~VertexId{0};
inline constexpr EdgeId kInvalidEdgeId = ~EdgeId{0};

/// Properties are a deterministic (sorted) key → Value map; deterministic
/// iteration keeps query results and tests stable.
using PropertyMap = std::map<std::string, Value>;

/// A labeled property-graph vertex.
struct Vertex {
  VertexId id = kInvalidVertexId;
  std::vector<std::string> labels;
  PropertyMap properties;

  bool HasLabel(const std::string& label) const;
  bool operator==(const Vertex&) const = default;
};

/// A directed, labeled property-graph edge.
struct Edge {
  EdgeId id = kInvalidEdgeId;
  VertexId src = kInvalidVertexId;
  VertexId dst = kInvalidVertexId;
  std::string label;
  PropertyMap properties;

  bool operator==(const Edge&) const = default;
};

/// An in-memory labeled property graph (LPG [6]): directed multigraph with
/// labels and key→value properties on vertices and edges. This is the
/// structural substrate under the temporal layer, the HyGraph model, and the
/// all-in-graph storage engine.
///
/// Ids are dense and never reused; removal tombstones the slot. Adjacency is
/// maintained incrementally (out-/in-edge lists per vertex). A label index
/// accelerates label scans; optional property indexes accelerate equality
/// lookups (value-ordered, so range scans would also be possible).
class PropertyGraph {
 public:
  PropertyGraph() = default;

  PropertyGraph(const PropertyGraph&) = default;
  PropertyGraph& operator=(const PropertyGraph&) = default;
  PropertyGraph(PropertyGraph&&) = default;
  PropertyGraph& operator=(PropertyGraph&&) = default;

  // -- mutation ------------------------------------------------------------

  VertexId AddVertex(std::vector<std::string> labels, PropertyMap properties);
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string label,
                         PropertyMap properties);
  Status RemoveVertex(VertexId v);  ///< also removes incident edges
  Status RemoveEdge(EdgeId e);

  Status SetVertexProperty(VertexId v, const std::string& key, Value value);
  Status SetEdgeProperty(EdgeId e, const std::string& key, Value value);

  // -- lookup --------------------------------------------------------------

  bool HasVertex(VertexId v) const;
  bool HasEdge(EdgeId e) const;
  Result<const Vertex*> GetVertex(VertexId v) const;
  Result<const Edge*> GetEdge(EdgeId e) const;
  /// Property value, or NotFound if the entity or key is absent.
  Result<Value> GetVertexProperty(VertexId v, const std::string& key) const;
  Result<Value> GetEdgeProperty(EdgeId e, const std::string& key) const;

  size_t VertexCount() const { return live_vertices_; }
  size_t EdgeCount() const { return live_edges_; }

  /// All live vertex / edge ids in increasing order.
  std::vector<VertexId> VertexIds() const;
  std::vector<EdgeId> EdgeIds() const;

  /// Outgoing / incoming edge ids of v (empty for unknown vertices).
  const std::vector<EdgeId>& OutEdges(VertexId v) const;
  const std::vector<EdgeId>& InEdges(VertexId v) const;
  size_t OutDegree(VertexId v) const { return OutEdges(v).size(); }
  size_t InDegree(VertexId v) const { return InEdges(v).size(); }
  size_t Degree(VertexId v) const { return OutDegree(v) + InDegree(v); }

  /// Out-neighbors / in-neighbors / all neighbors (with multiplicity).
  std::vector<VertexId> OutNeighbors(VertexId v) const;
  std::vector<VertexId> InNeighbors(VertexId v) const;
  std::vector<VertexId> Neighbors(VertexId v) const;

  /// Vertices carrying `label`, increasing id order (uses the label index).
  std::vector<VertexId> VerticesWithLabel(const std::string& label) const;

  // -- property index ------------------------------------------------------

  /// Creates (or refreshes) an equality index on a vertex property key.
  void CreateVertexPropertyIndex(const std::string& key);
  bool HasVertexPropertyIndex(const std::string& key) const;

  /// Vertices whose property `key` equals `value`; uses the index when one
  /// exists, otherwise falls back to a full scan.
  std::vector<VertexId> FindVertices(const std::string& key,
                                     const Value& value) const;

 private:
  struct VertexSlot {
    Vertex vertex;
    std::vector<EdgeId> out;
    std::vector<EdgeId> in;
    bool live = false;
  };
  struct EdgeSlot {
    Edge edge;
    bool live = false;
  };

  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  using PropertyIndex = std::map<Value, std::vector<VertexId>, ValueLess>;

  void IndexInsert(VertexId v, const std::string& key, const Value& value);
  void IndexErase(VertexId v, const std::string& key, const Value& value);

  std::vector<VertexSlot> vertices_;
  std::vector<EdgeSlot> edges_;
  size_t live_vertices_ = 0;
  size_t live_edges_ = 0;
  std::unordered_map<std::string, std::vector<VertexId>> label_index_;
  std::unordered_map<std::string, PropertyIndex> property_indexes_;
};

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_PROPERTY_GRAPH_H_
