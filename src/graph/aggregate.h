#ifndef HYGRAPH_GRAPH_AGGREGATE_H_
#define HYGRAPH_GRAPH_AGGREGATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace hygraph::graph {

/// Graph grouping / summarization (Table 2 row Q2, "Graph aggregation
/// [90]"), Gradoop-style: vertices are grouped by a key, all vertices in a
/// group collapse into a super-vertex, and all edges between groups collapse
/// into super-edges annotated with aggregates.

/// Specification of the grouping.
struct GroupingSpec {
  /// Vertices with the same value of this property form one group. Vertices
  /// missing the key group under a null key.
  std::string vertex_group_key;
  /// Super-vertices receive a "count" property; these numeric vertex
  /// property keys additionally get per-group "sum_<key>" properties.
  std::vector<std::string> vertex_agg_keys;
  /// Super-edges receive a "count" property; these numeric edge property
  /// keys additionally get "sum_<key>" properties.
  std::vector<std::string> edge_agg_keys;
};

/// Result of a grouping: the summary graph plus the vertex → super-vertex
/// mapping.
struct GroupedGraph {
  PropertyGraph summary;
  std::unordered_map<VertexId, VertexId> vertex_to_super;
};

/// Groups `graph` by `spec`. Super-vertices carry the grouping value under
/// the original key, a label "Group", and aggregates; super-edges carry
/// label "GroupEdge" and aggregates over the collapsed edges.
Result<GroupedGraph> GroupBy(const PropertyGraph& graph,
                             const GroupingSpec& spec);

/// Groups vertices by an externally computed assignment (e.g. community
/// detection output) rather than a stored property. `assignment` must cover
/// every vertex.
Result<GroupedGraph> GroupByAssignment(
    const PropertyGraph& graph,
    const std::unordered_map<VertexId, size_t>& assignment,
    const GroupingSpec& spec);

}  // namespace hygraph::graph

#endif  // HYGRAPH_GRAPH_AGGREGATE_H_
