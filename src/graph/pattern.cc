#include "graph/pattern.h"

#include <algorithm>
#include <limits>

namespace hygraph::graph {

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return !(lhs == rhs);
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

bool PropertyPredicate::Matches(const PropertyMap& props) const {
  auto it = props.find(key);
  if (it == props.end()) return false;
  return EvalCmp(it->second, op, value);
}

Pattern& Pattern::AddVertex(std::string var, std::string label,
                            std::vector<PropertyPredicate> preds) {
  vertices.push_back(
      VertexPattern{std::move(var), std::move(label), std::move(preds)});
  return *this;
}

Pattern& Pattern::AddEdge(std::string src_var, std::string dst_var,
                          std::string label, Direction direction,
                          std::vector<PropertyPredicate> preds) {
  edges.push_back(EdgePattern{std::move(src_var), std::move(dst_var),
                              std::move(label), direction, std::move(preds)});
  return *this;
}

namespace {

// Backtracking state for MatchPattern.
class Matcher {
 public:
  Matcher(const PropertyGraph& graph, const Pattern& pattern,
          const MatchOptions& options)
      : graph_(graph), pattern_(pattern), options_(options) {}

  Status Run(std::vector<PatternMatch>* out) {
    out_ = out;
    const size_t n = pattern_.vertices.size();
    for (size_t i = 0; i < n; ++i) {
      const std::string& var = pattern_.vertices[i].var;
      if (var_index_.count(var)) {
        return Status::InvalidArgument("duplicate pattern variable '" + var +
                                       "'");
      }
      var_index_[var] = i;
    }
    for (const EdgePattern& ep : pattern_.edges) {
      if (!var_index_.count(ep.src_var) || !var_index_.count(ep.dst_var)) {
        return Status::InvalidArgument(
            "edge pattern references unknown variable");
      }
    }
    binding_.assign(n, kInvalidVertexId);
    order_ = ComputeOrder();
    Extend(0);
    return interrupt_;
  }

 private:
  // Greedy variable order: start from the most selective variable (smallest
  // label-index candidate set), then repeatedly pick an unbound variable
  // adjacent to a bound one (cheapest candidate generation), breaking ties
  // by selectivity.
  std::vector<size_t> ComputeOrder() const {
    const size_t n = pattern_.vertices.size();
    std::vector<size_t> order;
    std::vector<bool> placed(n, false);
    auto selectivity = [&](size_t i) -> size_t {
      const VertexPattern& vp = pattern_.vertices[i];
      if (vp.label.empty()) return graph_.VertexCount();
      return graph_.VerticesWithLabel(vp.label).size();
    };
    auto adjacent_to_placed = [&](size_t i) {
      for (const EdgePattern& ep : pattern_.edges) {
        const size_t a = var_index_.at(ep.src_var);
        const size_t b = var_index_.at(ep.dst_var);
        if ((a == i && placed[b]) || (b == i && placed[a])) return true;
      }
      return false;
    };
    while (order.size() < n) {
      size_t best = n;
      size_t best_sel = std::numeric_limits<size_t>::max();
      bool best_adj = false;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const bool adj = !order.empty() && adjacent_to_placed(i);
        const size_t sel = selectivity(i);
        if (best == n || (adj && !best_adj) ||
            (adj == best_adj && sel < best_sel)) {
          best = i;
          best_sel = sel;
          best_adj = adj;
        }
      }
      placed[best] = true;
      order.push_back(best);
    }
    return order;
  }

  bool VertexSatisfies(size_t pattern_idx, VertexId v) const {
    const VertexPattern& vp = pattern_.vertices[pattern_idx];
    auto vertex = graph_.GetVertex(v);
    if (!vertex.ok()) return false;
    if (!vp.label.empty() && !(*vertex)->HasLabel(vp.label)) return false;
    for (const PropertyPredicate& pred : vp.predicates) {
      if (!pred.Matches((*vertex)->properties)) return false;
    }
    return true;
  }

  // Candidate vertices for pattern variable `idx` given current bindings:
  // intersect adjacency constraints from edges to bound variables, or fall
  // back to label index / full scan.
  std::vector<VertexId> Candidates(size_t idx) const {
    // Find an edge pattern connecting idx to a bound variable.
    for (const EdgePattern& ep : pattern_.edges) {
      const size_t a = var_index_.at(ep.src_var);
      const size_t b = var_index_.at(ep.dst_var);
      if (a == idx && binding_[b] != kInvalidVertexId) {
        // idx --ep--> bound(b): candidates reached against edge direction.
        return NeighborsVia(binding_[b], ep, /*toward_src=*/true);
      }
      if (b == idx && binding_[a] != kInvalidVertexId) {
        return NeighborsVia(binding_[a], ep, /*toward_src=*/false);
      }
    }
    const VertexPattern& vp = pattern_.vertices[idx];
    if (!vp.label.empty()) return graph_.VerticesWithLabel(vp.label);
    return graph_.VertexIds();
  }

  // Vertices adjacent to `bound` along edges compatible with `ep`.
  // toward_src: we seek the src endpoint (bound is the dst binding).
  std::vector<VertexId> NeighborsVia(VertexId bound, const EdgePattern& ep,
                                     bool toward_src) const {
    std::vector<VertexId> out;
    auto consider = [&](EdgeId eid, bool edge_out_of_bound) {
      const Edge& e = **graph_.GetEdge(eid);
      if (!ep.label.empty() && e.label != ep.label) return;
      const VertexId other = edge_out_of_bound ? e.dst : e.src;
      switch (ep.direction) {
        case Direction::kOut:
          // Pattern edge flows src -> dst.
          if (toward_src && edge_out_of_bound) return;   // need edge into bound
          if (!toward_src && !edge_out_of_bound) return; // need edge out of bound
          break;
        case Direction::kIn:
          if (toward_src && !edge_out_of_bound) return;
          if (!toward_src && edge_out_of_bound) return;
          break;
        case Direction::kAny:
          break;
      }
      out.push_back(other);
    };
    for (EdgeId eid : graph_.OutEdges(bound)) consider(eid, true);
    for (EdgeId eid : graph_.InEdges(bound)) consider(eid, false);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // After all vertex variables are bound, pick concrete edges for every
  // EdgePattern such that edges are pairwise distinct.
  bool AssignEdges(size_t edge_idx, std::vector<EdgeId>* chosen) {
    if (edge_idx == pattern_.edges.size()) return true;
    const EdgePattern& ep = pattern_.edges[edge_idx];
    const VertexId s = binding_[var_index_.at(ep.src_var)];
    const VertexId d = binding_[var_index_.at(ep.dst_var)];
    auto try_edge = [&](EdgeId eid, VertexId from, VertexId to) -> bool {
      const Edge& e = **graph_.GetEdge(eid);
      if (e.src != from || e.dst != to) return false;
      if (!ep.label.empty() && e.label != ep.label) return false;
      for (const PropertyPredicate& pred : ep.predicates) {
        if (!pred.Matches(e.properties)) return false;
      }
      if (std::find(chosen->begin(), chosen->end(), eid) != chosen->end()) {
        return false;
      }
      chosen->push_back(eid);
      if (AssignEdges(edge_idx + 1, chosen)) return true;
      chosen->pop_back();
      return false;
    };
    if (ep.direction == Direction::kOut || ep.direction == Direction::kAny) {
      for (EdgeId eid : graph_.OutEdges(s)) {
        if (try_edge(eid, s, d)) return true;
      }
    }
    if (ep.direction == Direction::kIn || ep.direction == Direction::kAny) {
      for (EdgeId eid : graph_.OutEdges(d)) {
        if (try_edge(eid, d, s)) return true;
      }
    }
    return false;
  }

  void Extend(size_t depth) {
    if (!interrupt_.ok()) return;
    if (options_.limit != 0 && out_->size() >= options_.limit) return;
    if (depth == order_.size()) {
      std::vector<EdgeId> chosen;
      if (!AssignEdges(0, &chosen)) return;
      PatternMatch match;
      for (const auto& [var, idx] : var_index_) {
        match.vertices[var] = binding_[idx];
      }
      match.edges = std::move(chosen);
      out_->push_back(std::move(match));
      return;
    }
    const size_t idx = order_[depth];
    for (VertexId v : Candidates(idx)) {
      if (options_.context != nullptr) {
        interrupt_ = options_.context->Charge();
        if (!interrupt_.ok()) return;
      }
      if (options_.injective_vertices &&
          std::find(binding_.begin(), binding_.end(), v) != binding_.end()) {
        continue;
      }
      if (!VertexSatisfies(idx, v)) continue;
      binding_[idx] = v;
      Extend(depth + 1);
      binding_[idx] = kInvalidVertexId;
      if (!interrupt_.ok()) return;
      if (options_.limit != 0 && out_->size() >= options_.limit) return;
    }
  }

  const PropertyGraph& graph_;
  const Pattern& pattern_;
  const MatchOptions& options_;
  std::map<std::string, size_t> var_index_;
  std::vector<VertexId> binding_;
  std::vector<size_t> order_;
  std::vector<PatternMatch>* out_ = nullptr;
  /// First governance interruption hit by the search; OK while running.
  /// Once set, every Extend frame unwinds without touching the bindings.
  Status interrupt_;
};

}  // namespace

Result<std::vector<PatternMatch>> MatchPattern(const PropertyGraph& graph,
                                               const Pattern& pattern,
                                               const MatchOptions& options) {
  if (pattern.vertices.empty()) {
    return Status::InvalidArgument("pattern has no vertices");
  }
  std::vector<PatternMatch> out;
  Matcher matcher(graph, pattern, options);
  HYGRAPH_RETURN_IF_ERROR(matcher.Run(&out));
  return out;
}

}  // namespace hygraph::graph
