#include "storage/wal.h"

#include <cstring>

#include "common/crc32.h"
#include "obs/clock.h"

namespace hygraph::storage {

namespace {

constexpr size_t kHeaderSize = 8;  // u32 length + u32 crc

void PutU32(std::string* out, uint32_t v) {
  char bytes[4] = {static_cast<char>(v & 0xff),
                   static_cast<char>((v >> 8) & 0xff),
                   static_cast<char>((v >> 16) & 0xff),
                   static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

std::string EncodeWalFrame(const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame += payload;
  return frame;
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file,
                     obs::MetricsRegistry* metrics)
    : file_(std::move(file)),
      appends_(metrics->counter("wal.appends")),
      bytes_appended_(metrics->counter("wal.bytes_appended")),
      syncs_(metrics->counter("wal.syncs")),
      sync_nanos_(metrics->histogram("wal.sync_nanos")) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(
    Env* env, const std::string& path, obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) metrics = &obs::MetricsRegistry::Global();
  std::unique_ptr<WritableFile> file;
  HYGRAPH_RETURN_IF_ERROR(env->NewWritableFile(path, &file));
  // NOLINTNEXTLINE(hygraph-naked-new): private ctor, wrapped immediately.
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file), metrics));
}

Status WalWriter::Append(const std::string& payload, bool sync) {
  if (payload.size() > kWalMaxRecordSize) {
    return Status::InvalidArgument("WAL record exceeds maximum size");
  }
  const std::string frame = EncodeWalFrame(payload);
  HYGRAPH_RETURN_IF_ERROR(file_->Append(frame));
  bytes_written_ += frame.size();
  appends_->Increment();
  bytes_appended_->Add(frame.size());
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  // An fsync costs tens of microseconds at best; two clock reads around it
  // are noise, so sync latency is always recorded.
  const obs::Clock* clock = obs::SystemClock::Instance();
  const uint64_t start = clock->NowNanos();
  Status s = file_->Sync();
  sync_nanos_->Record(clock->NowNanos() - start);
  syncs_->Increment();
  return s;
}

Status WalWriter::Close() { return file_->Close(); }

Result<WalReadResult> ReadWal(Env* env, const std::string& path) {
  WalReadResult result;
  std::string data;
  Status read = env->ReadFileToString(path, &data);
  if (read.code() == StatusCode::kNotFound) return result;  // empty log
  if (!read.ok()) return read;

  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderSize) break;  // torn header
    const uint32_t length = GetU32(data.data() + pos);
    const uint32_t crc = GetU32(data.data() + pos + 4);
    if (length > kWalMaxRecordSize) break;             // corrupt length
    if (data.size() - pos - kHeaderSize < length) break;  // torn payload
    std::string payload = data.substr(pos + kHeaderSize, length);
    if (Crc32(payload) != crc) break;  // bit rot or torn rewrite
    result.records.push_back(std::move(payload));
    pos += kHeaderSize + length;
    result.valid_bytes = pos;
  }
  result.dropped_bytes = data.size() - result.valid_bytes;
  result.torn_tail = result.dropped_bytes > 0;
  return result;
}

Status TruncateWalToValidPrefix(Env* env, const std::string& path,
                                const WalReadResult& scan) {
  if (!scan.torn_tail) return Status::OK();
  return env->TruncateFile(path, scan.valid_bytes);
}

}  // namespace hygraph::storage
