#include "storage/fault_injection_env.h"

#include <utility>

namespace hygraph::storage {

namespace {

Status CrashedStatus() {
  return Status::IOError("injected fault: filesystem is down");
}

Status TransientStatus() {
  return Status::IOError("injected fault: transient I/O error");
}

}  // namespace

/// Write-through file that mirrors sizes into the env's FileState so the
/// env can later truncate back to the synced prefix.
class TrackedWritableFile final : public WritableFile {
 public:
  TrackedWritableFile(FaultInjectionEnv* env,
                      std::unique_ptr<WritableFile> base,
                      std::shared_ptr<FaultInjectionEnv::FileState> state)
      : env_(env), base_(std::move(base)), state_(std::move(state)) {}

  Status Append(const std::string& data) override {
    bool short_write = false;
    Status gate = env_->BeginOp(&short_write);
    if (!gate.ok()) {
      if (short_write && !data.empty()) {
        // The crash lands mid-write: a deterministic prefix reaches the
        // file (and stays un-synced), producing a torn tail.
        const std::string partial = data.substr(0, (data.size() + 1) / 2);
        if (base_->Append(partial).ok()) state_->size += partial.size();
      }
      return gate;
    }
    HYGRAPH_RETURN_IF_ERROR(base_->Append(data));
    state_->size += data.size();
    return Status::OK();
  }

  Status Sync() override {
    HYGRAPH_RETURN_IF_ERROR(env_->BeginOp());
    // Snapshot before the fsync: bytes appended while the sync is in
    // flight are not covered by it.
    const uint64_t covered = state_->size.load();
    HYGRAPH_RETURN_IF_ERROR(base_->Sync());
    state_->synced_size.store(covered);
    return Status::OK();
  }

  Status Close() override {
    // Closing flushes into the OS but does NOT sync: the bytes remain in
    // the un-synced window until an explicit Sync reached them.
    if (env_->crashed()) return CrashedStatus();
    return base_->Close();
  }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultInjectionEnv::FileState> state_;
};

Status FaultInjectionEnv::BeginOp(bool* short_write) {
  MutexLock lock(mu_);
  if (crashed_) return CrashedStatus();
  ++op_count_;
  if (armed_ && op_count_ > crash_after_) {
    crashed_ = true;
    if (short_write != nullptr) *short_write = true;
    return CrashedStatus();
  }
  // Transient modes come strictly after the terminal check: a scheduled
  // crash always wins its op, and the op counter advances identically
  // whether or not transient faults are armed, so PR 1 crash schedules
  // are unaffected. A transient failure has no side effect (no torn
  // write), matching an EINTR-style hiccup rather than power loss.
  if (transient_fail_next_ > 0) {
    --transient_fail_next_;
    ++transient_faults_;
    return TransientStatus();
  }
  if (transient_every_n_ > 0 && op_count_ % transient_every_n_ == 0) {
    ++transient_faults_;
    return TransientStatus();
  }
  if (transient_p_ > 0.0 && transient_rng_.has_value() &&
      transient_rng_->NextBernoulli(transient_p_)) {
    ++transient_faults_;
    return TransientStatus();
  }
  return Status::OK();
}

Status FaultInjectionEnv::DropUnsyncedData(UnsyncedLoss loss) {
  // mu_ is a leaf rank, so holding it across the base env's truncates is
  // safe — the base env takes no hygraph locks.
  MutexLock lock(mu_);
  for (auto& [path, state] : files_) {
    if (state->size <= state->synced_size) continue;
    uint64_t keep = state->synced_size.load();
    if (loss == UnsyncedLoss::kKeepPrefix) {
      // Half of the un-synced tail survives — rounded up so a torn record
      // is actually present, which is what the WAL reader must salvage.
      keep += (state->size.load() - keep + 1) / 2;
    }
    if (!base_->FileExists(path)) continue;
    HYGRAPH_RETURN_IF_ERROR(base_->TruncateFile(path, keep));
    state->size = keep;
    if (state->synced_size > keep) state->synced_size = keep;
  }
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          std::unique_ptr<WritableFile>* file) {
  HYGRAPH_RETURN_IF_ERROR(BeginOp());
  std::unique_ptr<WritableFile> base_file;
  HYGRAPH_RETURN_IF_ERROR(base_->NewWritableFile(path, &base_file));
  auto state = std::make_shared<FileState>();  // created == truncated
  {
    MutexLock lock(mu_);
    files_[path] = state;
  }
  *file = std::make_unique<TrackedWritableFile>(this, std::move(base_file),
                                                std::move(state));
  return Status::OK();
}

Status FaultInjectionEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  return base_->ReadFileToString(path, out);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  HYGRAPH_RETURN_IF_ERROR(BeginOp());
  HYGRAPH_RETURN_IF_ERROR(base_->RenameFile(from, to));
  MutexLock lock(mu_);
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;  // open handles keep writing the same state
    files_.erase(it);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  HYGRAPH_RETURN_IF_ERROR(BeginOp());
  HYGRAPH_RETURN_IF_ERROR(base_->RemoveFile(path));
  MutexLock lock(mu_);
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path, uint64_t size) {
  HYGRAPH_RETURN_IF_ERROR(BeginOp());
  HYGRAPH_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  MutexLock lock(mu_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (it->second->size > size) it->second->size = size;
    if (it->second->synced_size > size) it->second->synced_size = size;
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& path) {
  HYGRAPH_RETURN_IF_ERROR(BeginOp());
  return base_->CreateDirIfMissing(path);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* out) {
  return base_->GetChildren(dir, out);
}

}  // namespace hygraph::storage
