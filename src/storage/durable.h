#ifndef HYGRAPH_STORAGE_DURABLE_H_
#define HYGRAPH_STORAGE_DURABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"
#include "query/backend.h"
#include "storage/env.h"
#include "storage/retry.h"
#include "storage/segment/segment_store.h"
#include "storage/wal.h"

namespace hygraph::storage {

/// Storage tiering: spill sealed chunks to a disk-backed cold tier at
/// checkpoint time, so snapshots (and therefore recovery) scale with the
/// HOT data only. Requires a backend whose series are chunk-organized
/// (series_hypertable() != nullptr — the polyglot store); on any other
/// backend the options are ignored and checkpoints stay full-state.
struct TieringOptions {
  bool enabled = false;
  /// Budget of the cold tier's in-RAM chunk cache (see SegmentStore).
  size_t cache_budget_bytes = 64u << 20;
};

/// Tuning knobs for a DurableStore.
struct DurableOptions {
  /// fsync the WAL after every logged mutation. With it, an OK status means
  /// the mutation survives any crash; without it, mutations are only
  /// durable up to the last SyncWal()/Checkpoint() (group commit — see
  /// bench_recovery for the throughput gap this buys).
  bool sync_wal = true;

  /// Automatically checkpoint after this many logged records (0 = only
  /// explicit Checkpoint() calls). Auto-checkpoint failures are reported
  /// through background_error(), not through the triggering mutation,
  /// whose WAL record is already durable.
  size_t checkpoint_every = 0;

  /// Backoff schedule for retrying transient WAL-append and checkpoint-
  /// write failures (kIOError). max_attempts = 1 disables retrying.
  RetryOptions retry;

  /// Injectable backoff sleep for tests: record the delay or advance an
  /// obs::ManualClock instead of stalling the process. Null = real sleep
  /// (RetryPolicy's default).
  RetryPolicy::SleepFn retry_sleep;

  /// Cold-tier storage tiering (DESIGN.md §15).
  TieringOptions tiering;
};

/// What Open() found and did while recovering a directory.
struct RecoveryStats {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;         ///< last sequence covered by it
  size_t wal_records_salvaged = 0;   ///< intact records found in the log
  size_t wal_records_skipped = 0;    ///< already covered by the snapshot
  size_t wal_records_replayed = 0;   ///< applied onto the snapshot state
  size_t wal_replay_failures = 0;    ///< re-applications that failed (these
                                     ///< failed identically when first logged)
  uint64_t wal_bytes_dropped = 0;    ///< torn tail truncated away
  bool wal_torn_tail = false;
  size_t cold_chunks_adopted = 0;    ///< catalogued cold chunks re-bound
                                     ///< without touching their bytes
};

/// Durability wrapper for either storage architecture of Figure 1: wraps
/// any QueryBackend (AllInGraphStore, PolyglotStore) and makes its state
/// survive crashes with the classic snapshot + write-ahead-log protocol.
///
///   * Every mutation routed through this class is first appended to a
///     CRC-framed WAL (fsynced per record under DurableOptions::sync_wal),
///     then applied to the wrapped backend.
///   * Checkpoint() serializes the full backend state through
///     core::Serialize (checksum trailer included) to `snapshot.tmp`,
///     fsyncs, atomically renames to `snapshot-<seq>.hyg`, then starts a
///     fresh WAL epoch. A crash at any point leaves either the old or the
///     new snapshot installed, never a torn one.
///   * Open() = load newest snapshot + replay the WAL tail, tolerating a
///     torn final record (truncate-and-recover, reported in RecoveryStats).
///
/// Topology mutations must go through the logged AddVertex/AddEdge/
/// Set*Property/Remove* methods to be durable; `mutable_topology()` remains
/// available as a bulk-load escape hatch whose effects only become durable
/// at the next Checkpoint(). Checkpointing requires dense ids (the
/// core::Serialize precondition); after removals the store stays recoverable
/// through WAL replay alone until ids are dense again.
///
/// Fault tolerance: a transient kIOError on the WAL append/sync path is
/// retried with capped exponential backoff (DurableOptions::retry). A
/// failed sync poisons the writer — fsyncgate semantics: the kernel may
/// have dropped the dirty pages, so re-issuing the sync could falsely
/// acknowledge — therefore every retry abandons the old handle and
/// rebuilds a fresh WAL epoch from the valid on-disk prefix before
/// re-appending. When retries are exhausted the store enters DEGRADED
/// READ-ONLY mode: reads and BeginSnapshot() keep serving, every mutation
/// fails fast with kUnavailable, and the "durable.degraded" gauge flips to
/// 1. TryExitDegraded() leaves the state via a full checkpoint (the
/// in-memory state can be ahead of the poisoned WAL, so only a complete
/// snapshot restores the durability contract).
///
/// Thread safety (DESIGN.md §10): every logged mutation, Checkpoint() and
/// SyncWal() serialize on one append mutex, so concurrent writers produce a
/// totally ordered, gap-free WAL (group-commit friendly: with !sync_wal,
/// any thread's SyncWal() makes all earlier appends durable at once).
/// Reads and BeginSnapshot() bypass the append mutex entirely and rely on
/// the wrapped backend's own guards. Open() must complete before the store
/// is shared between threads.
class DurableStore final : public query::QueryBackend {
 public:
  /// Does not touch the filesystem; call Open() before use.
  DurableStore(Env* env, std::string dir,
               std::unique_ptr<query::QueryBackend> inner,
               DurableOptions options = {});
  ~DurableStore() override;

  /// Recovers whatever `dir` holds (possibly nothing) into the wrapped
  /// backend — which must still be empty — and opens a fresh WAL epoch.
  Status Open();

  const RecoveryStats& recovery() const { return recovery_; }

  /// The durability layer's own registry: "durable.*" counters, the
  /// "durable.checkpoint_nanos" histogram, "recovery.*" gauges mirroring
  /// RecoveryStats after Open(), and the WAL's "wal.*" instruments. The
  /// wrapped backend keeps its own registry (merge snapshots to combine).
  obs::MetricsRegistry* metrics() const override { return metrics_.get(); }
  /// Query-time work happens in the wrapped backend.
  query::BackendWork Work() const override { return inner_->Work(); }

  query::QueryBackend* inner() { return inner_.get(); }
  const query::QueryBackend* inner() const { return inner_.get(); }
  /// The cold tier, when tiering is enabled on a chunk-organized backend
  /// (cache stats for tests/benches); nullptr otherwise.
  SegmentStore* cold_tier() { return cold_tier_.get(); }
  /// Next WAL sequence number (exposed for tests). Analysis off: quiescent
  /// test accessor — callers read it with no writer running.
  uint64_t next_seq() const HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
    return next_seq_;
  }
  /// First error hit by an automatic background checkpoint, if any.
  /// Analysis off: quiescent test accessor, like next_seq().
  const Status& background_error() const HYGRAPH_NO_THREAD_SAFETY_ANALYSIS {
    return background_error_;
  }

  // -- logged topology mutations --------------------------------------------

  Result<graph::VertexId> AddVertex(std::vector<std::string> labels,
                                    graph::PropertyMap properties);
  Result<graph::EdgeId> AddEdge(graph::VertexId src, graph::VertexId dst,
                                std::string label,
                                graph::PropertyMap properties);
  Status SetVertexProperty(graph::VertexId v, const std::string& key,
                           Value value);
  Status SetEdgeProperty(graph::EdgeId e, const std::string& key, Value value);
  Status RemoveVertex(graph::VertexId v);
  Status RemoveEdge(graph::EdgeId e);

  // -- durability control ---------------------------------------------------

  /// Snapshot + WAL reset (see class comment).
  Status Checkpoint();
  /// Makes every logged record durable (group commit with !sync_wal).
  Status SyncWal();

  /// True once write-side retries were exhausted and the store flipped to
  /// degraded read-only mode (mutations fail fast with kUnavailable while
  /// reads keep serving). Mirrored by the "durable.degraded" gauge.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Attempts to leave degraded mode through a full checkpoint onto a
  /// fresh WAL epoch. No-op (OK) when not degraded. Fails — and the store
  /// stays degraded — if the checkpoint cannot complete, including the
  /// dense-id precondition every checkpoint has.
  Status TryExitDegraded();

  // -- QueryBackend ---------------------------------------------------------

  std::string name() const override;
  const graph::PropertyGraph& topology() const override;
  graph::PropertyGraph* mutable_topology() override;
  /// Unlogged topology mutation under the inner store's guard — a
  /// concurrency-safe bulk-load escape hatch; effects become durable at
  /// the next Checkpoint(), like mutable_topology().
  Status MutateTopology(
      const std::function<Status(graph::PropertyGraph*)>& fn) override;
  /// Pins the wrapped backend's read view; the WAL plays no part in reads.
  std::shared_ptr<const query::QueryBackend> BeginSnapshot() const override;
  Status AppendVertexSample(graph::VertexId v, const std::string& key,
                            Timestamp t, double value) override;
  Status AppendEdgeSample(graph::EdgeId e, const std::string& key, Timestamp t,
                          double value) override;
  Result<ts::Series> VertexSeriesRange(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval) const override;
  Result<ts::Series> EdgeSeriesRange(graph::EdgeId e, const std::string& key,
                                     const Interval& interval) const override;
  Result<double> VertexSeriesAggregate(graph::VertexId v,
                                       const std::string& key,
                                       const Interval& interval,
                                       ts::AggKind kind) const override;
  Result<double> EdgeSeriesAggregate(graph::EdgeId e, const std::string& key,
                                     const Interval& interval,
                                     ts::AggKind kind) const override;
  Result<ts::Series> VertexSeriesWindowAggregate(
      graph::VertexId v, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override;
  Result<ts::Series> EdgeSeriesWindowAggregate(
      graph::EdgeId e, const std::string& key, const Interval& interval,
      Duration width, ts::AggKind kind) const override;
  std::vector<std::string> VertexSeriesKeys(graph::VertexId v) const override;
  std::vector<std::string> EdgeSeriesKeys(graph::EdgeId e) const override;
  bool SeriesEmbeddedInTopology() const override;
  ts::HypertableStore* series_hypertable() override {
    return inner_->series_hypertable();
  }
  Result<SeriesId> EnsureSeries(bool vertex, uint64_t entity,
                                const std::string& key) override {
    return inner_->EnsureSeries(vertex, entity, key);
  }

 private:
  Status RequireOpen() const;
  /// RequireOpen plus the write-side gates: degraded mode and a live WAL.
  Status RequireWritable() const HYGRAPH_REQUIRES(append_mu_);
  /// Flips into degraded read-only mode.
  void EnterDegraded(const Status& cause) HYGRAPH_REQUIRES(append_mu_);
  /// One WAL-epoch rebuild: abandon the poisoned writer, rewrite the valid
  /// on-disk prefix to a fresh synced file, and append `record` unless the
  /// scan shows it already persisted (a sync-only failure would otherwise
  /// duplicate it, which replay rejects as corruption).
  Status RebuildWalAndAppend(const std::string& record)
      HYGRAPH_REQUIRES(append_mu_);
  /// Checkpoint body with latency recording.
  Status TimedCheckpoint() HYGRAPH_REQUIRES(append_mu_);
  Status CheckpointImpl() HYGRAPH_REQUIRES(append_mu_);
  Status Log(const std::string& body) HYGRAPH_REQUIRES(append_mu_);
  Status ApplyRecord(const std::string& record);
  void MaybeAutoCheckpoint() HYGRAPH_REQUIRES(append_mu_);
  std::string WalPath() const { return dir_ + "/wal.log"; }
  std::string SnapshotPath(uint64_t seq) const {
    return dir_ + "/snapshot-" + std::to_string(seq) + ".hyg";
  }

  Env* env_;
  std::string dir_;
  std::unique_ptr<query::QueryBackend> inner_;
  DurableOptions options_;
  /// Created by Open() when tiering is enabled and the inner backend is
  /// chunk-organized; attached to the hypertable for the store's lifetime.
  /// Torn down before inner_ (declared after it) — safe because no query
  /// runs during destruction and chunk teardown never calls the tier.
  std::unique_ptr<SegmentStore> cold_tier_;
  // Heap-held so the cached instrument pointers stay valid; declared before
  // wal_ so the registry outlives the writer that registers into it.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* records_logged_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Histogram* checkpoint_nanos_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* wal_rebuilds_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  RetryPolicy retry_policy_;
  /// Serializes Log()+apply, Checkpoint and SyncWal's writer lookup. Top
  /// of the store's lock hierarchy (rank kDurableAppend): held while
  /// calling into the inner store, never the other way around.
  Mutex append_mu_;
  /// Serializes the WAL fsync against writer ROTATION, not against
  /// appends: SyncWal acquires append_mu_ -> wal_sync_mu_, then releases
  /// append_mu_ and fsyncs holding only this lock, so concurrent mutators
  /// keep appending while a group-commit leader waits on the disk.
  /// Rotation sites (CheckpointImpl, RebuildWalAndAppend) take it while
  /// already holding append_mu_ — the same acquisition order — to drain
  /// any in-flight fsync before closing the old writer.
  mutable Mutex wal_sync_mu_{LockRank::kDurableWalSync};
  /// The WAL itself carries no lock; it is guarded externally by this
  /// annotation (the writer is only ever touched on the append path).
  /// Exception: SyncWal calls Sync() through a raw pointer pinned under
  /// wal_sync_mu_ — safe against rotation per the order above, and safe
  /// against concurrent Append because WritableFile implementations must
  /// tolerate Sync racing Append (see storage/env.h).
  std::unique_ptr<WalWriter> wal_ HYGRAPH_GUARDED_BY(append_mu_);
  /// Written once by Open() (under the mutex) before the store is shared;
  /// read lock-free afterwards. Same story for recovery_.
  bool opened_ = false;
  uint64_t next_seq_ HYGRAPH_GUARDED_BY(append_mu_) = 1;
  size_t records_since_checkpoint_ HYGRAPH_GUARDED_BY(append_mu_) = 0;
  RecoveryStats recovery_;
  Status background_error_ HYGRAPH_GUARDED_BY(append_mu_);
  /// Atomic so degraded() is readable without the append mutex; flipped
  /// only with append_mu_ held.
  std::atomic<bool> degraded_{false};
  /// The kUnavailable mutations see while degraded (carries the original
  /// cause).
  Status degraded_error_ HYGRAPH_GUARDED_BY(append_mu_);
};

/// Serializes a backend's full logical state (topology + every series)
/// through the core::Serialize text format, series attached as pooled
/// series properties named "__durable_series__<key>" unless the backend
/// embeds samples in the topology. Requires dense ids. Exposed for tests
/// and for state comparison (the text is canonical).
Result<std::string> BuildSnapshotText(const query::QueryBackend& backend);

/// Rebuilds backend state from BuildSnapshotText output. The backend must
/// be freshly constructed (empty). Requires the CHECKSUM trailer: a
/// snapshot that lost it (truncation) is rejected as kCorruption.
Status RestoreFromSnapshotText(const std::string& text,
                               query::QueryBackend* backend);

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_DURABLE_H_
