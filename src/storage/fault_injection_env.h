#ifndef HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_
#define HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace hygraph::storage {

/// An Env wrapper that simulates crashes and media faults, in the style of
/// RocksDB's FaultInjectionTestEnv. It forwards every call to a base Env
/// while
///
///   * counting mutating filesystem operations (append, sync, rename,
///     remove, create, truncate);
///   * optionally "crashing" after a configured number of those operations
///     — the operation at the crash point fails with kIOError (an Append
///     may first perform a deterministic short write, modelling a torn
///     page), and every later mutating operation fails too, as if the
///     process had died;
///   * tracking, per file, how many bytes have been made durable by Sync,
///     so that DropUnsyncedData() can roll every file back to its synced
///     prefix — the state a real filesystem may present after power loss.
///
/// Test protocol: run a workload until it hits the injected crash, call
/// DropUnsyncedData(), Revive(), then recover and compare against an
/// oracle of acknowledged writes.
class FaultInjectionEnv final : public Env {
 public:
  /// What survives of un-synced bytes when the "power" goes out.
  enum class UnsyncedLoss {
    kDropAll,      ///< un-synced bytes all vanish (fsync barrier honored)
    kKeepPrefix,   ///< a deterministic prefix survives → torn tail
  };

  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // -- fault control ---------------------------------------------------------

  /// Crashes once `ops` more mutating operations have been attempted
  /// (the (ops+1)-th fails). Pass no limit by never calling this.
  void SetCrashAfter(uint64_t ops) {
    crash_after_ = op_count_ + ops;
    armed_ = true;
  }
  /// Immediately enters the crashed state.
  void Crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }
  /// Mutating operations attempted so far (failed ones included).
  uint64_t op_count() const { return op_count_; }

  /// Rolls every tracked file back to its synced prefix (see UnsyncedLoss).
  /// Call while "crashed", before Revive(); uses the base env directly.
  Status DropUnsyncedData(UnsyncedLoss loss = UnsyncedLoss::kDropAll);

  /// Clears the crashed state — the "process restart" before recovery.
  void Revive() {
    crashed_ = false;
    armed_ = false;
  }

  // -- Env -------------------------------------------------------------------

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override;

 private:
  friend class TrackedWritableFile;

  struct FileState {
    uint64_t size = 0;         ///< bytes appended so far
    uint64_t synced_size = 0;  ///< bytes guaranteed durable
  };

  /// Returns OK if the operation may proceed; advances the op counter and
  /// flips into the crashed state at the configured point. When the crash
  /// lands on this very op, `*short_write` (if non-null) is set so an
  /// Append can persist a torn prefix before failing.
  Status BeginOp(bool* short_write = nullptr);

  Env* base_;
  bool armed_ = false;
  bool crashed_ = false;
  uint64_t op_count_ = 0;
  uint64_t crash_after_ = 0;
  std::map<std::string, std::shared_ptr<FileState>> files_;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_
