#ifndef HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_
#define HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sync.h"
#include "storage/env.h"

namespace hygraph::storage {

/// An Env wrapper that simulates crashes and media faults, in the style of
/// RocksDB's FaultInjectionTestEnv. It forwards every call to a base Env
/// while
///
///   * counting mutating filesystem operations (append, sync, rename,
///     remove, create, truncate);
///   * optionally "crashing" after a configured number of those operations
///     — the operation at the crash point fails with kIOError (an Append
///     may first perform a deterministic short write, modelling a torn
///     page), and every later mutating operation fails too, as if the
///     process had died;
///   * tracking, per file, how many bytes have been made durable by Sync,
///     so that DropUnsyncedData() can roll every file back to its synced
///     prefix — the state a real filesystem may present after power loss.
///
/// Two fault families, explicitly distinct:
///
///   TERMINAL (SetCrashAfter / Crash): the "device died / power lost"
///   model. Once entered, every mutating operation fails until Revive();
///   nothing written after the crash point is observed by the base env
///   (beyond the deterministic torn prefix). This is what the crash-matrix
///   recovery tests exercise.
///
///   TRANSIENT (SetTransientFailNext / SetTransientEveryN /
///   SetTransientProbability): the "I/O hiccup" model — a mutating
///   operation fails with kIOError but performs NO side effect, and the
///   env immediately heals, so a retry of the same operation can succeed.
///   This is what RetryPolicy and DurableStore's degraded-mode logic are
///   tested against. Transient faults never fire while crashed, and a
///   terminal crash scheduled for an op takes precedence over any
///   transient mode, so arming transient faults cannot shift existing
///   crash schedules.
///
/// Test protocol for terminal faults: run a workload until it hits the
/// injected crash, call DropUnsyncedData(), Revive(), then recover and
/// compare against an oracle of acknowledged writes. Transient faults need
/// no revive: assert on transient_faults() and the caller's retry
/// behavior.
class FaultInjectionEnv final : public Env {
 public:
  /// What survives of un-synced bytes when the "power" goes out.
  enum class UnsyncedLoss {
    kDropAll,      ///< un-synced bytes all vanish (fsync barrier honored)
    kKeepPrefix,   ///< a deterministic prefix survives → torn tail
  };

  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // -- fault control ---------------------------------------------------------

  /// Crashes once `ops` more mutating operations have been attempted
  /// (the (ops+1)-th fails). Pass no limit by never calling this.
  void SetCrashAfter(uint64_t ops) {
    MutexLock lock(mu_);
    crash_after_ = op_count_ + ops;
    armed_ = true;
  }
  /// Immediately enters the crashed state.
  void Crash() {
    MutexLock lock(mu_);
    crashed_ = true;
  }
  bool crashed() const {
    MutexLock lock(mu_);
    return crashed_;
  }
  /// Mutating operations attempted so far (failed ones included).
  uint64_t op_count() const {
    MutexLock lock(mu_);
    return op_count_;
  }

  /// Rolls every tracked file back to its synced prefix (see UnsyncedLoss).
  /// Call while "crashed", before Revive(); uses the base env directly.
  Status DropUnsyncedData(UnsyncedLoss loss = UnsyncedLoss::kDropAll);

  /// Clears the crashed state — the "process restart" before recovery.
  void Revive() {
    MutexLock lock(mu_);
    crashed_ = false;
    armed_ = false;
  }

  // -- transient fault control (error once, then heal) -----------------------

  /// The next `count` mutating operations fail with kIOError and no side
  /// effect; the env then heals automatically.
  void SetTransientFailNext(uint64_t count) {
    MutexLock lock(mu_);
    transient_fail_next_ = count;
  }
  /// Every n-th mutating operation (by op_count) fails transiently.
  /// 0 disables.
  void SetTransientEveryN(uint64_t n) {
    MutexLock lock(mu_);
    transient_every_n_ = n;
  }
  /// Each mutating operation fails transiently with probability `p`,
  /// drawn from a deterministic seeded stream. p <= 0 disables.
  void SetTransientProbability(double p, uint64_t seed) {
    MutexLock lock(mu_);
    transient_p_ = p;
    transient_rng_.emplace(seed);
  }
  /// Disables all transient fault modes.
  void ClearTransientFaults() {
    MutexLock lock(mu_);
    transient_fail_next_ = 0;
    transient_every_n_ = 0;
    transient_p_ = 0.0;
  }
  /// Transient faults injected so far.
  uint64_t transient_faults() const {
    MutexLock lock(mu_);
    return transient_faults_;
  }

  // -- Env -------------------------------------------------------------------

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* file) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirIfMissing(const std::string& path) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* out) override;

 private:
  friend class TrackedWritableFile;

  /// Per-file durability bookkeeping. Shared with the TrackedWritableFile
  /// that writes it; not annotated (nested value type) — each file handle
  /// has one writer, matching the base env's WritableFile contract.
  struct FileState {
    // Atomic because a WAL fsync may run concurrently with appends (see
    // DurableStore::SyncWal): Sync snapshots size before the fsync and
    // publishes synced_size after it, while Append keeps advancing size.
    std::atomic<uint64_t> size{0};         ///< bytes appended so far
    std::atomic<uint64_t> synced_size{0};  ///< bytes guaranteed durable
  };

  /// Returns OK if the operation may proceed; advances the op counter and
  /// flips into the crashed state at the configured point. When the crash
  /// lands on this very op, `*short_write` (if non-null) is set so an
  /// Append can persist a torn prefix before failing. Takes mu_ itself.
  Status BeginOp(bool* short_write = nullptr);

  Env* base_;
  /// Guards all fault bookkeeping below (rank kEnvState, a leaf):
  /// DurableStore drives this env with its append mutex held, so the env's
  /// own lock must rank at the very bottom of the hierarchy. Uninstrumented
  /// — the env predates any registry.
  mutable Mutex mu_{LockRank::kEnvState};
  bool armed_ HYGRAPH_GUARDED_BY(mu_) = false;
  bool crashed_ HYGRAPH_GUARDED_BY(mu_) = false;
  uint64_t op_count_ HYGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t crash_after_ HYGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t transient_fail_next_ HYGRAPH_GUARDED_BY(mu_) = 0;
  uint64_t transient_every_n_ HYGRAPH_GUARDED_BY(mu_) = 0;
  double transient_p_ HYGRAPH_GUARDED_BY(mu_) = 0.0;
  std::optional<Rng> transient_rng_ HYGRAPH_GUARDED_BY(mu_);
  uint64_t transient_faults_ HYGRAPH_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::shared_ptr<FileState>> files_
      HYGRAPH_GUARDED_BY(mu_);
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_FAULT_INJECTION_ENV_H_
