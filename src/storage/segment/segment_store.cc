#include "storage/segment/segment_store.h"

#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "core/serialize.h"
#include "storage/wal.h"

namespace hygraph::storage {

namespace {

constexpr size_t kFrameHeaderSize = 8;  // [u32 len][u32 crc]
constexpr char kCatalogMagic[] = "hygraph-coldcat v1";
/// Hard ceiling on catalog entries: far above any real store (it would
/// mean > kMaxCatalogEntries spilled chunks), low enough that a hostile
/// count field cannot drive a giant reserve().
constexpr uint64_t kMaxCatalogEntries = 1u << 22;

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }
double BitsDouble(uint64_t bits) { return std::bit_cast<double>(bits); }

void AppendHex64(std::string* out, uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out->append(buf);
}

/// strtoull/strtoll wrappers that insist the whole token parses — partial
/// parses (e.g. "12x") are how corrupt fields sneak through.
bool ParseU64(const std::string& tok, int base, uint64_t* out) {
  if (tok.empty()) return false;
  if (tok[0] == '-' || tok[0] == '+') return false;
  errno = 0;
  char* end = nullptr;
  const uint64_t v = std::strtoull(tok.c_str(), &end, base);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool ParseI64(const std::string& tok, int64_t* out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  *out = v;
  return true;
}

bool ParseDoubleBits(const std::string& tok, double* out) {
  uint64_t bits = 0;
  if (!ParseU64(tok, 16, &bits)) return false;
  *out = BitsDouble(bits);
  return true;
}

}  // namespace

std::string EncodeColdCatalog(const std::vector<ColdCatalogEntry>& entries) {
  std::string body;
  body += kCatalogMagic;
  body += "\nchunks " + std::to_string(entries.size()) + "\n";
  for (const ColdCatalogEntry& e : entries) {
    body += "chunk " + core::EncodeField(e.series) + " " +
            std::to_string(e.chunk_start) + " " + core::EncodeField(e.file) +
            " " + std::to_string(e.offset) + " " + std::to_string(e.length) +
            " " + std::to_string(e.meta.count) + " " +
            std::to_string(e.meta.min_t) + " " + std::to_string(e.meta.max_t) +
            " ";
    AppendHex64(&body, DoubleBits(e.meta.min_v));
    body += " ";
    AppendHex64(&body, DoubleBits(e.meta.max_v));
    body += e.meta.all_finite ? " 1 " : " 0 ";
    body += std::to_string(e.meta.agg.count) + " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.sum));
    body += " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.sum_sq));
    body += " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.min));
    body += " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.max));
    body += " " + std::to_string(e.meta.agg.first.t) + " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.first.value));
    body += " " + std::to_string(e.meta.agg.last.t) + " ";
    AppendHex64(&body, DoubleBits(e.meta.agg.last.value));
    body += "\n";
  }
  std::string out = body;
  char crc[9];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(body));
  out += "crc ";
  out += crc;
  out += "\n";
  return out;
}

Result<std::vector<ColdCatalogEntry>> ParseColdCatalog(std::string_view text) {
  // Split off the CRC trailer first: the last non-empty line must be
  // "crc <8 hex>", and the CRC covers everything before that line.
  const size_t trailer_pos = text.rfind("crc ");
  if (trailer_pos == std::string_view::npos ||
      (trailer_pos != 0 && text[trailer_pos - 1] != '\n')) {
    return Status::Corruption("cold catalog: missing crc trailer");
  }
  std::string_view trailer = text.substr(trailer_pos);
  std::string_view body = text.substr(0, trailer_pos);
  {
    std::istringstream in{std::string(trailer)};
    std::string word, hex, extra;
    in >> word >> hex;
    if (word != "crc" || hex.size() != 8 || (in >> extra)) {
      return Status::Corruption("cold catalog: malformed crc trailer");
    }
    uint64_t want = 0;
    if (!ParseU64(hex, 16, &want)) {
      return Status::Corruption("cold catalog: malformed crc trailer");
    }
    if (static_cast<uint32_t>(want) != Crc32(body)) {
      return Status::Corruption("cold catalog: checksum mismatch");
    }
  }

  std::istringstream in{std::string(body)};
  std::string line;
  if (!std::getline(in, line) || line != kCatalogMagic) {
    return Status::Corruption("cold catalog: bad magic");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("cold catalog: missing chunk count");
  }
  uint64_t count = 0;
  {
    std::istringstream hdr{line};
    std::string word, tok, extra;
    hdr >> word >> tok;
    if (word != "chunks" || !ParseU64(tok, 10, &count) || (hdr >> extra)) {
      return Status::Corruption("cold catalog: malformed chunk count");
    }
  }
  if (count > kMaxCatalogEntries) {
    return Status::Corruption("cold catalog: implausible chunk count " +
                              std::to_string(count));
  }
  std::vector<ColdCatalogEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("cold catalog: truncated at entry " +
                                std::to_string(i));
    }
    std::istringstream row{line};
    std::string word, series_tok, file_tok;
    std::string t[18];
    row >> word >> series_tok;
    ColdCatalogEntry e;
    int64_t i64 = 0;
    uint64_t u64 = 0;
    if (word != "chunk" || series_tok.empty()) {
      return Status::Corruption("cold catalog: malformed entry " +
                                std::to_string(i));
    }
    auto series = core::DecodeField(series_tok);
    if (!series.ok() || series->empty()) {
      return Status::Corruption("cold catalog: bad series in entry " +
                                std::to_string(i));
    }
    e.series = *series;
    row >> t[0] >> file_tok;
    for (int k = 1; k < 18; ++k) row >> t[k];
    std::string extra;
    if (row.fail() || (row >> extra)) {
      return Status::Corruption("cold catalog: malformed entry " +
                                std::to_string(i));
    }
    auto file = core::DecodeField(file_tok);
    if (!file.ok() || file->empty() ||
        file->find('/') != std::string::npos) {  // stays inside the dir
      return Status::Corruption("cold catalog: bad file in entry " +
                                std::to_string(i));
    }
    e.file = *file;
    const bool fields_ok =
        ParseI64(t[0], &i64) && (e.chunk_start = i64, true) &&
        ParseU64(t[1], 10, &u64) && (e.offset = u64, true) &&
        ParseU64(t[2], 10, &u64) && u64 <= kWalMaxRecordSize &&
        (e.length = static_cast<uint32_t>(u64), true) &&
        ParseU64(t[3], 10, &u64) && (e.meta.count = u64, true) &&
        ParseI64(t[4], &i64) && (e.meta.min_t = i64, true) &&
        ParseI64(t[5], &i64) && (e.meta.max_t = i64, true) &&
        ParseDoubleBits(t[6], &e.meta.min_v) &&
        ParseDoubleBits(t[7], &e.meta.max_v) &&
        (t[8] == "0" || t[8] == "1") && (e.meta.all_finite = t[8] == "1", true) &&
        ParseU64(t[9], 10, &u64) && (e.meta.agg.count = u64, true) &&
        ParseDoubleBits(t[10], &e.meta.agg.sum) &&
        ParseDoubleBits(t[11], &e.meta.agg.sum_sq) &&
        ParseDoubleBits(t[12], &e.meta.agg.min) &&
        ParseDoubleBits(t[13], &e.meta.agg.max) &&
        ParseI64(t[14], &i64) && (e.meta.agg.first.t = i64, true) &&
        ParseDoubleBits(t[15], &e.meta.agg.first.value) &&
        ParseI64(t[16], &i64) && (e.meta.agg.last.t = i64, true) &&
        ParseDoubleBits(t[17], &e.meta.agg.last.value);
    if (!fields_ok) {
      return Status::Corruption("cold catalog: malformed entry " +
                                std::to_string(i));
    }
    if (e.offset < kFrameHeaderSize) {
      return Status::Corruption("cold catalog: offset inside frame header");
    }
    e.meta.encoded_size = e.length;
    entries.push_back(std::move(e));
  }
  std::string leftover;
  if (in >> leftover) {
    return Status::Corruption("cold catalog: trailing data");
  }
  return entries;
}

SegmentStore::SegmentStore(const SegmentStoreOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {
  obs::MetricsRegistry& reg = options_.metrics != nullptr
                                  ? *options_.metrics
                                  : obs::MetricsRegistry::Global();
  m_.put_records = reg.counter("coldtier.put_records");
  m_.put_bytes = reg.counter("coldtier.put_bytes");
  m_.cache_hits = reg.counter("coldtier.cache_hits");
  m_.cache_misses = reg.counter("coldtier.cache_misses");
  m_.cache_evictions = reg.counter("coldtier.cache_evictions");
  m_.cache_bytes = reg.gauge("coldtier.cache_bytes");
}

SegmentStore::~SegmentStore() {
  MutexLock lock(mu_);
  for (auto& [series, writer] : writers_) {
    (void)series;
    if (writer.file != nullptr) (void)writer.file->Close();
  }
}

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const SegmentStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("segment store needs a directory");
  }
  auto store = std::unique_ptr<SegmentStore>(
      new SegmentStore(options));  // NOLINT(hygraph-naked-new): private ctor
  HYGRAPH_RETURN_IF_ERROR(store->env_->CreateDirIfMissing(options.dir));
  std::vector<std::string> children;
  HYGRAPH_RETURN_IF_ERROR(store->env_->GetChildren(options.dir, &children));
  uint64_t next = 0;
  for (const std::string& name : children) {
    uint64_t index = 0;
    if (std::sscanf(name.c_str(), "seg-%" PRIu64 ".seg", &index) == 1) {
      next = std::max(next, index + 1);
    }
  }
  MutexLock lock(store->mu_);
  store->next_file_index_ = next;
  return store;
}

std::string SegmentStore::PathFor(const std::string& file) const {
  return options_.dir + "/" + file;
}

Result<ts::ColdChunkId> SegmentStore::Put(const std::string& series_name,
                                          Timestamp chunk_start,
                                          const ts::ColdChunkMeta& meta,
                                          const std::string& encoded) {
  if (encoded.size() > kWalMaxRecordSize) {
    return Status::InvalidArgument("cold chunk larger than a WAL frame");
  }
  MutexLock lock(mu_);
  auto [it, created] = writers_.try_emplace(series_name);
  SeriesFile& writer = it->second;
  if (created) {
    // Fresh file per series per epoch: NewWritableFile truncates, so we
    // never reopen (and clobber) a previous epoch's segment. Old records
    // stay readable because Pin addresses them by their own file name.
    writer.name = "seg-" + std::to_string(next_file_index_++) + ".seg";
    Status open = env_->NewWritableFile(PathFor(writer.name), &writer.file);
    if (!open.ok()) {
      writers_.erase(it);
      return open;
    }
  }
  const std::string frame = EncodeWalFrame(encoded);
  Status append = writer.file->Append(frame);
  if (!append.ok()) return append;
  const uint64_t payload_offset = writer.written + kFrameHeaderSize;
  writer.written += frame.size();
  writer.dirty = true;

  const ts::ColdChunkId id = next_id_++;
  Record rec;
  rec.file = writer.name;
  rec.offset = payload_offset;
  rec.length = static_cast<uint32_t>(encoded.size());
  rec.series = series_name;
  rec.chunk_start = chunk_start;
  rec.meta = meta;
  rec.meta.encoded_size = encoded.size();
  records_.emplace(id, std::move(rec));
  m_.put_records->Increment();
  m_.put_bytes->Add(frame.size());
  // Write-through: the chunk was just resident (the spiller held its
  // sealed bytes), so the near-term scan probability is high.
  CacheInsert(id, std::make_shared<const std::string>(encoded));
  return id;
}

Result<std::shared_ptr<const std::string>> SegmentStore::Pin(
    ts::ColdChunkId id) const {
  std::string path;
  uint64_t offset = 0;
  uint32_t length = 0;
  {
    MutexLock lock(mu_);
    auto rit = records_.find(id);
    if (rit == records_.end()) {
      return Status::NotFound("no cold chunk with id " + std::to_string(id));
    }
    auto cit = cache_.find(id);
    if (cit != cache_.end()) {
      ++hits_;
      m_.cache_hits->Increment();
      CacheTouch(id);
      return cit->second.bytes;
    }
    ++misses_;
    m_.cache_misses->Increment();
    path = PathFor(rit->second.file);
    offset = rit->second.offset;
    length = rit->second.length;
  }
  // Disk read outside the lock: a miss never blocks concurrent hits.
  std::string frame;
  Status read = env_->ReadFileRange(path, offset - kFrameHeaderSize,
                                    static_cast<uint64_t>(length) +
                                        kFrameHeaderSize,
                                    &frame);
  if (!read.ok()) {
    return Status::Corruption("cold chunk " + std::to_string(id) +
                              " unreadable: " + read.ToString());
  }
  uint32_t stored_len = 0;
  uint32_t stored_crc = 0;
  std::memcpy(&stored_len, frame.data(), sizeof(stored_len));
  std::memcpy(&stored_crc, frame.data() + 4, sizeof(stored_crc));
  std::string payload = frame.substr(kFrameHeaderSize);
  if (stored_len != length || Crc32(payload) != stored_crc) {
    return Status::Corruption("cold chunk " + std::to_string(id) +
                              " failed its frame check");
  }
  auto bytes = std::make_shared<const std::string>(std::move(payload));
  MutexLock lock(mu_);
  auto cit = cache_.find(id);
  if (cit != cache_.end()) {
    // A racing miss populated the entry first; keep its bytes (they
    // verified against the same CRC) and just refresh recency.
    CacheTouch(id);
    return cit->second.bytes;
  }
  CacheInsert(id, bytes);
  return bytes;
}

void SegmentStore::Forget(ts::ColdChunkId id) {
  MutexLock lock(mu_);
  auto it = records_.find(id);
  if (it != records_.end()) it->second.live = false;
  // The record and its bytes stay pinnable: readers holding the handle
  // keep their snapshot, and recovery-before-next-checkpoint re-adopts
  // the on-disk record.
}

Status SegmentStore::SyncSegments() {
  MutexLock lock(mu_);
  for (auto& [series, writer] : writers_) {
    (void)series;
    if (!writer.dirty) continue;
    HYGRAPH_RETURN_IF_ERROR(writer.file->Sync());
    writer.dirty = false;
  }
  return Status::OK();
}

Status SegmentStore::WriteCatalog(uint64_t seq) {
  std::vector<ColdCatalogEntry> entries;
  {
    MutexLock lock(mu_);
    entries.reserve(records_.size());
    for (const auto& [id, rec] : records_) {
      if (!rec.live) continue;
      ColdCatalogEntry e;
      e.series = rec.series;
      e.chunk_start = rec.chunk_start;
      e.file = rec.file;
      e.offset = rec.offset;
      e.length = rec.length;
      e.meta = rec.meta;
      e.id = id;
      entries.push_back(std::move(e));
    }
  }
  const std::string text = EncodeColdCatalog(entries);
  const std::string final_path =
      options_.dir + "/catalog-" + std::to_string(seq) + ".cold";
  const std::string tmp_path = final_path + ".tmp";
  std::unique_ptr<WritableFile> file;
  HYGRAPH_RETURN_IF_ERROR(env_->NewWritableFile(tmp_path, &file));
  HYGRAPH_RETURN_IF_ERROR(file->Append(text));
  HYGRAPH_RETURN_IF_ERROR(file->Sync());
  HYGRAPH_RETURN_IF_ERROR(file->Close());
  return env_->RenameFile(tmp_path, final_path);
}

Result<std::vector<ColdCatalogEntry>> SegmentStore::LoadCatalog(uint64_t seq) {
  const std::string path =
      options_.dir + "/catalog-" + std::to_string(seq) + ".cold";
  std::string text;
  Status read = env_->ReadFileToString(path, &text);
  if (read.code() == StatusCode::kNotFound) {
    return std::vector<ColdCatalogEntry>{};  // pre-tiering checkpoint
  }
  HYGRAPH_RETURN_IF_ERROR(read);
  auto entries = ParseColdCatalog(text);
  if (!entries.ok()) return entries.status();
  MutexLock lock(mu_);
  for (ColdCatalogEntry& e : *entries) {
    const ts::ColdChunkId id = next_id_++;
    Record rec;
    rec.file = e.file;
    rec.offset = e.offset;
    rec.length = e.length;
    rec.series = e.series;
    rec.chunk_start = e.chunk_start;
    rec.meta = e.meta;
    records_.emplace(id, std::move(rec));
    e.id = id;
  }
  return entries;
}

Status SegmentStore::GcCatalogs(uint64_t keep_seq) {
  std::vector<std::string> children;
  HYGRAPH_RETURN_IF_ERROR(env_->GetChildren(options_.dir, &children));
  const std::string keep = "catalog-" + std::to_string(keep_seq) + ".cold";
  for (const std::string& name : children) {
    const bool is_catalog =
        name.rfind("catalog-", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".cold") == 0;
    const bool is_tmp =
        name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0;
    if ((is_catalog && name != keep) || is_tmp) {
      HYGRAPH_RETURN_IF_ERROR(env_->RemoveFile(options_.dir + "/" + name));
    }
  }
  return Status::OK();
}

SegmentStore::CacheStats SegmentStore::cache_stats() const {
  MutexLock lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.cached_bytes = cache_bytes_;
  for (const auto& [id, rec] : records_) {
    (void)id;
    if (rec.live) ++s.live_records;
  }
  return s;
}

void SegmentStore::CacheInsert(ts::ColdChunkId id,
                               std::shared_ptr<const std::string> bytes) const {
  cache_bytes_ += bytes->size();
  lru_.push_front(id);
  cache_.emplace(id, CacheEntry{std::move(bytes), lru_.begin()});
  while (cache_bytes_ > options_.cache_budget_bytes && !lru_.empty()) {
    const ts::ColdChunkId victim = lru_.back();
    auto it = cache_.find(victim);
    cache_bytes_ -= it->second.bytes->size();
    lru_.pop_back();
    cache_.erase(it);  // only the cache's ref drops; pinned readers keep theirs
    ++evictions_;
    m_.cache_evictions->Increment();
  }
  m_.cache_bytes->Set(static_cast<double>(cache_bytes_));
}

void SegmentStore::CacheTouch(ts::ColdChunkId id) const {
  auto it = cache_.find(id);
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  it->second.lru_pos = lru_.begin();
}

}  // namespace hygraph::storage
