#ifndef HYGRAPH_STORAGE_SEGMENT_SEGMENT_STORE_H_
#define HYGRAPH_STORAGE_SEGMENT_SEGMENT_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "ts/cold_tier.h"

namespace hygraph::storage {

/// One catalog line: where a spilled chunk lives and everything the
/// hypertable needs to adopt it without touching the bytes.
struct ColdCatalogEntry {
  std::string series;           ///< hypertable series name ("v12.temp")
  Timestamp chunk_start = 0;    ///< chunk slot (ChunkStartFor of its data)
  std::string file;             ///< segment file name, relative to the dir
  uint64_t offset = 0;          ///< payload offset inside the file
  uint32_t length = 0;          ///< payload length (== meta.encoded_size)
  ts::ColdChunkMeta meta;       ///< resident zone map + aggregate
  ts::ColdChunkId id = ts::kInvalidColdChunk;  ///< set by LoadCatalog
};

/// Serializes entries as a cold catalog: a versioned text header, one
/// "chunk" line per entry (doubles as u64 bit patterns, so reload is
/// bit-exact), and a CRC-32 trailer over everything above it.
std::string EncodeColdCatalog(const std::vector<ColdCatalogEntry>& entries);

/// Total decoder for untrusted catalog bytes (fuzzed): any malformed
/// header, field, count or trailer is kCorruption, never a crash or an
/// unbounded allocation. Entry `id`s are left unset.
Result<std::vector<ColdCatalogEntry>> ParseColdCatalog(std::string_view text);

struct SegmentStoreOptions {
  Env* env = nullptr;                ///< null -> Env::Default()
  std::string dir;                   ///< segment directory (created if missing)
  size_t cache_budget_bytes = 64u << 20;  ///< chunk cache budget
  obs::MetricsRegistry* metrics = nullptr;  ///< null -> process-global
};

/// The cold tier: sealed Gorilla chunks appended to per-series segment
/// files through the checksummed Env layer, fronted by a fixed-budget LRU
/// cache of decoded-frame payloads.
///
/// On-disk layout inside `dir`:
///   seg-<n>.seg        append-only chunk records, WAL framing
///                      ([u32 len][u32 crc][payload]); one file per series
///                      per process epoch, never rewritten
///   catalog-<seq>.cold the live-record catalog paired with snapshot
///                      <seq> (EncodeColdCatalog), written tmp+sync+rename
///
/// Durability protocol (DurableStore::Checkpoint, DESIGN.md §15): segment
/// appends happen at spill time, SyncSegments() makes them durable, then
/// WriteCatalog(seq) publishes exactly the live set — so any catalog on
/// disk only ever references synced bytes. Records dropped by Forget stay
/// on disk as unreferenced garbage until the file itself is obsolete
/// (no segment GC in v1; EXPERIMENTS.md quantifies the overhead).
///
/// Locking: one internal mutex at LockRank::kColdTier — acquirable under
/// a series shard lock (spill, lazy pins) and under durable.append_mu_
/// (checkpoint); only the env leaf sits below. Pin drops the lock for the
/// disk read, so cache hits never wait on a miss's I/O.
class SegmentStore final : public ts::ColdTier {
 public:
  /// Opens (or creates) the segment directory and scans it so fresh
  /// segment files never collide with a previous epoch's.
  static Result<std::unique_ptr<SegmentStore>> Open(
      const SegmentStoreOptions& options);

  ~SegmentStore() override;

  // --- ColdTier ---------------------------------------------------------
  Result<ts::ColdChunkId> Put(const std::string& series_name,
                              Timestamp chunk_start,
                              const ts::ColdChunkMeta& meta,
                              const std::string& encoded) override;
  Result<std::shared_ptr<const std::string>> Pin(
      ts::ColdChunkId id) const override;
  void Forget(ts::ColdChunkId id) override;

  // --- checkpoint integration ------------------------------------------
  /// Fsyncs every segment file with unsynced appends.
  Status SyncSegments();
  /// Writes catalog-<seq>.cold listing every live record (tmp+sync+rename,
  /// so a crash never leaves a half-written catalog under the final name).
  Status WriteCatalog(uint64_t seq);
  /// Reads catalog-<seq>.cold, registers each record as live and pinnable,
  /// and returns the entries with their assigned ids. A missing catalog is
  /// an empty tier (snapshots from before tiering), not an error.
  Result<std::vector<ColdCatalogEntry>> LoadCatalog(uint64_t seq);
  /// Removes every catalog except `keep_seq`'s, plus abandoned .tmp files.
  Status GcCatalogs(uint64_t keep_seq);

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t cached_bytes = 0;
    size_t live_records = 0;
  };
  CacheStats cache_stats() const;

  const std::string& dir() const { return options_.dir; }

 private:
  struct Record {
    std::string file;         // relative segment file name
    uint64_t offset = 0;      // payload offset (frame header skipped)
    uint32_t length = 0;
    bool live = true;         // false after Forget: still pinnable,
                              // omitted from the next catalog
    std::string series;
    Timestamp chunk_start = 0;
    ts::ColdChunkMeta meta;   // re-published by WriteCatalog
  };
  struct SeriesFile {
    std::string name;         // relative file name
    std::unique_ptr<WritableFile> file;
    uint64_t written = 0;     // bytes appended so far
    bool dirty = false;       // appends since the last Sync
  };
  struct CacheEntry {
    std::shared_ptr<const std::string> bytes;
    std::list<ts::ColdChunkId>::iterator lru_pos;
  };

  explicit SegmentStore(const SegmentStoreOptions& options);

  std::string PathFor(const std::string& file) const;
  /// Inserts into the cache and evicts LRU tails past the budget. The
  /// evicted entries only drop the cache's reference — readers holding the
  /// shared_ptr keep the bytes.
  void CacheInsert(ts::ColdChunkId id,
                   std::shared_ptr<const std::string> bytes) const
      HYGRAPH_REQUIRES(mu_);
  void CacheTouch(ts::ColdChunkId id) const HYGRAPH_REQUIRES(mu_);

  SegmentStoreOptions options_;
  Env* env_;

  struct Instruments {
    obs::Counter* put_records;
    obs::Counter* put_bytes;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* cache_evictions;
    obs::Gauge* cache_bytes;
  };
  Instruments m_{};

  mutable Mutex mu_{LockRank::kColdTier};
  uint64_t next_id_ HYGRAPH_GUARDED_BY(mu_) = 1;
  uint64_t next_file_index_ HYGRAPH_GUARDED_BY(mu_) = 0;
  std::unordered_map<ts::ColdChunkId, Record> records_ HYGRAPH_GUARDED_BY(mu_);
  std::unordered_map<std::string, SeriesFile> writers_ HYGRAPH_GUARDED_BY(mu_);
  // LRU cache of payload bytes, most-recent at the front.
  mutable std::unordered_map<ts::ColdChunkId, CacheEntry> cache_
      HYGRAPH_GUARDED_BY(mu_);
  mutable std::list<ts::ColdChunkId> lru_ HYGRAPH_GUARDED_BY(mu_);
  mutable size_t cache_bytes_ HYGRAPH_GUARDED_BY(mu_) = 0;
  mutable uint64_t hits_ HYGRAPH_GUARDED_BY(mu_) = 0;
  mutable uint64_t misses_ HYGRAPH_GUARDED_BY(mu_) = 0;
  mutable uint64_t evictions_ HYGRAPH_GUARDED_BY(mu_) = 0;
};

}  // namespace hygraph::storage

#endif  // HYGRAPH_STORAGE_SEGMENT_SEGMENT_STORE_H_
