#include "storage/durable.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/strings.h"
#include "core/convert.h"
#include "obs/clock.h"
#include "core/hygraph.h"
#include "core/serialize.h"
#include "ts/hypertable.h"
#include "ts/multiseries.h"

namespace hygraph::storage {

namespace {

// Pooled-series property name under which a snapshot stores the series of
// key <key> (see BuildSnapshotText).
constexpr char kSnapshotSeriesPrefix[] = "__durable_series__";

// Round-trippable double formatting (mirrors core/serialize.cc).
std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

// -- WAL record payload encoding ---------------------------------------------
//
// One text line per record: "<seq> <op> <operands...>", strings
// percent-encoded with core::EncodeField, values tagged like the
// serialization format (n, b:0/1, i:<int>, d:<double>, s:<string>).

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kBool:
      return value.AsBool() ? "b:1" : "b:0";
    case ValueType::kInt:
      return "i:" + std::to_string(value.AsInt());
    case ValueType::kDouble:
      return "d:" + FormatDouble(value.AsDouble());
    case ValueType::kString:
      return "s:" + core::EncodeField(value.AsString());
    case ValueType::kSeriesRef:
      break;  // not representable in a backend property; rejected upstream
  }
  return "n";
}

Result<Value> DecodeValue(const std::string& field) {
  if (field == "n") return Value();
  if (field.size() < 2 || field[1] != ':') {
    return Status::Corruption("malformed WAL value field '" + field + "'");
  }
  const std::string payload = field.substr(2);
  switch (field[0]) {
    case 'b':
      return Value(payload == "1");
    case 'i':
      return Value(
          static_cast<int64_t>(std::strtoll(payload.c_str(), nullptr, 10)));
    case 'd':
      return Value(std::strtod(payload.c_str(), nullptr));
    case 's': {
      auto decoded = core::DecodeField(payload);
      if (!decoded.ok()) return decoded.status();
      return Value(*decoded);
    }
    default:
      return Status::Corruption("unknown WAL value tag in '" + field + "'");
  }
}

std::string EncodeLabels(const std::vector<std::string>& labels) {
  std::string out = " L " + std::to_string(labels.size());
  for (const std::string& label : labels) out += " " + core::EncodeField(label);
  return out;
}

Result<std::string> EncodeProperties(const graph::PropertyMap& props) {
  std::string out = " P " + std::to_string(props.size());
  for (const auto& [key, value] : props) {
    if (value.is_series_ref()) {
      return Status::InvalidArgument(
          "backend properties cannot hold series references");
    }
    out += " " + core::EncodeField(key) + " " + EncodeValue(value);
  }
  return out;
}

// Token cursor over one WAL record.
class RecordCursor {
 public:
  explicit RecordCursor(const std::string& record) {
    for (const std::string& tok : Split(record, ' ')) {
      if (!tok.empty()) tokens_.push_back(tok);
    }
  }

  Result<std::string> Next() {
    if (pos_ >= tokens_.size()) {
      return Status::Corruption("WAL record ended unexpectedly");
    }
    return tokens_[pos_++];
  }
  Result<uint64_t> NextUint() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return static_cast<uint64_t>(std::strtoull(tok->c_str(), nullptr, 10));
  }
  Result<int64_t> NextInt() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return static_cast<int64_t>(std::strtoll(tok->c_str(), nullptr, 10));
  }
  Result<double> NextDouble() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return std::strtod(tok->c_str(), nullptr);
  }
  Result<std::string> NextDecoded() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return core::DecodeField(*tok);
  }
  Result<Value> NextValue() {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    return DecodeValue(*tok);
  }
  Status Expect(const std::string& literal) {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    if (*tok != literal) {
      return Status::Corruption("WAL record: expected '" + literal +
                                "', found '" + *tok + "'");
    }
    return Status::OK();
  }
  Result<std::vector<std::string>> NextLabels() {
    HYGRAPH_RETURN_IF_ERROR(Expect("L"));
    auto count = NextUint();
    if (!count.ok()) return count.status();
    std::vector<std::string> labels;
    for (uint64_t i = 0; i < *count; ++i) {
      auto label = NextDecoded();
      if (!label.ok()) return label.status();
      labels.push_back(std::move(*label));
    }
    return labels;
  }
  Result<graph::PropertyMap> NextProperties() {
    HYGRAPH_RETURN_IF_ERROR(Expect("P"));
    auto count = NextUint();
    if (!count.ok()) return count.status();
    graph::PropertyMap props;
    for (uint64_t i = 0; i < *count; ++i) {
      auto key = NextDecoded();
      if (!key.ok()) return key.status();
      auto value = NextValue();
      if (!value.ok()) return value.status();
      props[*key] = std::move(*value);
    }
    return props;
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

Status CheckDenseIds(const graph::PropertyGraph& graph) {
  const auto vertex_ids = graph.VertexIds();
  for (size_t i = 0; i < vertex_ids.size(); ++i) {
    if (vertex_ids[i] != i) {
      return Status::FailedPrecondition(
          "snapshot requires dense vertex ids; removals stay recoverable "
          "through the WAL until ids are dense again");
    }
  }
  const auto edge_ids = graph.EdgeIds();
  for (size_t i = 0; i < edge_ids.size(); ++i) {
    if (edge_ids[i] != i) {
      return Status::FailedPrecondition(
          "snapshot requires dense edge ids; removals stay recoverable "
          "through the WAL until ids are dense again");
    }
  }
  return Status::OK();
}

}  // namespace

// -- snapshot text ------------------------------------------------------------

namespace {

/// Shared body of the full and the resident-only snapshot builders. With
/// `resident_only == nullptr` every sample of every series is serialized
/// (the canonical full-state text). With a hypertable, only samples whose
/// chunks are NOT cold-covered are written — the cold tier's segment files
/// plus the paired catalog own the rest, which is what makes a tiered
/// snapshot (and recovery) O(hot data).
Result<std::string> BuildSnapshotTextImpl(const query::QueryBackend& backend,
                                          const ts::HypertableStore* resident_only) {
  HYGRAPH_RETURN_IF_ERROR(CheckDenseIds(backend.topology()));
  auto hg = core::FromPropertyGraph(backend.topology());
  if (!hg.ok()) return hg.status();
  std::unordered_map<std::string, SeriesId> sid_by_name;
  if (resident_only != nullptr) {
    for (SeriesId sid : resident_only->Ids()) {
      auto name = resident_only->Name(sid);
      if (name.ok()) sid_by_name.emplace(*name, sid);
    }
  }
  auto collect = [&](bool vertex, uint64_t entity,
                     const std::string& key) -> Result<std::vector<ts::Sample>> {
    if (resident_only != nullptr) {
      auto it = sid_by_name.find(query::SeriesSlotName(vertex, entity, key));
      if (it != sid_by_name.end()) {
        return resident_only->MaterializeResident(it->second);
      }
      // A key the hypertable does not know by slot name (a foreign naming
      // scheme): fall through to the full materialization below.
    }
    auto series = vertex
                      ? backend.VertexSeriesRange(entity, key, Interval::All())
                      : backend.EdgeSeriesRange(entity, key, Interval::All());
    if (!series.ok()) return series.status();
    return std::vector<ts::Sample>(series->samples().begin(),
                                   series->samples().end());
  };
  if (!backend.SeriesEmbeddedInTopology()) {
    for (graph::VertexId v : backend.topology().VertexIds()) {
      for (const std::string& key : backend.VertexSeriesKeys(v)) {
        auto samples = collect(/*vertex=*/true, v, key);
        if (!samples.ok()) return samples.status();
        ts::MultiSeries ms(key, {"value"});
        for (const ts::Sample& s : *samples) {
          HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(s.t, {s.value}));
        }
        auto sid = hg->SetVertexSeriesProperty(
            v, kSnapshotSeriesPrefix + key, std::move(ms));
        if (!sid.ok()) return sid.status();
      }
    }
    for (graph::EdgeId e : backend.topology().EdgeIds()) {
      for (const std::string& key : backend.EdgeSeriesKeys(e)) {
        auto samples = collect(/*vertex=*/false, e, key);
        if (!samples.ok()) return samples.status();
        ts::MultiSeries ms(key, {"value"});
        for (const ts::Sample& s : *samples) {
          HYGRAPH_RETURN_IF_ERROR(ms.AppendRow(s.t, {s.value}));
        }
        auto sid = hg->SetEdgeSeriesProperty(e, kSnapshotSeriesPrefix + key,
                                             std::move(ms));
        if (!sid.ok()) return sid.status();
      }
    }
  }
  return core::Serialize(*hg);
}

}  // namespace

Result<std::string> BuildSnapshotText(const query::QueryBackend& backend) {
  return BuildSnapshotTextImpl(backend, nullptr);
}

Status RestoreFromSnapshotText(const std::string& text,
                               query::QueryBackend* backend) {
  // Snapshots are always written with the trailer; its absence means the
  // file lost its tail in a way that still parses — reject, never guess.
  if (text.find("\nCHECKSUM ") == std::string::npos) {
    return Status::Corruption("snapshot is missing its CHECKSUM trailer");
  }
  auto hg = core::Deserialize(text);
  if (!hg.ok()) return hg.status();

  graph::PropertyGraph* topo = backend->mutable_topology();
  for (graph::VertexId v : hg->structure().VertexIds()) {
    const graph::Vertex& vertex = **hg->structure().GetVertex(v);
    graph::PropertyMap static_props;
    for (const auto& [key, value] : vertex.properties) {
      if (!value.is_series_ref()) static_props.emplace(key, value);
    }
    const graph::VertexId assigned =
        topo->AddVertex(vertex.labels, std::move(static_props));
    if (assigned != v) {
      return Status::Corruption("snapshot restore produced vertex id " +
                                std::to_string(assigned) + ", expected " +
                                std::to_string(v));
    }
  }
  for (graph::EdgeId e : hg->structure().EdgeIds()) {
    const graph::Edge& edge = **hg->structure().GetEdge(e);
    graph::PropertyMap static_props;
    for (const auto& [key, value] : edge.properties) {
      if (!value.is_series_ref()) static_props.emplace(key, value);
    }
    auto assigned =
        topo->AddEdge(edge.src, edge.dst, edge.label, std::move(static_props));
    if (!assigned.ok()) return assigned.status();
    if (*assigned != e) {
      return Status::Corruption("snapshot restore produced edge id " +
                                std::to_string(*assigned) + ", expected " +
                                std::to_string(e));
    }
  }

  // Re-ingest the series that were carried as pooled series properties.
  const size_t prefix_len = sizeof(kSnapshotSeriesPrefix) - 1;
  for (graph::VertexId v : hg->structure().VertexIds()) {
    const graph::Vertex& vertex = **hg->structure().GetVertex(v);
    for (const auto& [key, value] : vertex.properties) {
      if (!value.is_series_ref() ||
          !StartsWith(key, kSnapshotSeriesPrefix)) {
        continue;
      }
      auto ms = hg->LookupSeries(value.AsSeriesId());
      if (!ms.ok()) return ms.status();
      const std::string series_key = key.substr(prefix_len);
      for (size_t r = 0; r < (*ms)->size(); ++r) {
        HYGRAPH_RETURN_IF_ERROR(backend->AppendVertexSample(
            v, series_key, (*ms)->times()[r], (*ms)->at(r, 0)));
      }
    }
  }
  for (graph::EdgeId e : hg->structure().EdgeIds()) {
    const graph::Edge& edge = **hg->structure().GetEdge(e);
    for (const auto& [key, value] : edge.properties) {
      if (!value.is_series_ref() ||
          !StartsWith(key, kSnapshotSeriesPrefix)) {
        continue;
      }
      auto ms = hg->LookupSeries(value.AsSeriesId());
      if (!ms.ok()) return ms.status();
      const std::string series_key = key.substr(prefix_len);
      for (size_t r = 0; r < (*ms)->size(); ++r) {
        HYGRAPH_RETURN_IF_ERROR(backend->AppendEdgeSample(
            e, series_key, (*ms)->times()[r], (*ms)->at(r, 0)));
      }
    }
  }
  return Status::OK();
}

// -- DurableStore -------------------------------------------------------------

DurableStore::DurableStore(Env* env, std::string dir,
                           std::unique_ptr<query::QueryBackend> inner,
                           DurableOptions options)
    : env_(env),
      dir_(std::move(dir)),
      inner_(std::move(inner)),
      options_(options),
      metrics_(std::make_unique<obs::MetricsRegistry>()),
      records_logged_(metrics_->counter("durable.records_logged")),
      checkpoints_(metrics_->counter("durable.checkpoints")),
      checkpoint_nanos_(metrics_->histogram("durable.checkpoint_nanos")),
      retries_(metrics_->counter("durable.retries")),
      wal_rebuilds_(metrics_->counter("durable.wal_rebuilds")),
      degraded_gauge_(metrics_->gauge("durable.degraded")),
      retry_policy_(options_.retry, options_.retry_sleep),
      append_mu_(LockRank::kDurableAppend,
                 SyncInstruments::ForRegistry(metrics_.get())) {}

DurableStore::~DurableStore() {
  if (wal_ != nullptr) HYGRAPH_IGNORE_RESULT(wal_->Close());
}

Status DurableStore::Open() {
  // The contract says Open() completes before the store is shared, but the
  // append mutex is taken anyway: it makes the guarded-field writes below
  // provable and costs one uncontended acquisition. Safe against
  // self-deadlock — Open() never calls the public Checkpoint()/Log() paths,
  // and the inner-store guards it reaches sit strictly below
  // kDurableAppend in the hierarchy.
  MutexLock lock(append_mu_);
  if (opened_) return Status::FailedPrecondition("store is already open");
  recovery_ = RecoveryStats{};
  HYGRAPH_RETURN_IF_ERROR(env_->CreateDirIfMissing(dir_));

  // Newest installed snapshot, if any. Temp files and strangers are ignored
  // — only the atomically-renamed "snapshot-<seq>.hyg" names count.
  std::vector<std::string> children;
  HYGRAPH_RETURN_IF_ERROR(env_->GetChildren(dir_, &children));
  uint64_t snap_seq = 0;
  bool have_snapshot = false;
  for (const std::string& child : children) {
    unsigned long long seq = 0;
    int consumed = 0;
    if (std::sscanf(child.c_str(), "snapshot-%llu.hyg%n", &seq, &consumed) ==
            1 &&
        consumed == static_cast<int>(child.size())) {
      if (!have_snapshot || seq > snap_seq) snap_seq = seq;
      have_snapshot = true;
    }
  }
  if (have_snapshot) {
    std::string text;
    HYGRAPH_RETURN_IF_ERROR(
        env_->ReadFileToString(SnapshotPath(snap_seq), &text));
    HYGRAPH_RETURN_IF_ERROR(RestoreFromSnapshotText(text, inner_.get()));
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_seq = snap_seq;
  }

  // Storage tiering: open the cold tier, attach it to the hypertable, and
  // re-bind every chunk of the catalog paired with the restored snapshot —
  // zone maps and aggregates become resident, the bytes stay on disk. This
  // must happen BEFORE WAL replay: a replayed out-of-order write into a
  // cold chunk has to find (and unseal) the adopted chunk, not open a
  // conflicting hot one.
  ts::HypertableStore* tiered_ht =
      options_.tiering.enabled ? inner_->series_hypertable() : nullptr;
  if (tiered_ht != nullptr) {
    SegmentStoreOptions seg;
    seg.env = env_;
    seg.dir = dir_ + "/cold";
    seg.cache_budget_bytes = options_.tiering.cache_budget_bytes;
    seg.metrics = metrics_.get();
    auto tier = SegmentStore::Open(seg);
    if (!tier.ok()) return tier.status();
    cold_tier_ = std::move(*tier);
    tiered_ht->AttachColdTier(cold_tier_.get());
    if (have_snapshot) {
      auto catalog = cold_tier_->LoadCatalog(snap_seq);
      if (!catalog.ok()) return catalog.status();
      for (const ColdCatalogEntry& entry : *catalog) {
        bool vertex = false;
        uint64_t entity = 0;
        std::string key;
        if (!query::ParseSeriesSlotName(entry.series, &vertex, &entity,
                                        &key)) {
          return Status::Corruption("cold catalog series '" + entry.series +
                                    "' is not an entity slot name");
        }
        auto sid = inner_->EnsureSeries(vertex, entity, key);
        if (!sid.ok()) return sid.status();
        HYGRAPH_RETURN_IF_ERROR(tiered_ht->AdoptColdChunk(
            *sid, entry.chunk_start, entry.id, entry.meta));
        ++recovery_.cold_chunks_adopted;
      }
    }
  }

  // Salvage and replay the WAL tail.
  auto scan = ReadWal(env_, WalPath());
  if (!scan.ok()) return scan.status();
  recovery_.wal_records_salvaged = scan->records.size();
  recovery_.wal_bytes_dropped = scan->dropped_bytes;
  recovery_.wal_torn_tail = scan->torn_tail;
  uint64_t max_seq = snap_seq;
  std::vector<const std::string*> live_records;
  for (const std::string& record : scan->records) {
    RecordCursor cursor(record);
    auto seq = cursor.NextUint();
    if (!seq.ok()) return seq.status();
    if (*seq <= snap_seq) {
      ++recovery_.wal_records_skipped;
      continue;
    }
    if (*seq > max_seq) max_seq = *seq;
    if (ApplyRecord(record).ok()) {
      ++recovery_.wal_records_replayed;
    } else {
      // The original application failed the same way after the record was
      // logged; the states still agree.
      ++recovery_.wal_replay_failures;
    }
    live_records.push_back(&record);
  }
  next_seq_ = max_seq + 1;

  // Start the new epoch on a clean log: surviving live records are copied
  // into a fresh file which atomically replaces the old one, dropping any
  // torn tail and already-checkpointed prefix in one motion. The writer's
  // handle survives the rename (POSIX semantics). Retried as one unit: a
  // fresh attempt re-creates (truncates) the temp file, so a transient
  // failure mid-copy leaves nothing partial behind.
  const std::string tmp = dir_ + "/wal.tmp";
  HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
      [&] {
        auto writer = WalWriter::Create(env_, tmp, metrics_.get());
        if (!writer.ok()) return writer.status();
        for (const std::string* record : live_records) {
          HYGRAPH_RETURN_IF_ERROR((*writer)->Append(*record, /*sync=*/false));
        }
        HYGRAPH_RETURN_IF_ERROR((*writer)->Sync());
        HYGRAPH_RETURN_IF_ERROR(env_->RenameFile(tmp, WalPath()));
        wal_ = std::move(*writer);
        return Status::OK();
      },
      retries_));
  records_since_checkpoint_ = live_records.size();
  opened_ = true;
  degraded_gauge_->Set(0.0);

  // Mirror RecoveryStats as gauges so a metrics scrape after startup shows
  // what recovery found without needing the typed struct.
  metrics_->gauge("recovery.snapshot_loaded")
      ->Set(recovery_.snapshot_loaded ? 1.0 : 0.0);
  metrics_->gauge("recovery.snapshot_seq")
      ->Set(static_cast<double>(recovery_.snapshot_seq));
  metrics_->gauge("recovery.wal_records_salvaged")
      ->Set(static_cast<double>(recovery_.wal_records_salvaged));
  metrics_->gauge("recovery.wal_records_skipped")
      ->Set(static_cast<double>(recovery_.wal_records_skipped));
  metrics_->gauge("recovery.wal_records_replayed")
      ->Set(static_cast<double>(recovery_.wal_records_replayed));
  metrics_->gauge("recovery.wal_replay_failures")
      ->Set(static_cast<double>(recovery_.wal_replay_failures));
  metrics_->gauge("recovery.wal_bytes_dropped")
      ->Set(static_cast<double>(recovery_.wal_bytes_dropped));
  metrics_->gauge("recovery.wal_torn_tail")
      ->Set(recovery_.wal_torn_tail ? 1.0 : 0.0);
  metrics_->gauge("recovery.cold_chunks_adopted")
      ->Set(static_cast<double>(recovery_.cold_chunks_adopted));
  return Status::OK();
}

Status DurableStore::RequireOpen() const {
  if (!opened_) return Status::FailedPrecondition("store is not open");
  return Status::OK();
}

Status DurableStore::RequireWritable() const {
  HYGRAPH_RETURN_IF_ERROR(RequireOpen());
  if (degraded_.load(std::memory_order_relaxed)) return degraded_error_;
  if (wal_ == nullptr) {
    return Status::IOError("WAL is unavailable after a failed checkpoint");
  }
  return Status::OK();
}

void DurableStore::EnterDegraded(const Status& cause) {
  degraded_.store(true, std::memory_order_relaxed);
  degraded_error_ = Status::Unavailable(
      "store is degraded read-only (mutations rejected, reads serving): " +
      cause.ToString());
  degraded_gauge_->Set(1.0);
}

Status DurableStore::RebuildWalAndAppend(const std::string& record) {
  // fsyncgate: after a failed sync the kernel may have dropped the dirty
  // pages while the handle reports clean, so the old writer must never be
  // synced again. Abandon it (best-effort close) and build a fresh epoch
  // from what verifiably reached the disk.
  if (wal_ != nullptr) {
    // Drain any in-flight SyncWal fsync (which runs outside append_mu_)
    // before the old writer is destroyed.
    MutexLock sync_lock(wal_sync_mu_);
    HYGRAPH_IGNORE_RESULT(wal_->Close());
    wal_.reset();
  }
  auto scan = ReadWal(env_, WalPath());
  if (!scan.ok()) return scan.status();
  // A sync-only failure can leave the record fully appended; re-appending
  // it would replay as a duplicate sequence number (= corruption). The
  // rebuild's own Sync below is what makes it durable either way.
  const bool already_present =
      !scan->records.empty() && scan->records.back() == record;
  const std::string tmp = dir_ + "/wal.tmp";
  auto writer = WalWriter::Create(env_, tmp, metrics_.get());
  if (!writer.ok()) return writer.status();
  for (const std::string& salvaged : scan->records) {
    HYGRAPH_RETURN_IF_ERROR((*writer)->Append(salvaged, /*sync=*/false));
  }
  if (!already_present) {
    HYGRAPH_RETURN_IF_ERROR((*writer)->Append(record, /*sync=*/false));
  }
  HYGRAPH_RETURN_IF_ERROR((*writer)->Sync());
  HYGRAPH_RETURN_IF_ERROR(env_->RenameFile(tmp, WalPath()));
  wal_ = std::move(*writer);
  wal_rebuilds_->Increment();
  return Status::OK();
}

Status DurableStore::Log(const std::string& body) {
  const std::string record = std::to_string(next_seq_) + " " + body;
  // Attempt 0 is the plain append; every retry rebuilds the WAL epoch
  // (see RebuildWalAndAppend) after backing off. Non-retryable failures
  // and success both exit the loop immediately.
  bool first_attempt = true;
  Status s = retry_policy_.Run(
      [&] {
        if (first_attempt) {
          first_attempt = false;
          return wal_->Append(record, options_.sync_wal);
        }
        return RebuildWalAndAppend(record);
      },
      retries_);
  if (!s.ok()) {
    if (RetryPolicy::IsRetryable(s)) EnterDegraded(s);
    return s;
  }
  ++next_seq_;
  ++records_since_checkpoint_;
  records_logged_->Increment();
  return Status::OK();
}

void DurableStore::MaybeAutoCheckpoint() {
  // Runs with append_mu_ already held by the triggering mutator, so it
  // must use the impl path — Checkpoint() would self-deadlock.
  if (options_.checkpoint_every == 0) return;
  if (records_since_checkpoint_ < options_.checkpoint_every) return;
  Status s = TimedCheckpoint();
  // Non-dense ids defer the checkpoint (expected after removals); real
  // failures surface through background_error().
  if (!s.ok() && s.code() != StatusCode::kFailedPrecondition &&
      background_error_.ok()) {
    background_error_ = s;
  }
}

Status DurableStore::ApplyRecord(const std::string& record) {
  RecordCursor cursor(record);
  auto seq = cursor.NextUint();
  if (!seq.ok()) return seq.status();
  auto op = cursor.Next();
  if (!op.ok()) return op.status();
  graph::PropertyGraph* topo = inner_->mutable_topology();
  if (*op == "AV" || *op == "AE") {
    auto id = cursor.NextUint();
    if (!id.ok()) return id.status();
    auto key = cursor.NextDecoded();
    if (!key.ok()) return key.status();
    auto t = cursor.NextInt();
    if (!t.ok()) return t.status();
    auto value = cursor.NextDouble();
    if (!value.ok()) return value.status();
    return *op == "AV" ? inner_->AppendVertexSample(*id, *key, *t, *value)
                       : inner_->AppendEdgeSample(*id, *key, *t, *value);
  }
  if (*op == "NV") {
    auto id = cursor.NextUint();
    if (!id.ok()) return id.status();
    auto labels = cursor.NextLabels();
    if (!labels.ok()) return labels.status();
    auto props = cursor.NextProperties();
    if (!props.ok()) return props.status();
    const graph::VertexId assigned =
        topo->AddVertex(std::move(*labels), std::move(*props));
    if (assigned != *id) {
      return Status::Corruption("WAL replay produced vertex id " +
                                std::to_string(assigned) + ", expected " +
                                std::to_string(*id));
    }
    return Status::OK();
  }
  if (*op == "NE") {
    auto id = cursor.NextUint();
    if (!id.ok()) return id.status();
    auto src = cursor.NextUint();
    if (!src.ok()) return src.status();
    auto dst = cursor.NextUint();
    if (!dst.ok()) return dst.status();
    auto label = cursor.NextDecoded();
    if (!label.ok()) return label.status();
    auto props = cursor.NextProperties();
    if (!props.ok()) return props.status();
    auto assigned =
        topo->AddEdge(*src, *dst, std::move(*label), std::move(*props));
    if (!assigned.ok()) return assigned.status();
    if (*assigned != *id) {
      return Status::Corruption("WAL replay produced edge id " +
                                std::to_string(*assigned) + ", expected " +
                                std::to_string(*id));
    }
    return Status::OK();
  }
  if (*op == "SV" || *op == "SE") {
    auto id = cursor.NextUint();
    if (!id.ok()) return id.status();
    auto key = cursor.NextDecoded();
    if (!key.ok()) return key.status();
    auto value = cursor.NextValue();
    if (!value.ok()) return value.status();
    return *op == "SV"
               ? topo->SetVertexProperty(*id, *key, std::move(*value))
               : topo->SetEdgeProperty(*id, *key, std::move(*value));
  }
  if (*op == "RV" || *op == "RE") {
    auto id = cursor.NextUint();
    if (!id.ok()) return id.status();
    return *op == "RV" ? topo->RemoveVertex(*id) : topo->RemoveEdge(*id);
  }
  return Status::Corruption("unknown WAL op '" + *op + "'");
}

// -- logged mutations ---------------------------------------------------------

Result<graph::VertexId> DurableStore::AddVertex(
    std::vector<std::string> labels, graph::PropertyMap properties) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  // Encode before the move; the id is only known after application, so
  // topology adds apply first and log second. A crash in between loses an
  // unacknowledged op — exactly the contract.
  auto encoded_props = EncodeProperties(properties);
  if (!encoded_props.ok()) return encoded_props.status();
  const std::string tail = EncodeLabels(labels) + *encoded_props;
  graph::VertexId id = 0;
  HYGRAPH_RETURN_IF_ERROR(
      inner_->MutateTopology([&](graph::PropertyGraph* topo) {
        id = topo->AddVertex(std::move(labels), std::move(properties));
        return Status::OK();
      }));
  HYGRAPH_RETURN_IF_ERROR(Log("NV " + std::to_string(id) + tail));
  MaybeAutoCheckpoint();
  return id;
}

Result<graph::EdgeId> DurableStore::AddEdge(graph::VertexId src,
                                            graph::VertexId dst,
                                            std::string label,
                                            graph::PropertyMap properties) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  auto encoded_props = EncodeProperties(properties);
  if (!encoded_props.ok()) return encoded_props.status();
  const std::string encoded_label = core::EncodeField(label);
  graph::EdgeId id = 0;
  HYGRAPH_RETURN_IF_ERROR(
      inner_->MutateTopology([&](graph::PropertyGraph* topo) {
        auto added =
            topo->AddEdge(src, dst, std::move(label), std::move(properties));
        if (!added.ok()) return added.status();
        id = *added;
        return Status::OK();
      }));
  HYGRAPH_RETURN_IF_ERROR(Log("NE " + std::to_string(id) + " " +
                              std::to_string(src) + " " + std::to_string(dst) +
                              " " + encoded_label + *encoded_props));
  MaybeAutoCheckpoint();
  return id;
}

Status DurableStore::SetVertexProperty(graph::VertexId v,
                                       const std::string& key, Value value) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  if (value.is_series_ref()) {
    return Status::InvalidArgument(
        "backend properties cannot hold series references");
  }
  HYGRAPH_RETURN_IF_ERROR(Log("SV " + std::to_string(v) + " " +
                              core::EncodeField(key) + " " +
                              EncodeValue(value)));
  Status s = inner_->MutateTopology([&](graph::PropertyGraph* topo) {
    return topo->SetVertexProperty(v, key, std::move(value));
  });
  MaybeAutoCheckpoint();
  return s;
}

Status DurableStore::SetEdgeProperty(graph::EdgeId e, const std::string& key,
                                     Value value) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  if (value.is_series_ref()) {
    return Status::InvalidArgument(
        "backend properties cannot hold series references");
  }
  HYGRAPH_RETURN_IF_ERROR(Log("SE " + std::to_string(e) + " " +
                              core::EncodeField(key) + " " +
                              EncodeValue(value)));
  Status s = inner_->MutateTopology([&](graph::PropertyGraph* topo) {
    return topo->SetEdgeProperty(e, key, std::move(value));
  });
  MaybeAutoCheckpoint();
  return s;
}

Status DurableStore::RemoveVertex(graph::VertexId v) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  HYGRAPH_RETURN_IF_ERROR(Log("RV " + std::to_string(v)));
  Status s = inner_->MutateTopology(
      [&](graph::PropertyGraph* topo) { return topo->RemoveVertex(v); });
  MaybeAutoCheckpoint();
  return s;
}

Status DurableStore::RemoveEdge(graph::EdgeId e) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  HYGRAPH_RETURN_IF_ERROR(Log("RE " + std::to_string(e)));
  Status s = inner_->MutateTopology(
      [&](graph::PropertyGraph* topo) { return topo->RemoveEdge(e); });
  MaybeAutoCheckpoint();
  return s;
}

// -- durability control -------------------------------------------------------

Status DurableStore::Checkpoint() {
  MutexLock lock(append_mu_);
  return TimedCheckpoint();
}

Status DurableStore::TimedCheckpoint() {
  // Checkpoints serialize the full store; two clock reads are noise next to
  // that, so checkpoint latency is always recorded (failures included —
  // a slow failed checkpoint is exactly what an operator wants to see).
  const obs::Clock* clock = obs::SystemClock::Instance();
  const uint64_t start = clock->NowNanos();
  Status s = CheckpointImpl();
  checkpoint_nanos_->Record(clock->NowNanos() - start);
  if (s.ok()) checkpoints_->Increment();
  return s;
}

Status DurableStore::CheckpointImpl() {
  // Deliberately only RequireOpen, not RequireWritable: checkpointing must
  // work while degraded (and with a dead wal_) — it is exactly how
  // TryExitDegraded restores the durability contract.
  HYGRAPH_RETURN_IF_ERROR(RequireOpen());

  // Tiered checkpoint prologue (DESIGN.md §15): spill every sealed chunk
  // into the cold tier and make the segment bytes durable, so the snapshot
  // below only has to carry hot data. Order matters — segment sync, then
  // catalog, then snapshot install — so any state a crash can leave behind
  // is recoverable: a catalog only ever references synced bytes, and a
  // snapshot only ever pairs with an already-durable catalog.
  ts::HypertableStore* tiered_ht =
      cold_tier_ != nullptr ? inner_->series_hypertable() : nullptr;
  if (tiered_ht != nullptr) {
    // Both steps absorb transient I/O hiccups like the snapshot write
    // below does. Re-running a partial spill is safe (already-cold chunks
    // are skipped; a failed Put has no effect on the chunk), and so is
    // re-running the segment fsync: until the WAL epoch rotates at the
    // very end of this function, every spilled sample is still covered by
    // snapshot + WAL, so a sync lost to fsyncgate can only orphan
    // unreferenced segment bytes, never acknowledged data.
    HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
        [&] {
          auto spilled = tiered_ht->SpillSealed();
          return spilled.ok() ? Status::OK() : spilled.status();
        },
        retries_));
    HYGRAPH_RETURN_IF_ERROR(
        retry_policy_.Run([&] { return cold_tier_->SyncSegments(); },
                          retries_));
  }

  auto text = BuildSnapshotTextImpl(*inner_, tiered_ht);
  if (!text.ok()) return text.status();
  const uint64_t snap_seq = next_seq_ - 1;
  if (tiered_ht != nullptr) {
    // Publish the live cold set under the same sequence the snapshot will
    // install as. A crash between here and the rename leaves an orphan
    // catalog that recovery never reads and the next checkpoint GCs.
    // Retried as one unit — each attempt rewrites the temp file from
    // scratch before the atomic rename.
    HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
        [&] { return cold_tier_->WriteCatalog(snap_seq); }, retries_));
  }

  // Write-temp + fsync + atomic rename: the snapshot either installs
  // completely or not at all. Retried as one unit — NewWritableFile
  // truncates the temp file, so every attempt starts clean. A final
  // failure here leaves the previous snapshot + WAL fully intact.
  const std::string tmp = dir_ + "/snapshot.tmp";
  HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
      [&] {
        std::unique_ptr<WritableFile> file;
        HYGRAPH_RETURN_IF_ERROR(env_->NewWritableFile(tmp, &file));
        HYGRAPH_RETURN_IF_ERROR(file->Append(*text));
        HYGRAPH_RETURN_IF_ERROR(file->Sync());
        HYGRAPH_RETURN_IF_ERROR(file->Close());
        return env_->RenameFile(tmp, SnapshotPath(snap_seq));
      },
      retries_));

  // The new snapshot is durable; everything from here is garbage
  // collection, and a crash merely leaves work for the next recovery.
  // Both sweeps are idempotent, so they retry as whole units.
  HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
      [&] {
        std::vector<std::string> children;
        HYGRAPH_RETURN_IF_ERROR(env_->GetChildren(dir_, &children));
        for (const std::string& child : children) {
          unsigned long long seq = 0;
          int consumed = 0;
          if (std::sscanf(child.c_str(), "snapshot-%llu.hyg%n", &seq,
                          &consumed) == 1 &&
              consumed == static_cast<int>(child.size()) && seq != snap_seq) {
            HYGRAPH_RETURN_IF_ERROR(env_->RemoveFile(dir_ + "/" + child));
          }
        }
        return Status::OK();
      },
      retries_));
  if (cold_tier_ != nullptr) {
    // Stale catalogs (including orphans from crashed checkpoints) go the
    // same way as stale snapshots.
    HYGRAPH_RETURN_IF_ERROR(retry_policy_.Run(
        [&] { return cold_tier_->GcCatalogs(snap_seq); }, retries_));
  }

  // Fresh WAL epoch on top of the installed snapshot. The old writer (when
  // still present) is abandoned best-effort — its records are all covered
  // by the snapshot. If recreation fails even with retries, the store
  // degrades to read-only rather than risking un-logged acknowledgements.
  if (wal_ != nullptr) {
    // Drain any in-flight SyncWal fsync (which runs outside append_mu_)
    // before the old writer is destroyed.
    MutexLock sync_lock(wal_sync_mu_);
    HYGRAPH_IGNORE_RESULT(wal_->Close());
    wal_.reset();
  }
  Status wal_status = retry_policy_.Run(
      [&] {
        auto writer = WalWriter::Create(env_, WalPath(), metrics_.get());
        if (!writer.ok()) return writer.status();
        wal_ = std::move(*writer);
        return Status::OK();
      },
      retries_);
  if (!wal_status.ok()) {
    if (RetryPolicy::IsRetryable(wal_status)) EnterDegraded(wal_status);
    return wal_status;
  }
  records_since_checkpoint_ = 0;

  // Full checkpoint + fresh epoch = the durability contract holds again;
  // a degraded store exits here (this is TryExitDegraded's whole body).
  if (degraded_.load(std::memory_order_relaxed)) {
    degraded_.store(false, std::memory_order_relaxed);
    degraded_error_ = Status::OK();
    degraded_gauge_->Set(0.0);
  }
  return Status::OK();
}

Status DurableStore::SyncWal() {
  WalWriter* wal = nullptr;
  {
    MutexLock lock(append_mu_);
    HYGRAPH_RETURN_IF_ERROR(RequireWritable());
    wal = wal_.get();
    // Pinned while still under append_mu_, so no rotation can slip in
    // between reading wal_ and taking the sync lock; append_mu_ is then
    // RELEASED so the fsync below never blocks concurrent appends — group
    // commit depends on writers piling up behind an in-flight sync.
    wal_sync_mu_.lock();
  }
  const Status status = wal->Sync();
  wal_sync_mu_.unlock();
  return status;
}

Status DurableStore::TryExitDegraded() {
  MutexLock lock(append_mu_);
  if (!degraded_.load(std::memory_order_relaxed)) return Status::OK();
  // Only a full checkpoint may clear the degraded flag: apply-then-log
  // mutations whose Log() failed can have left the in-memory state ahead
  // of any salvageable WAL, so the fresh epoch must start from a snapshot
  // of what the store is actually serving. CheckpointImpl clears the flag
  // on full success.
  return TimedCheckpoint();
}

// -- QueryBackend delegation --------------------------------------------------

std::string DurableStore::name() const {
  return "durable(" + inner_->name() + ")";
}

const graph::PropertyGraph& DurableStore::topology() const {
  return inner_->topology();
}

graph::PropertyGraph* DurableStore::mutable_topology() {
  return inner_->mutable_topology();
}

Status DurableStore::MutateTopology(
    const std::function<Status(graph::PropertyGraph*)>& fn) {
  return inner_->MutateTopology(fn);
}

std::shared_ptr<const query::QueryBackend> DurableStore::BeginSnapshot()
    const {
  return inner_->BeginSnapshot();
}

Status DurableStore::AppendVertexSample(graph::VertexId v,
                                        const std::string& key, Timestamp t,
                                        double value) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  HYGRAPH_RETURN_IF_ERROR(Log("AV " + std::to_string(v) + " " +
                              core::EncodeField(key) + " " +
                              std::to_string(t) + " " + FormatDouble(value)));
  Status s = inner_->AppendVertexSample(v, key, t, value);
  MaybeAutoCheckpoint();
  return s;
}

Status DurableStore::AppendEdgeSample(graph::EdgeId e, const std::string& key,
                                      Timestamp t, double value) {
  MutexLock lock(append_mu_);
  HYGRAPH_RETURN_IF_ERROR(RequireWritable());
  HYGRAPH_RETURN_IF_ERROR(Log("AE " + std::to_string(e) + " " +
                              core::EncodeField(key) + " " +
                              std::to_string(t) + " " + FormatDouble(value)));
  Status s = inner_->AppendEdgeSample(e, key, t, value);
  MaybeAutoCheckpoint();
  return s;
}

Result<ts::Series> DurableStore::VertexSeriesRange(
    graph::VertexId v, const std::string& key, const Interval& interval) const {
  return inner_->VertexSeriesRange(v, key, interval);
}

Result<ts::Series> DurableStore::EdgeSeriesRange(
    graph::EdgeId e, const std::string& key, const Interval& interval) const {
  return inner_->EdgeSeriesRange(e, key, interval);
}

Result<double> DurableStore::VertexSeriesAggregate(graph::VertexId v,
                                                   const std::string& key,
                                                   const Interval& interval,
                                                   ts::AggKind kind) const {
  return inner_->VertexSeriesAggregate(v, key, interval, kind);
}

Result<double> DurableStore::EdgeSeriesAggregate(graph::EdgeId e,
                                                 const std::string& key,
                                                 const Interval& interval,
                                                 ts::AggKind kind) const {
  return inner_->EdgeSeriesAggregate(e, key, interval, kind);
}

Result<ts::Series> DurableStore::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  return inner_->VertexSeriesWindowAggregate(v, key, interval, width, kind);
}

Result<ts::Series> DurableStore::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  return inner_->EdgeSeriesWindowAggregate(e, key, interval, width, kind);
}

std::vector<std::string> DurableStore::VertexSeriesKeys(
    graph::VertexId v) const {
  return inner_->VertexSeriesKeys(v);
}

std::vector<std::string> DurableStore::EdgeSeriesKeys(graph::EdgeId e) const {
  return inner_->EdgeSeriesKeys(e);
}

bool DurableStore::SeriesEmbeddedInTopology() const {
  return inner_->SeriesEmbeddedInTopology();
}

}  // namespace hygraph::storage
