#include "storage/polyglot.h"

#include <algorithm>
#include <utility>

namespace hygraph::storage {

namespace {

ts::HypertableOptions WithDefaultMetrics(ts::HypertableOptions options,
                                         obs::MetricsRegistry* registry) {
  if (options.metrics == nullptr) options.metrics = registry;
  return options;
}

}  // namespace

PolyglotStore::PolyglotStore(ts::HypertableOptions ts_options)
    : metrics_(std::make_unique<obs::MetricsRegistry>()),
      series_(WithDefaultMetrics(std::move(ts_options), metrics_.get())) {}

query::BackendWork PolyglotStore::Work() const {
  const ts::HypertableStats stats = series_.stats();
  query::BackendWork w;
  w.series_points_scanned = stats.samples_scanned;
  w.chunks_decoded = stats.chunks_decoded;
  w.chunks_cache_hits = stats.chunks_from_cache;
  w.chunks_zonemap_skipped = stats.chunks_zonemap_skipped;
  return w;
}

Result<SeriesId> PolyglotStore::Resolve(const SeriesMap& map, uint64_t id,
                                        const std::string& key) const {
  auto it = map.find(EntityKey{id, key});
  if (it == map.end()) {
    return Status::NotFound("no series '" + key + "' on entity " +
                            std::to_string(id));
  }
  return it->second;
}

SeriesId PolyglotStore::ResolveOrCreate(SeriesMap* map, uint64_t id,
                                        const std::string& key,
                                        const char* scope) {
  auto it = map->find(EntityKey{id, key});
  if (it != map->end()) return it->second;
  const SeriesId sid =
      series_.Create(std::string(scope) + std::to_string(id) + "." + key);
  map->emplace(EntityKey{id, key}, sid);
  return sid;
}

Status PolyglotStore::AppendVertexSample(graph::VertexId v,
                                         const std::string& key, Timestamp t,
                                         double value) {
  if (!graph_.HasVertex(v)) {
    return Status::NotFound("no vertex with id " + std::to_string(v));
  }
  const SeriesId sid = ResolveOrCreate(&vertex_series_, v, key, "v");
  return series_.Insert(sid, t, value);
}

Status PolyglotStore::AppendEdgeSample(graph::EdgeId e, const std::string& key,
                                       Timestamp t, double value) {
  if (!graph_.HasEdge(e)) {
    return Status::NotFound("no edge with id " + std::to_string(e));
  }
  const SeriesId sid = ResolveOrCreate(&edge_series_, e, key, "e");
  return series_.Insert(sid, t, value);
}

std::vector<std::string> PolyglotStore::KeysOf(const SeriesMap& map,
                                               uint64_t id) {
  std::vector<std::string> keys;
  for (const auto& [entity_key, sid] : map) {
    (void)sid;
    if (entity_key.id == id) keys.push_back(entity_key.key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> PolyglotStore::VertexSeriesKeys(
    graph::VertexId v) const {
  return KeysOf(vertex_series_, v);
}

std::vector<std::string> PolyglotStore::EdgeSeriesKeys(graph::EdgeId e) const {
  return KeysOf(edge_series_, e);
}

namespace {

// An entity without a series under `key` behaves like an entity with an
// empty series, matching AllInGraphStore (whose generic property scan
// cannot distinguish the two). Aggregates over nothing fold the same way
// as AggState::Finalize on an empty range.
Result<double> EmptyAggregate(ts::AggKind kind) {
  if (kind == ts::AggKind::kCount) return 0.0;
  return Status::NotFound("aggregate over empty range");
}

}  // namespace

Result<ts::Series> PolyglotStore::VertexSeriesRange(
    graph::VertexId v, const std::string& key,
    const Interval& interval) const {
  auto sid = Resolve(vertex_series_, v, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.Materialize(*sid, interval);
}

Result<ts::Series> PolyglotStore::EdgeSeriesRange(
    graph::EdgeId e, const std::string& key, const Interval& interval) const {
  auto sid = Resolve(edge_series_, e, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.Materialize(*sid, interval);
}

Result<double> PolyglotStore::VertexSeriesAggregate(graph::VertexId v,
                                                    const std::string& key,
                                                    const Interval& interval,
                                                    ts::AggKind kind) const {
  auto sid = Resolve(vertex_series_, v, key);
  if (!sid.ok()) return EmptyAggregate(kind);
  return series_.Aggregate(*sid, interval, kind);
}

Result<double> PolyglotStore::EdgeSeriesAggregate(graph::EdgeId e,
                                                  const std::string& key,
                                                  const Interval& interval,
                                                  ts::AggKind kind) const {
  auto sid = Resolve(edge_series_, e, key);
  if (!sid.ok()) return EmptyAggregate(kind);
  return series_.Aggregate(*sid, interval, kind);
}

Result<size_t> PolyglotStore::VertexSeriesCountInRange(
    graph::VertexId v, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto sid = Resolve(vertex_series_, v, key);
  if (!sid.ok()) return size_t{0};  // missing series counts like an empty one
  return series_.CountMatching(*sid, interval,
                               ts::ScanPredicate{min_value, max_value});
}

Result<size_t> PolyglotStore::EdgeSeriesCountInRange(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    double min_value, double max_value) const {
  auto sid = Resolve(edge_series_, e, key);
  if (!sid.ok()) return size_t{0};
  return series_.CountMatching(*sid, interval,
                               ts::ScanPredicate{min_value, max_value});
}

Result<ts::Series> PolyglotStore::VertexSeriesWindowAggregate(
    graph::VertexId v, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto sid = Resolve(vertex_series_, v, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.WindowAggregate(*sid, interval, width, kind);
}

Result<ts::Series> PolyglotStore::EdgeSeriesWindowAggregate(
    graph::EdgeId e, const std::string& key, const Interval& interval,
    Duration width, ts::AggKind kind) const {
  auto sid = Resolve(edge_series_, e, key);
  if (!sid.ok()) return ts::Series(key);
  return series_.WindowAggregate(*sid, interval, width, kind);
}

}  // namespace hygraph::storage
